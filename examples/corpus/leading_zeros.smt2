; conversion ignores leading zeros
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(assert (str.in_re x (re.++ ((_ re.loop 2 2) (str.to_re "0")) ((_ re.loop 1 2) (re.range "0" "9")))))
(assert (= (str.to_int x) 10))
(check-sat)
