; str.to_int with leading-zero padding: x must be "0042"
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(declare-fun n () Int)
(assert (= n (str.to_int x)))
(assert (= n 42))
(assert (= (str.len x) 4))
(check-sat)
