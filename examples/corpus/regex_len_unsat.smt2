; membership forces length 2, arithmetic demands >= 3
(set-logic QF_SLIA)
(set-info :status unsat)
(declare-fun y () String)
(assert (str.in_re y ((_ re.loop 2 2) (re.range "0" "9"))))
(assert (>= (str.len y) 3))
(check-sat)
