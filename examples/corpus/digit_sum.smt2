; two single digits summing to 10
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun a () String)
(declare-fun b () String)
(assert (str.in_re a ((_ re.loop 1 1) (re.range "0" "9"))))
(assert (str.in_re b ((_ re.loop 1 1) (re.range "0" "9"))))
(assert (= (+ (str.to_int a) (str.to_int b)) 10))
(check-sat)
