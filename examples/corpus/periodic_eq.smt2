; "0" ++ u = u ++ "0" makes u periodic in "0"
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun u () String)
(assert (= (str.++ "0" u) (str.++ u "0")))
(assert (= (str.len u) 3))
(check-sat)
