; split "hello" with a lowercase prefix
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun a () String)
(declare-fun b () String)
(assert (= (str.++ a b) "hello"))
(assert (str.in_re a (re.+ (re.range "a" "z"))))
(check-sat)
