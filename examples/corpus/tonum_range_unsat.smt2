; two digits cannot convert to 100
(set-logic QF_SLIA)
(set-info :status unsat)
(declare-fun x () String)
(assert (str.in_re x ((_ re.loop 2 2) (re.range "0" "9"))))
(assert (= (str.to_int x) 100))
(check-sat)
