; x = x ++ "a" has no finite solution
(set-logic QF_SLIA)
(set-info :status unsat)
(declare-fun x () String)
(assert (= x (str.++ x "a")))
(check-sat)
