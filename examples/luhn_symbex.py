"""Symbolic execution of the checkLuhn validator (paper Section 1).

Reconstructs a k-digit input that the Luhn credit-card check accepts, by
solving the path constraint of the JavaScript program from the paper's
introduction — two loops of charAt + toNum per digit, the doubled-digit
adjustment, and the final toStr test that the sum ends in '0'.

Run:  python examples/luhn_symbex.py [digits]
"""

import sys
import time

from repro import TrauSolver
from repro.symbex.luhn import luhn_problem


def luhn_checksum(value):
    """Concrete reference implementation (for verifying the model)."""
    total = 0
    for i, c in enumerate(reversed(value)):
        d = int(c)
        if i % 2 == 1:
            d *= 2
            if d > 9:
                d -= 9
        total += d
    return total


def main():
    digits = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    problem = luhn_problem(digits)
    solver = TrauSolver()

    start = time.monotonic()
    result = solver.solve(problem, timeout=120)
    elapsed = time.monotonic() - start

    print("status:", result.status, "(%.2fs)" % elapsed)
    if result.status == "sat":
        value = result.model["value"]
        print("synthesized input:", value)
        print("luhn checksum:", luhn_checksum(value),
              "(accepted)" if luhn_checksum(value) % 10 == 0
              else "(REJECTED - solver bug!)")


if __name__ == "__main__":
    main()
