"""JavaScript array-index semantics (paper Section 1).

JavaScript array indices are strings: ``x[3]``, ``x[03]`` and ``x["3"]``
alias the same cell, but ``x["03"]`` is a different property, and
``x["03"]-1`` silently converts string -> number -> string.  A faithful
symbolic executor therefore needs string-number conversion for ordinary
array code.  This example asks the solver two questions:

1. Find an index string that does NOT alias its numeric form
   (expected shape: something with a leading zero, like "03").
2. Verify that canonical numerals that convert to equal numbers are
   identical (the aliasing soundness property) — expected UNSAT.

Run:  python examples/js_arrays.py
"""

from repro import ProblemBuilder, TrauSolver, str_len
from repro.logic import eq, ge, le, var


def find_noncanonical_index():
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "[0-9]+")
    b.require_int(le(str_len(s), 6))
    n = b.to_num(s)                 # n = toNum(s)
    canonical = b.to_str(n)         # canonical = toStr(n)
    b.diseq((s,), (canonical,))     # s != toStr(toNum(s))

    result = TrauSolver().solve(b, timeout=60)
    print("1) non-canonical index:", result.status)
    if result.status == "sat":
        print("   s = %r, toStr(toNum(s)) = %r  -> x[s] is its own cell"
              % (result.model["s"], result.model[canonical.name]))
    return result


def check_canonical_aliasing():
    b = ProblemBuilder()
    s1, s2 = b.str_var("s1"), b.str_var("s2")
    for s in (s1, s2):
        b.member(s, "0|[1-9][0-9]*")    # canonical numerals
        b.require_int(le(str_len(s), 5))
    n1, n2 = b.to_num(s1), b.to_num(s2)
    b.require_int(eq(var(n1), var(n2)))
    b.require_int(ge(var(n1), 0))
    b.diseq((s1,), (s2,))               # ... and yet different strings?

    result = TrauSolver().solve(b, timeout=60)
    print("2) distinct canonical aliases:", result.status,
          "(unsat = aliasing is sound)")
    return result


def index_arithmetic():
    """The x["03"-1] = 2 example: "03" - 1 evaluates to the cell "2"."""
    b = ProblemBuilder()
    s = b.str_var("s")              # the index literal in the program
    b.member(s, "[0-9]+")
    b.require_int(le(str_len(s), 4))
    n = b.to_num(s)                 # implicit conversion by '-'
    j = b.fresh_int("j")
    b.require_int(eq(var(j), var(n) - 1))
    b.require_int(ge(var(j), 0))
    cell = b.to_str(j)              # converted back to a property key
    b.equal((cell,), ("2",))        # must land on cell "2"
    b.diseq((s,), ("3",))           # ... but s is not the literal "3"

    result = TrauSolver().solve(b, timeout=60)
    print("3) index arithmetic:", result.status)
    if result.status == "sat":
        print('   s = %r: x[s]-1 writes x["2"]' % result.model["s"])
    return result


if __name__ == "__main__":
    find_noncanonical_index()
    check_canonical_aliasing()
    index_arithmetic()
