"""Synthesizing inputs for an IP-address validator (LeetCode suite).

Two formulations of the same question — "give me a valid dotted-quad
string" — exercising different solver features:

1. the *path constraint* formulation a symbolic executor produces
   (split into four octet variables, each converted with toNum and
   range-checked), including an UNSAT variant (an octet forced > 255);
2. the *pure membership* formulation (one regex).

Run:  python examples/ip_validation.py
"""

from repro import ProblemBuilder, TrauSolver, str_len
from repro.logic import conj, eq, ge, le, var


def path_constraint_formulation(widths, sat=True):
    b = ProblemBuilder()
    s = b.str_var("s")
    segments = []
    for i, width in enumerate(widths):
        seg = b.str_var("seg%d" % i)
        b.member(seg, "[0-9]{%d}" % width)
        if width > 1:
            b.member(seg, "[1-9][0-9]*")    # no leading zeros
        n = b.to_num(seg)
        b.require_int(conj(ge(var(n), 0), le(var(n), 255)))
        if not sat and i == 2:
            b.require_int(ge(var(n), 256))
        segments.append(seg)
    b.equal((s,), (segments[0], ".", segments[1], ".",
                   segments[2], ".", segments[3]))
    return b


def membership_formulation():
    octet = "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
    b = ProblemBuilder()
    s = b.str_var("s")
    b.member(s, "%s(\\.%s){3}" % (octet, octet))
    b.require_int(eq(str_len(s), 13))
    return b


def main():
    solver = TrauSolver()

    b = path_constraint_formulation([3, 2, 1, 3])
    result = solver.solve(b, timeout=60)
    print("path constraints (3.2.1.3 digits):", result.status)
    if result.status == "sat":
        print("   s =", result.model["s"])

    b = path_constraint_formulation([3, 2, 1, 3], sat=False)
    result = solver.solve(b, timeout=60)
    print("octet forced above 255:", result.status, "(expected unsat)")

    b = membership_formulation()
    result = solver.solve(b, timeout=60)
    print("regex membership, |s| = 13:", result.status)
    if result.status == "sat":
        print("   s =", result.model["s"])


if __name__ == "__main__":
    main()
