"""Quickstart: solve the paper's running example (Section 1).

    Phi = { "0"x = x"0",  toNum(x) = toNum(y),  |y| > |x| > 1,  |y| > 1000 }

The paper reports that Z3, CVC4 and Z3Str3 all fail on this formula within
10 minutes, while the PFA-based procedure solves it in seconds — the model
has to combine a word-equation insight (x is all zeros), a conversion
insight (toNum(x) = 0, so y is also all zeros... or is it?) and a length
constraint pushing |y| past 1000.

Run:  python examples/quickstart.py
"""

from repro import ProblemBuilder, TrauSolver, str_len
from repro.logic import eq, gt, var


def main():
    b = ProblemBuilder()
    x, y = b.str_var("x"), b.str_var("y")

    b.equal(("0", x), (x, "0"))             # "0" . x = x . "0"
    nx = b.to_num(x)                        # nx = toNum(x)
    ny = b.to_num(y)                        # ny = toNum(y)
    b.require_int(eq(var(nx), var(ny)))     # toNum(x) = toNum(y)
    b.require_int(gt(str_len(y), str_len(x)))   # |y| > |x|
    b.require_int(gt(str_len(x), 1))            # |x| > 1
    b.require_int(gt(str_len(y), 1000))         # |y| > 1000

    solver = TrauSolver()
    result = solver.solve(b, timeout=120)

    print("status:", result.status)
    if result.status == "sat":
        model = result.model
        print("x =", repr(model["x"]))
        print("y = %r... (%d characters)" % (model["y"][:16],
                                             len(model["y"])))
        print("toNum(x) =", model[nx], " toNum(y) =", model[ny])


if __name__ == "__main__":
    main()
