"""End-to-end tests for :mod:`repro.serve.net` — real sockets, real
spawn workers, real SIGTERM.

Each test boots a full :class:`NetServer` on an ephemeral port inside
``asyncio.run`` and speaks the length-prefixed-JSON wire protocol at it.
The themes mirror the front door's admission ladder: every request —
authorized or not, parseable or not, sent before or after a shard death
or a drain — comes back as exactly one well-formed response.
"""

import asyncio
import glob
import json
import os
import select
import signal
import socket
import subprocess
import sys

from repro import faults
from repro.config import NetConfig, SolverConfig, TenantQuota
from repro.serve.net import NetServer, TokenBucket
from repro.smtlib import problem_to_smtlib
from repro.store import Store, scan_segment
from repro.strings import ProblemBuilder
from repro.logic import eq
from repro.strings import str_len


def sat_text(chars="ab"):
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[%s]{2}" % chars)
    return problem_to_smtlib(builder.problem)


def unsat_text(chars="ab"):
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[%s]{2}" % chars)
    builder.require_int(eq(str_len(x), 9))
    return problem_to_smtlib(builder.problem)


class Wire:
    """Minimal test client: framed JSON over one connection."""

    def __init__(self, host, port):
        self.host = host
        self.port = port
        self.reader = None
        self.writer = None

    async def connect(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port)
        return self

    async def send(self, obj):
        data = json.dumps(obj).encode("utf-8")
        self.writer.write(len(data).to_bytes(4, "big") + data)
        await self.writer.drain()

    async def recv(self, timeout=60.0):
        head = await asyncio.wait_for(self.reader.readexactly(4), timeout)
        body = await asyncio.wait_for(
            self.reader.readexactly(int.from_bytes(head, "big")), timeout)
        return json.loads(body.decode("utf-8"))

    async def rpc(self, obj, timeout=60.0):
        await self.send(obj)
        return await self.recv(timeout)

    def close(self):
        if self.writer is not None:
            self.writer.close()


def boot(**kwargs):
    """A NetServer with test-sized defaults (tiny pools, port 0)."""
    net_kwargs = dict(host="127.0.0.1", port=0, shards=1, jobs_per_shard=1,
                      max_deadline_s=30.0)
    net_kwargs.update(kwargs.pop("net", {}))
    return NetServer(solver_config=SolverConfig(),
                     net_config=NetConfig(**net_kwargs), grace=1.0,
                     **kwargs)


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: now[0])
        assert all(bucket.take(now[0]) for _ in range(3))
        assert not bucket.take(now[0])         # burst spent
        now[0] = 1.0
        assert bucket.take(now[0])             # 2 tokens refilled
        assert bucket.take(now[0])
        assert not bucket.take(now[0])

    def test_cost_above_balance_sheds(self):
        bucket = TokenBucket(rate=1.0, burst=10, clock=lambda: 0.0)
        assert not bucket.take(0.0, cost=11.0)
        assert bucket.take(0.0, cost=10.0)


class TestSolveWire:
    def test_solve_cache_coalesce_validate_drain(self):
        async def scenario():
            server = boot(net={"shards": 2})
            host, port = await server.start()
            wire = await Wire(host, port).connect()

            first = await wire.rpc({"op": "solve", "id": 1,
                                    "smt2": sat_text(), "deadline_s": 25})
            assert first["status"] == "sat"
            assert first["id"] == 1
            assert isinstance(first["model"], dict)

            # The repeat never touches a worker.
            again = await wire.rpc({"op": "solve", "id": 2,
                                    "smt2": sat_text()})
            assert again["status"] == "sat"
            assert again["served_from"] == "router-cache"

            # Three concurrent asks of a *fresh* problem share one solve.
            fresh = unsat_text("cd")
            for rid in (10, 11, 12):
                await wire.send({"op": "solve", "id": rid, "smt2": fresh,
                                 "deadline_s": 25})
            replies = [await wire.recv() for _ in range(3)]
            assert {r["status"] for r in replies} == {"unsat"}
            assert sum(1 for r in replies if r["coalesced"]) == 2

            # The sat model round-trips through the validator.
            verdict = await wire.rpc({"op": "validate",
                                      "smt2": sat_text(),
                                      "model": first["model"]})
            assert verdict["valid"] is True

            health = await wire.rpc({"op": "health"})
            assert health["ok"] and len(health["shards"]) == 2

            # Drain: late requests answer shutdown, the server exits.
            server.initiate_shutdown()
            late = await wire.rpc({"op": "solve", "id": 99,
                                   "smt2": sat_text()})
            assert late["answer"] == "unknown(shutdown)"
            await asyncio.wait_for(server.serve_forever(), 30.0)
            wire.close()

        asyncio.run(scenario())


class TestTopOverHttp:
    def test_top_scrapes_a_live_metrics_endpoint(self):
        """``repro top http://host:port/metrics`` — the snapshot-file
        scraper pointed at a living server."""
        from repro.obs.top import scrape

        async def scenario():
            server = boot()
            host, port = await server.start()
            await asyncio.sleep(0.05)        # one pump beat for gauges
            loop = asyncio.get_running_loop()
            url = "http://%s:%d/metrics" % (host, port)
            metrics = await loop.run_in_executor(None, scrape, url)
            assert metrics is not None
            flat = metrics.flat()
            assert flat.get("net.shards_total") == 1
            # A dead endpoint degrades to None (top shows "waiting"),
            # exactly like a snapshot file that is not there yet.
            gone = await loop.run_in_executor(
                None, scrape, "http://127.0.0.1:9/metrics")
            assert gone is None
            await server.close()

        asyncio.run(scenario())


class TestAdmissionLadder:
    def test_every_rung_answers_well_formed(self):
        async def scenario():
            tenants = (TenantQuota("ci", "right-key", rps=1000, burst=1000),
                       TenantQuota("noisy", "noisy-key", rps=0.001,
                                   burst=1))
            server = boot(net={"tenants": tenants, "admin_key": "adm",
                               "max_frame_bytes": 2048})
            host, port = await server.start()
            wire = await Wire(host, port).connect()

            # unauthorized: no key / wrong key.
            shed = await wire.rpc({"op": "solve", "smt2": sat_text()})
            assert shed["answer"] == "unknown(unauthorized)"
            shed = await wire.rpc({"op": "solve", "smt2": sat_text(),
                                   "api_key": "wrong"})
            assert shed["answer"] == "unknown(unauthorized)"

            # throttled: the noisy tenant's bucket holds one token.
            ok = await wire.rpc({"op": "solve", "smt2": sat_text(),
                                 "api_key": "noisy-key",
                                 "deadline_s": 25})
            assert ok["status"] in ("sat", "unknown")
            shed = await wire.rpc({"op": "solve", "smt2": sat_text(),
                                   "api_key": "noisy-key"})
            assert shed["answer"] == "unknown(throttled)"
            assert shed["retry_after_s"] > 0

            # parse-error / spent deadline / unknown op.
            shed = await wire.rpc({"op": "solve", "smt2": "(assert",
                                   "api_key": "right-key"})
            assert shed["answer"] == "unknown(parse-error)"
            shed = await wire.rpc({"op": "solve", "smt2": sat_text(),
                                   "api_key": "right-key",
                                   "deadline_s": 0})
            assert shed["answer"] == "unknown(deadline)"
            shed = await wire.rpc({"op": "frobnicate",
                                   "api_key": "right-key"})
            assert shed["answer"] == "unknown(bad-request)"

            # admin surface: guarded, then useful.
            shed = await wire.rpc({"op": "admin.state"})
            assert shed["answer"] == "unknown(unauthorized)"
            state = await wire.rpc({"op": "admin.state",
                                    "admin_key": "adm"})
            assert state["counters"]["routed"] >= 1
            assert state["shards"][0]["alive"]

            # too-large: an oversize frame answers, then drops framing.
            big = await Wire(host, port).connect()
            data = b"x" * 4096
            big.writer.write(len(data).to_bytes(4, "big") + data)
            await big.writer.drain()
            reply = await big.recv()
            assert reply["answer"] == "unknown(too-large)"
            big.close()

            # The shed counters made it to the exported metrics.
            metrics = await wire.rpc({"op": "metrics"})
            assert "repro_net_shed_total" in metrics["metrics"]
            assert "repro_net_throttled_total" in metrics["metrics"]

            wire.close()
            await server.close()

        asyncio.run(scenario())


class TestChaos:
    def test_net_fault_drops_connection_and_retry_succeeds(self):
        async def scenario():
            server = boot(net={"admin_key": "adm"})
            host, port = await server.start()
            admin = await Wire(host, port).connect()
            armed = await admin.rpc({"op": "admin.fault",
                                     "spec": "net.read:raise:times=1",
                                     "admin_key": "adm"})
            assert "armed" in armed

            # The next read on a fresh connection eats the fault: the
            # connection drops with no response, like a torn request.
            victim = await Wire(host, port).connect()
            dropped = False
            try:
                await victim.rpc({"op": "solve", "smt2": sat_text(),
                                  "deadline_s": 25}, timeout=10.0)
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.TimeoutError, OSError):
                dropped = True
            victim.close()
            assert dropped

            # The retry (fault exhausted) gets a real answer.
            retry = await Wire(host, port).connect()
            answer = await retry.rpc({"op": "solve", "smt2": sat_text(),
                                      "deadline_s": 25})
            assert answer["status"] == "sat"
            retry.close()

            await admin.rpc({"op": "admin.disarm", "admin_key": "adm"})
            await admin.rpc({"op": "admin.drain", "admin_key": "adm"})
            await asyncio.wait_for(server.serve_forever(), 30.0)
            admin.close()

        try:
            asyncio.run(scenario())
        finally:
            faults.disarm()          # belt and braces for test isolation

    def test_kill_and_restart_shard_through_admin(self):
        async def scenario():
            server = boot(net={"shards": 2, "jobs_per_shard": 1,
                               "admin_key": "adm"})
            host, port = await server.start()
            wire = await Wire(host, port).connect()

            killed = await wire.rpc({"op": "admin.kill-shard", "shard": 0,
                                     "admin_key": "adm"})
            assert killed["killed"] is True

            # With one shard dark, every fingerprint still lands
            # somewhere: the ring walks past the dead slot.
            for chars in ("ab", "cd", "ef"):
                reply = await wire.rpc({"op": "solve",
                                        "smt2": sat_text(chars),
                                        "deadline_s": 25})
                assert reply["status"] == "sat"
                assert reply["shard"] == 1

            health = await wire.rpc({"op": "health"})
            alive = [s["alive"] for s in health["shards"]]
            assert alive == [False, True]

            restarted = await wire.rpc({"op": "admin.restart-shard",
                                        "shard": 0, "admin_key": "adm"})
            assert restarted["restarted"] is True
            health = await wire.rpc({"op": "health"})
            assert all(s["alive"] for s in health["shards"])

            wire.close()
            await server.close()

        asyncio.run(scenario())


class TestNetserveCli:
    def test_netserve_boots_answers_and_drains_on_sigterm(self):
        """The ``repro netserve`` glue end-to-end: a real process, a
        real socket, a real SIGTERM, exit status zero."""
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "netserve", "--port", "0",
             "--shards", "1", "--jobs", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        try:
            ready, _, _ = select.select([proc.stdout], [], [], 30.0)
            assert ready, "netserve never printed its listening line"
            banner = proc.stdout.readline()
            assert "listening on" in banner
            port = int(banner.split("listening on ")[1]
                       .split()[0].rsplit(":", 1)[1])

            with socket.create_connection(("127.0.0.1", port),
                                          timeout=30.0) as sock:
                sock.settimeout(30.0)
                data = json.dumps({"op": "health", "id": 1}).encode()
                sock.sendall(len(data).to_bytes(4, "big") + data)
                head = sock.recv(4)
                body = b""
                want = int.from_bytes(head, "big")
                while len(body) < want:
                    body += sock.recv(want - len(body))
                reply = json.loads(body.decode())
                assert reply["ok"] is True

            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60.0)
            assert proc.returncode == 0, err
            assert "drained" in out
            assert "Traceback" not in err
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()


class TestSigtermDrainWithStore:
    def test_drain_under_real_sigterm_with_persistent_store(self, tmp_path):
        """The PR's drain satellite: SIGTERM with the persistent store
        attached.  Late requests answer ``unknown(shutdown)``, the
        segments close cleanly (no torn tail), and the next boot
        replays the index with zero quarantined records."""
        store_dir = str(tmp_path / "store")

        async def scenario():
            server = boot(store_path=store_dir)
            host, port = await server.start()
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM,
                                    server.initiate_shutdown)
            wire = await Wire(host, port).connect()

            # Populate the store through a real worker solve.
            first = await wire.rpc({"op": "solve", "smt2": sat_text(),
                                    "deadline_s": 25})
            assert first["status"] == "sat"

            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.sleep(0)           # let the handler run

            # Queued-after-drain requests are answered, not dropped.
            for index in range(3):
                late = await wire.rpc({"op": "solve",
                                       "smt2": sat_text("cd"),
                                       "id": index})
                assert late["answer"] == "unknown(shutdown)"

            await asyncio.wait_for(server.serve_forever(), 30.0)
            wire.close()
            loop.remove_signal_handler(signal.SIGTERM)

        asyncio.run(scenario())

        # Segments closed cleanly: every record parses, no torn tail.
        segments = sorted(glob.glob(os.path.join(store_dir, "seg-*.log")))
        assert segments, "the solve never reached the store"
        total_records = 0
        for segment in segments:
            records, offset = scan_segment(segment)
            total_records += len(records)
            assert offset == os.path.getsize(segment)
        assert total_records >= 1

        # Next boot replays the index: entries present, none quarantined.
        reborn = Store(store_dir)
        reborn.refresh(force=True)
        assert len(reborn._index) >= 1
        assert reborn.counters["quarantined"] == 0
