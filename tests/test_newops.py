"""End-to-end tests for the widened string fragment and converter fixes.

Covers the new SMT-LIB ops (``str.replace``/``str.replace_all``, total
``str.at``, ``str.to_code``/``str.from_code``, annotated
``str.to_int.<semantics>``), the n-ary ``distinct``/chained ``=``
converter bugfixes, the undeclared-symbol bugfix, and print -> parse
round-trip properties over the widened generator.
"""

import random

import pytest

from repro.core import TrauSolver
from repro.diff.generator import GenConfig, generate
from repro.errors import UnsupportedConstraint
from repro.smtlib import load_problem, problem_to_smtlib
from repro.strings import check_model


def _solve(text, timeout=30):
    return TrauSolver().solve(load_problem(text).problem, timeout=timeout)


class TestReplace:
    def test_replace_first_only(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun r () String)
        (assert (= s "abcabc"))
        (assert (= r (str.replace s "bc" "X")))
        """)
        assert result.status == "sat"
        assert result.model["r"] == "aXabc"

    def test_replace_absent_is_identity(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun r () String)
        (assert (= s "abc"))
        (assert (= r (str.replace s "zz" "X")))
        """)
        assert result.status == "sat"
        assert result.model["r"] == "abc"

    def test_replace_empty_needle_prepends(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun r () String)
        (assert (= s "ab"))
        (assert (= r (str.replace s "" "X")))
        """)
        assert result.status == "sat"
        assert result.model["r"] == "Xab"

    def test_replace_all(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun r () String)
        (assert (= s "abcabc"))
        (assert (= r (str.replace_all s "bc" "X")))
        """)
        assert result.status == "sat"
        assert result.model["r"] == "aXaX"

    def test_replace_all_wrong_result_unsat(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun r () String)
        (assert (= s "aaa"))
        (assert (= r (str.replace_all s "a" "b")))
        (assert (= r "bba"))
        """)
        assert result.status == "unsat"


class TestAt:
    def test_in_range(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun c () String)
        (assert (= s "xyz"))
        (assert (= c (str.at s 1)))
        """)
        assert result.status == "sat"
        assert result.model["c"] == "y"

    def test_out_of_range_is_empty(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun c () String)
        (assert (= s "xyz"))
        (assert (= c (str.at s 7)))
        """)
        assert result.status == "sat"
        assert result.model["c"] == ""

    def test_negative_index_is_empty(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun c () String)
        (assert (= s "xyz"))
        (assert (= c (str.at s (- 1))))
        """)
        assert result.status == "sat"
        assert result.model["c"] == ""


class TestCharCodes:
    def test_to_code(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= s "A"))
        (assert (= n (str.to_code s)))
        """)
        assert result.status == "sat"
        assert result.model["n"] == 65

    def test_to_code_non_singleton_is_minus_one(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= s "AB"))
        (assert (= n (str.to_code s)))
        """)
        assert result.status == "sat"
        assert result.model["n"] == -1

    def test_from_code(self):
        result = _solve("""
        (declare-fun n () Int)
        (declare-fun s () String)
        (assert (= n 97))
        (assert (= s (str.from_code n)))
        """)
        assert result.status == "sat"
        assert result.model["s"] == "a"

    def test_from_code_invalid_is_empty(self):
        result = _solve("""
        (declare-fun n () Int)
        (declare-fun s () String)
        (assert (= n 7))
        (assert (= s (str.from_code n)))
        """)
        assert result.status == "sat"
        assert result.model["s"] == ""

    def test_code_inversion(self):
        # Synthesize the char from its code going the other way round.
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= n (str.to_code s)))
        (assert (= n 90))
        """)
        assert result.status == "sat"
        assert result.model["s"] == "Z"


class TestSemanticsAnnotations:
    def test_strtol_accepts_whitespace_sign(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= s " +42"))
        (assert (= n (str.to_int.strtol s)))
        """)
        assert result.status == "sat"
        assert result.model["n"] == 42

    def test_base_rejects_whitespace_sign(self):
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= s " +42"))
        (assert (= n (str.to_int s)))
        """)
        assert result.status == "sat"
        assert result.model["n"] == -1

    def test_pg_int_synthesis(self):
        # pg_int takes a sign but no whitespace: solver must find "-7".
        result = _solve("""
        (declare-fun s () String)
        (declare-fun n () Int)
        (assert (= n (str.to_int.pg_int s)))
        (assert (= n (- 7)))
        (assert (= (str.len s) 2))
        """)
        assert result.status == "sat"
        assert result.model["s"] == "-7"

    def test_unknown_semantics_is_loud(self):
        with pytest.raises(UnsupportedConstraint):
            load_problem("""
            (declare-fun s () String)
            (declare-fun n () Int)
            (assert (= n (str.to_int.bogus s)))
            """)


class TestDistinctRegression:
    """(distinct a b c) once silently dropped every operand past the
    first two; these re-fire that bug for both sorts."""

    THREE_STRINGS = """
    (declare-fun a () String)
    (declare-fun b () String)
    (declare-fun c () String)
    (assert (str.in_re a (re.union (str.to_re "x") (str.to_re "y"))))
    (assert (str.in_re b (re.union (str.to_re "x") (str.to_re "y"))))
    (assert (str.in_re c (re.union (str.to_re "x") (str.to_re "y"))))
    (assert (distinct a b c))
    """

    def test_three_strings_two_letters_unsat(self):
        # Pigeonhole: three pairwise-distinct words from a two-word
        # language.  The buggy converter only produced a != b and
        # reported SAT with c = a.
        assert _solve(self.THREE_STRINGS).status == "unsat"

    def test_three_strings_three_letters_sat(self):
        text = self.THREE_STRINGS.replace(
            '(str.to_re "x") (str.to_re "y")',
            '(str.to_re "x") (str.to_re "y") (str.to_re "z")')
        result = _solve(text)
        assert result.status == "sat"
        words = [result.model[v] for v in "abc"]
        assert len(set(words)) == 3

    def test_three_ints_unsat(self):
        result = _solve("""
        (declare-fun i () Int)
        (declare-fun j () Int)
        (declare-fun k () Int)
        (assert (and (<= 0 i) (<= i 1)))
        (assert (and (<= 0 j) (<= j 1)))
        (assert (and (<= 0 k) (<= k 1)))
        (assert (distinct i j k))
        """)
        assert result.status == "unsat"

    def test_chained_equality_propagates(self):
        # (= a b c) once ignored c entirely; with a = "x", c = "y" the
        # chain must be UNSAT.
        result = _solve("""
        (declare-fun a () String)
        (declare-fun b () String)
        (declare-fun c () String)
        (assert (= a "x"))
        (assert (= c "y"))
        (assert (= a b c))
        """)
        assert result.status == "unsat"

    def test_chained_int_equality(self):
        result = _solve("""
        (declare-fun i () Int)
        (declare-fun j () Int)
        (declare-fun k () Int)
        (assert (= i 3))
        (assert (= i j k))
        """)
        assert result.status == "sat"
        assert result.model["j"] == 3
        assert result.model["k"] == 3


class TestUndeclaredSymbols:
    """_sort_of once guessed "Int" for any unknown symbol, silently
    accepting mistyped scripts."""

    def test_mistyped_int_symbol_is_loud(self):
        with pytest.raises(UnsupportedConstraint):
            load_problem("""
            (declare-fun count () Int)
            (assert (= cnt 5))
            """)

    def test_mistyped_string_symbol_is_loud(self):
        with pytest.raises(UnsupportedConstraint):
            load_problem("""
            (declare-fun s () String)
            (assert (= (str.len ss) 3))
            """)

    def test_declared_symbols_still_fine(self):
        script = load_problem("""
        (declare-fun count () Int)
        (assert (= count 5))
        """)
        assert "count" in script.problem.int_vars()


class TestRoundTripProperties:
    """print -> parse reaches a printed fixpoint after one iteration and
    preserves witnesses, across the widened generator."""

    SEEDS = range(12)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_print_parse_fixpoint(self, seed):
        generated = generate(random.Random("rt:%d" % seed), GenConfig())
        out1 = problem_to_smtlib(generated.problem)
        reparsed = load_problem(out1).problem
        out2 = problem_to_smtlib(reparsed)
        out3 = problem_to_smtlib(load_problem(out2).problem)
        assert out2 == out3

    @pytest.mark.parametrize("seed", SEEDS)
    def test_witness_survives_roundtrip(self, seed):
        generated = generate(random.Random("rt:%d" % seed), GenConfig())
        if not generated.certified:
            pytest.skip("generator emitted a lie for this seed")
        assert check_model(generated.problem, generated.witness)
        reparsed = load_problem(problem_to_smtlib(generated.problem)).problem
        assert check_model(reparsed, generated.witness)
