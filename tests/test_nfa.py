"""Unit and property tests for the NFA library."""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.automata.nfa import EPS, NFA
from repro.automata.regex import regex_to_nfa


def w(text):
    return A.encode_word(text)


class TestConstruction:
    def test_empty_language(self):
        assert not NFA.empty().accepts(w(""))
        assert NFA.empty().is_empty()

    def test_epsilon_language(self):
        assert NFA.epsilon().accepts(w(""))
        assert not NFA.epsilon().accepts(w("a"))

    def test_from_word(self):
        n = NFA.from_word(w("abc"))
        assert n.accepts(w("abc"))
        assert not n.accepts(w("ab"))
        assert not n.accepts(w("abcd"))

    def test_from_symbols(self):
        n = NFA.from_symbols(w("ab"))
        assert n.accepts(w("a")) and n.accepts(w("b"))
        assert not n.accepts(w("c")) and not n.accepts(w(""))


class TestOperations:
    def test_union(self):
        n = NFA.from_word(w("ab")).union(NFA.from_word(w("cd")))
        assert n.accepts(w("ab")) and n.accepts(w("cd"))
        assert not n.accepts(w("ad"))

    def test_concat(self):
        n = NFA.from_word(w("ab")).concat(NFA.from_word(w("cd")))
        assert n.accepts(w("abcd"))
        assert not n.accepts(w("ab"))

    def test_star_and_plus(self):
        ab = NFA.from_word(w("ab"))
        star, plus = ab.star(), ab.plus()
        assert star.accepts(w("")) and star.accepts(w("abab"))
        assert not plus.accepts(w("")) and plus.accepts(w("ab"))

    def test_repeat_bounds(self):
        a = NFA.from_word(w("a"))
        n = a.repeat(2, 4)
        for k in range(7):
            assert n.accepts(w("a" * k)) == (2 <= k <= 4)

    def test_intersect(self):
        left = regex_to_nfa("a*b*")
        right = regex_to_nfa("(ab)*|aab")
        both = left.intersect(right)
        assert both.accepts(w(""))
        assert both.accepts(w("ab"))
        assert both.accepts(w("aab"))
        assert not both.accepts(w("abab"))   # not in a*b*

    def test_complement(self):
        digits = [A.code(c) for c in "0123456789"]
        n = regex_to_nfa("[0-9]{2}").complement(digits)
        assert n.accepts(w("123"))
        assert n.accepts(w(""))
        assert not n.accepts(w("12"))

    def test_determinize_preserves_language(self):
        n = regex_to_nfa("(a|ab)(c|bc)")
        d = n.determinize()
        for text in ("ac", "abc", "abbc", "ab", "a", "abcbc"):
            assert n.accepts(w(text)) == d.accepts(w(text))

    def test_minimize_preserves_language(self):
        n = regex_to_nfa("(a|b)*abb")
        m = n.minimize()
        for text in ("abb", "aabb", "babb", "ab", "abba", ""):
            assert n.accepts(w(text)) == m.accepts(w(text))
        assert m.num_states <= n.determinize().trim().num_states


class TestStructure:
    def test_trim_drops_dead_states(self):
        n = NFA(4, [(0, 1, 1), (0, 2, 2), (2, 3, 2)], 0, [1])
        t = n.trim()
        assert t.num_states == 2
        assert t.accepts([1])

    def test_without_epsilon(self):
        n = NFA(3, [(0, EPS, 1), (1, 5, 2)], 0, [2])
        e = n.without_epsilon()
        assert e.is_epsilon_free()
        assert e.accepts([5])

    def test_single_final(self):
        n = NFA(3, [(0, 1, 1), (0, 2, 2)], 0, [1, 2])
        s = n.single_final()
        assert len(s.finals) == 1
        assert s.accepts([1]) and s.accepts([2])

    def test_shortest_word(self):
        n = regex_to_nfa("aaa|ab|b")
        assert n.shortest_word() == tuple(w("b"))
        assert NFA.empty().shortest_word() is None

    def test_enumerate_words(self):
        n = regex_to_nfa("a{1,2}b?")
        words = {A.decode_word(word) for word in n.enumerate_words(3)}
        assert words == {"a", "aa", "ab", "aab"}


@st.composite
def small_regex(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(st.sampled_from(["a", "b", "ab", "[ab]", "a?"]))
    left = draw(small_regex(depth=depth - 1))
    right = draw(small_regex(depth=depth - 1))
    op = draw(st.sampled_from(["(%s)(%s)", "(%s)|(%s)"]))
    combined = op % (left, right)
    if draw(st.booleans()):
        combined = "(%s)*" % combined
    return combined


@st.composite
def words_ab(draw):
    return draw(st.text(alphabet="ab", max_size=5))


class TestAlgebraicProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_regex(), small_regex(), words_ab())
    def test_intersection_is_conjunction(self, r1, r2, text):
        n1, n2 = regex_to_nfa(r1), regex_to_nfa(r2)
        both = n1.intersect(n2)
        assert both.accepts(w(text)) == (n1.accepts(w(text))
                                         and n2.accepts(w(text)))

    @settings(max_examples=50, deadline=None)
    @given(small_regex(), words_ab())
    def test_complement_is_negation(self, r, text):
        alphabet = w("ab")
        n = regex_to_nfa(r)
        c = n.complement(alphabet)
        assert c.accepts(w(text)) != n.accepts(w(text))

    @settings(max_examples=50, deadline=None)
    @given(small_regex(), small_regex(), words_ab(), words_ab())
    def test_concat_contains_products(self, r1, r2, t1, t2):
        n1, n2 = regex_to_nfa(r1), regex_to_nfa(r2)
        if n1.accepts(w(t1)) and n2.accepts(w(t2)):
            assert n1.concat(n2).accepts(w(t1 + t2))
