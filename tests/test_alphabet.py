"""Unit tests for the numeric character encoding."""

import pytest

from repro.alphabet import Alphabet, DEFAULT_ALPHABET, EPSILON
from repro.errors import EncodingError


class TestDigitLayout:
    def test_digits_map_to_their_values(self):
        for d in range(10):
            assert DEFAULT_ALPHABET.code(str(d)) == d

    def test_non_digits_have_codes_above_nine(self):
        for char in "abcXYZ _-.:/":
            assert DEFAULT_ALPHABET.code(char) >= 10

    def test_epsilon_is_outside_the_alphabet(self):
        assert EPSILON == -1
        assert EPSILON not in set(DEFAULT_ALPHABET.codes())

    def test_is_digit_code(self):
        assert DEFAULT_ALPHABET.is_digit_code(0)
        assert DEFAULT_ALPHABET.is_digit_code(9)
        assert not DEFAULT_ALPHABET.is_digit_code(10)
        assert not DEFAULT_ALPHABET.is_digit_code(EPSILON)


class TestRoundTrips:
    def test_code_char_round_trip(self):
        for code in DEFAULT_ALPHABET.codes():
            assert DEFAULT_ALPHABET.code(DEFAULT_ALPHABET.char(code)) == code

    def test_word_round_trip(self):
        word = "parse42this!"
        codes = DEFAULT_ALPHABET.encode_word(word)
        assert DEFAULT_ALPHABET.decode_word(codes) == word

    def test_decode_drops_epsilon(self):
        codes = [1, EPSILON, 2, EPSILON]
        assert DEFAULT_ALPHABET.decode_word(codes) == "12"


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(EncodingError):
            DEFAULT_ALPHABET.code("é")

    def test_unknown_code(self):
        with pytest.raises(EncodingError):
            DEFAULT_ALPHABET.char(10 ** 6)


class TestCustomAlphabet:
    def test_small_alphabet_keeps_digits(self):
        small = Alphabet(extra_chars="ab")
        assert len(small) == 12
        assert small.code("a") == 10
        assert small.code("b") == 11
        assert small.max_code == 11

    def test_duplicate_extras_ignored(self):
        small = Alphabet(extra_chars="aa5")
        assert len(small) == 11
