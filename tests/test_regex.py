"""Tests for the regex parser and AST conversion."""

import pytest

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.automata.regex import parse_regex, regex_to_nfa
from repro.errors import ParseError


def matches(pattern, text):
    return regex_to_nfa(pattern).accepts(A.encode_word(text))


class TestLiterals:
    def test_plain_characters(self):
        assert matches("abc", "abc")
        assert not matches("abc", "abd")

    def test_escaped_metacharacters(self):
        assert matches(r"a\.b", "a.b")
        assert not matches(r"a\.b", "axb")
        assert matches(r"\(\)", "()")
        assert matches(r"\\", "\\")

    def test_empty_pattern_matches_empty(self):
        assert matches("", "")
        assert not matches("", "a")


class TestClasses:
    def test_simple_class(self):
        assert matches("[abc]", "b")
        assert not matches("[abc]", "d")

    def test_ranges(self):
        assert matches("[a-e]", "c")
        assert matches("[0-9]", "7")
        assert not matches("[a-e]", "f")

    def test_negated_class(self):
        assert matches("[^0-9]", "x")
        assert not matches("[^0-9]", "5")

    def test_class_with_literal_dash_like_range(self):
        assert matches("[a-c0-2]", "1")
        assert matches("[a-c0-2]", "b")

    def test_dot_matches_anything(self):
        assert matches(".", "z")
        assert matches(".", "%")
        assert not matches(".", "ab")


class TestOperators:
    def test_alternation_and_grouping(self):
        assert matches("ab|cd", "cd")
        assert matches("a(b|c)d", "acd")
        assert not matches("a(b|c)d", "aed")

    def test_star_plus_opt(self):
        assert matches("ab*", "a")
        assert matches("ab*", "abbb")
        assert not matches("ab+", "a")
        assert matches("ab?", "ab")
        assert not matches("ab?", "abb")

    def test_counted_repetition(self):
        assert matches("a{3}", "aaa")
        assert not matches("a{3}", "aa")
        assert matches("a{2,}", "aaaa")
        assert not matches("a{2,}", "a")
        assert matches("(ab){1,2}", "abab")
        assert not matches("(ab){1,2}", "ababab")

    def test_precedence(self):
        # Concatenation binds tighter than alternation.
        assert matches("ab|cd", "ab")
        assert not matches("ab|cd", "ad")


class TestErrors:
    @pytest.mark.parametrize("pattern", [
        "(ab", "ab)", "a{2,1}", "a{", "[abc", "*a", "a|*",
    ])
    def test_malformed_patterns(self, pattern):
        with pytest.raises(ParseError):
            parse_regex(pattern)


class TestPaperPatterns:
    """The patterns the benchmark generators rely on."""

    def test_digit_strings(self):
        assert matches("[0-9]+", "0123")
        assert not matches("[0-9]+", "")
        assert not matches("[0-9]+", "12a")

    def test_canonical_numeral(self):
        pattern = "0|[1-9][0-9]*"
        assert matches(pattern, "0")
        assert matches(pattern, "907")
        assert not matches(pattern, "007")
        assert not matches(pattern, "")

    def test_ipv4_octet(self):
        octet = "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
        for text, ok in [("0", True), ("9", True), ("42", True),
                         ("255", True), ("256", False), ("00", False),
                         ("047", False), ("199", True)]:
            assert matches(octet, text) == ok, text
