"""Tests for the cross-process telemetry pipeline (PR 6).

Three layers, bottom up:

* the mergeable :class:`~repro.obs.metrics.Histogram` and the delta
  encode/decode/aggregate path (:mod:`repro.obs.pipeline`);
* the Prometheus exposition round trip (render -> lint -> parse back)
  and the flight recorder / sampling profiler / ``repro top`` views;
* the acceptance path: a real spawn-worker :class:`SolverService` whose
  aggregator must account for every worker-side span exactly once, and
  an injected fault whose flight dump names the faulted phase.

The JSONL losslessness property (satellite 3) runs under hypothesis:
arbitrary nested span forests with unicode attributes plus
counter/gauge/histogram records must survive dump -> load -> replay ->
re-dump byte-identically.
"""

import glob
import io
import os

from hypothesis import given, settings, strategies as st

from repro.logic import eq
from repro.obs import (
    FlightRecorder, Metrics, SamplingProfiler, TelemetryAggregator, Tracer,
    decode_metrics, dump_jsonl, encode_metrics, lint_prometheus, load_jsonl,
    metrics_from_prometheus, metrics_from_records, read_flight,
    render_prometheus, request_entry, scope, telemetry_delta,
    tracer_from_records, write_snapshot,
)
from repro.obs.metrics import BUCKET_BOUNDS, Histogram
from repro.obs.pipeline import phase_histograms, span_records
from repro.obs.top import render_top, run_top
from repro.serve import SolverService
from repro.strings import ProblemBuilder, str_len


def sat_problem(chars="ab"):
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[%s]{2}" % chars)
    return builder.problem


def unsat_problem():
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[ab]{2}")
    builder.require_int(eq(str_len(x), 9))
    return builder.problem


# -- histogram ----------------------------------------------------------------


class TestHistogram:
    def test_quantiles_interpolate_and_clamp(self):
        h = Histogram()
        for v in (0.001, 0.002, 0.004, 0.1, 2.0):
            h.observe(v)
        assert h.count == 5
        assert h.minimum == 0.001 and h.maximum == 2.0
        # quantiles are bracketed by the observed extremes (clamping)
        assert h.minimum <= h.p50 <= h.p95 <= h.p99 <= h.maximum

    def test_merge_equals_union(self):
        a, b, union = Histogram(), Histogram(), Histogram()
        for i, v in enumerate((0.01, 0.5, 3.0, 40.0, 0.002)):
            (a if i % 2 else b).observe(v)
            union.observe(v)
        a.merge(b)
        assert a.to_dict() == union.to_dict()
        assert a.quantile(0.5) == union.quantile(0.5)

    def test_dict_round_trip(self):
        h = Histogram()
        for v in (1e-7, 0.3, 12.0, 99999.0):
            h.observe(v)
        clone = Histogram.from_dict(h.to_dict())
        assert clone.to_dict() == h.to_dict()
        assert (clone.count, clone.total) == (h.count, h.total)

    def test_cumulative_buckets_end_at_count(self):
        h = Histogram()
        for v in (0.1, 0.2, 5.0):
            h.observe(v)
        rows = h.cumulative_buckets()
        assert rows[-1] == (float("inf"), 3)
        cumulative = [n for _, n in rows]
        assert cumulative == sorted(cumulative)

    def test_bounds_are_strictly_increasing(self):
        assert all(lo < hi for lo, hi in
                   zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]))


# -- delta protocol -----------------------------------------------------------


class TestDeltaProtocol:
    def _scope(self):
        tracer, metrics = Tracer(), Metrics()
        with tracer.span("solve"):
            with tracer.span("round"):
                pass
            with tracer.span("round"):
                pass
        metrics.add("smt.calls", 3)
        metrics.gauge("worker.rss_bytes", 1024)
        metrics.observe("flatten.lia_vars", 17)
        return tracer, metrics

    def test_encode_decode_round_trip(self):
        _, metrics = self._scope()
        clone = decode_metrics(encode_metrics(metrics))
        assert clone.counters == metrics.counters
        assert clone.gauges == metrics.gauges
        assert clone.histograms["flatten.lia_vars"].to_dict() \
            == metrics.histograms["flatten.lia_vars"].to_dict()

    def test_phase_histograms_one_observation_per_span(self):
        tracer, _ = self._scope()
        phases = phase_histograms(tracer)
        assert phases.histograms["phase.solve_s"].count == 1
        assert phases.histograms["phase.round_s"].count == 2

    def test_delta_carries_bounded_spans(self):
        tracer, metrics = self._scope()
        delta = telemetry_delta(tracer, metrics)
        assert delta["counters"]["smt.calls"] == 3
        assert "phase.round_s" in delta["histograms"]
        names = [r["name"] for r in delta["spans"] if r["type"] == "span"]
        assert names == ["solve", "round", "round"]

    def test_span_records_truncate_at_cap(self):
        tracer = Tracer()
        for i in range(20):
            with tracer.span("s%d" % i):
                pass
        records = span_records(tracer, cap=5)
        assert len(records) == 6
        assert records[-1]["name"] == "telemetry.truncated"

    def test_aggregator_ingest_is_exactly_once(self):
        agg = TelemetryAggregator(clock=lambda: 0.0)
        for worker in (101, 101, 202):
            tracer, metrics = self._scope()
            agg.ingest(telemetry_delta(tracer, metrics), worker=worker)
        assert agg.ingested == 3
        assert agg.per_worker == {"101": 2, "202": 1}
        assert agg.metrics.counters["smt.calls"] == 9
        phases = dict(agg.phase_stats())
        assert phases["round"].count == 6
        view = agg.combined()
        assert view.gauges["telemetry.deltas"] == 3
        assert view.gauges["telemetry.deltas.worker.101"] == 2
        # combined() is a fresh view: rendering twice must not double
        assert agg.combined().counters["smt.calls"] == 9

    def test_ingest_scope_matches_delta_path(self):
        direct, via_scope = TelemetryAggregator(), TelemetryAggregator()
        tracer, metrics = self._scope()
        direct.ingest(telemetry_delta(tracer, metrics, spans=False))
        tracer2, metrics2 = self._scope()
        via_scope.ingest_scope(tracer2, metrics2)
        assert direct.metrics.counters == via_scope.metrics.counters
        assert sorted(direct.metrics.histograms) \
            == sorted(via_scope.metrics.histograms)


# -- prometheus exposition ----------------------------------------------------


class TestPrometheus:
    def _registry(self):
        m = Metrics()
        m.add("serve.answers", 12)
        m.add("serve.answers.sat", 7)
        m.gauge("serve.queue_depth", 3)
        for v in (0.01, 0.02, 0.5, 1.5):
            m.observe("phase.solve_s", v)
        return m

    def test_render_lints_clean(self):
        text = render_prometheus(self._registry())
        assert lint_prometheus(text) == []
        assert "# TYPE repro_serve_answers_total counter" in text
        assert 'repro_phase_solve_s_bucket{le="+Inf"} 4' in text

    def test_parse_back_reconstructs_registry(self):
        original = self._registry()
        clone = metrics_from_prometheus(render_prometheus(original))
        assert clone.counters == original.counters
        assert clone.gauges == original.gauges
        hist = clone.histograms["phase.solve_s"]
        want = original.histograms["phase.solve_s"]
        assert hist.to_dict() == want.to_dict()
        assert (hist.minimum, hist.maximum) == (want.minimum, want.maximum)

    def test_aggregator_and_extra_render(self):
        agg = TelemetryAggregator(clock=lambda: 0.0)
        tracer, metrics = Tracer(), Metrics()
        with tracer.span("solve"):
            pass
        metrics.add("smt.calls")
        agg.ingest_scope(tracer, metrics)
        extra = Metrics()
        extra.gauge("serve.queue_depth", 5)
        text = render_prometheus(agg, extra=extra)
        assert lint_prometheus(text) == []
        assert "repro_serve_queue_depth 5" in text
        assert "repro_smt_calls_total 1" in text

    def test_lint_catches_breakage(self):
        text = render_prometheus(self._registry())
        broken = text.replace('le="+Inf"} 4', 'le="+Inf"} 3')
        assert any("+Inf" in p or "count" in p
                   for p in lint_prometheus(broken))

    def test_write_snapshot_atomic(self, tmp_path):
        path = tmp_path / "m.prom"
        write_snapshot(str(path), self._registry())
        assert lint_prometheus(path.read_text()) == []
        assert not glob.glob(str(tmp_path / "*.tmp*"))


# -- flight recorder ----------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        for i in range(7):
            rec.push({"name": "r%d" % i})
        assert [e["name"] for e in rec.ring] == ["r4", "r5", "r6"]

    def test_dump_and_read_back(self, tmp_path):
        rec = FlightRecorder(str(tmp_path), source="service")
        rec.push(request_entry("good", verdict="sat", elapsed=0.1))
        rec.push(request_entry("bad", verdict="unknown", elapsed=9.9,
                               stats={"degraded_to": "oneshot",
                                      "irrelevant": 1}))
        path = rec.dump("degraded", detail="degraded to oneshot")
        assert os.path.basename(path).startswith("flight-service-pid")
        body = read_flight(path)
        assert body["trigger"] == "degraded"
        assert body["request"]["name"] == "bad"
        assert body["request"]["stats"] == {"degraded_to": "oneshot"}
        assert [e["name"] for e in body["recent"]] == ["good"]

    def test_directory_none_returns_text(self):
        rec = FlightRecorder()
        rec.push({"name": "only"})
        text = rec.dump("slo", detail="too slow")
        assert text.startswith("# repro flight recorder")
        assert read_flight(text)["detail"] == "too slow"


# -- sampling profiler --------------------------------------------------------


def _busy(n):
    total = 0
    for i in range(n):
        total += len(str(i))
    return total


class TestSamplingProfiler:
    def _run(self):
        profiler = SamplingProfiler(every=101)
        tracer = Tracer()
        with scope(tracer, Metrics()):
            with profiler:
                with tracer.span("alpha"):
                    _busy(4000)
                with tracer.span("beta"):
                    _busy(400)
        return profiler

    def test_deterministic_across_runs(self):
        a, b = self._run(), self._run()
        assert a.events == b.events
        assert a.samples == b.samples
        assert a.by_key == b.by_key

    def test_attributes_samples_to_phases(self):
        profiler = self._run()
        assert profiler.samples > 0
        totals = profiler.phase_totals()
        assert totals.get("alpha", 0) > totals.get("beta", 0)
        assert any("alpha" in phase for phase, _, _, _ in profiler.hot())

    def test_report_and_dict_forms(self):
        profiler = self._run()
        text = profiler.report(top=3)
        assert text.startswith("profile: %d samples" % profiler.samples)
        doc = profiler.to_dict(top=3)
        assert doc["every"] == 101
        assert len(doc["hot"]) <= 3
        assert abs(sum(r["share"] for r in doc["hot"])) <= 1.01

    def test_restores_previous_profile_hook(self):
        import sys
        before = sys.getprofile()
        with SamplingProfiler():
            pass
        assert sys.getprofile() is before


# -- repro top ----------------------------------------------------------------


class TestTop:
    def _metrics(self):
        m = Metrics()
        m.add("serve.answers", 10)
        m.add("serve.answers.sat", 6)
        m.add("serve.answers.unsat", 4)
        m.add("serve.requests", 10)
        m.gauge("telemetry.uptime_s", 5.0)
        m.gauge("telemetry.workers", 2)
        m.gauge("telemetry.deltas", 10)
        for v in (0.1, 0.2, 0.3):
            m.observe("phase.solve_s", v)
        return m

    def test_render_top_frame(self):
        frame = render_top(self._metrics(), source="m.prom")
        assert "repro top -- m.prom" in frame
        assert "answers 10 (sat=6 unsat=4 unknown=0)" in frame
        assert "workers 2" in frame
        lines = frame.splitlines()
        assert any(line.startswith("solve") and " 3 " in line
                   for line in lines)

    def test_run_top_over_snapshot_file(self, tmp_path):
        path = tmp_path / "m.prom"
        write_snapshot(str(path), self._metrics())
        out = io.StringIO()
        frames = run_top(str(path), interval=0.0, iterations=2, out=out,
                         clear=False)
        assert frames == 2
        assert "repro top" in out.getvalue()
        assert "rps" in out.getvalue()

    def test_run_top_waits_for_missing_snapshot(self, tmp_path):
        out = io.StringIO()
        frames = run_top(str(tmp_path / "nope.prom"), interval=0.0,
                         iterations=1, out=out, clear=False)
        assert frames == 1
        assert "waiting for snapshot" in out.getvalue()


# -- acceptance: real spawn workers -------------------------------------------


class TestServicePipeline:
    def test_aggregator_accounts_for_every_worker_span(self):
        agg = TelemetryAggregator()
        with SolverService(jobs=2, timeout=20, aggregator=agg) as service:
            results = service.run_batch([
                ("s1", sat_problem()),
                ("u1", unsat_problem()),
                ("s2", sat_problem("cd")),
            ])
        assert [r.status for r in results] == ["sat", "unsat", "sat"]
        # one delta per request, each ingested exactly once
        assert agg.ingested >= 3
        view = agg.combined()
        assert view.counters["serve.answers"] == 3
        assert view.counters["serve.requests"] == 3
        phases = dict(agg.phase_stats())
        # the acceptance contract: aggregated histogram counts equal the
        # sum of the workers' in-process span counts — every request runs
        # exactly one worker-side `solve` span and the parent observes
        # exactly one `serve.request` span.
        assert phases["solve"].count == 3
        assert phases["serve.request"].count == 3
        # worker-side sub-phases crossed the process boundary too
        assert "smt.solve" in phases or "overapprox" in phases
        text = render_prometheus(agg)
        assert lint_prometheus(text) == []
        # ...and the exposition round-trips the same counts
        parsed = metrics_from_prometheus(text)
        assert parsed.histograms["phase.solve_s"].count == 3

    def test_injected_fault_leaves_flight_dump_naming_phase(self, tmp_path):
        agg = TelemetryAggregator()
        with SolverService(jobs=1, timeout=20, aggregator=agg,
                           flight_dir=str(tmp_path)) as service:
            handle = service.submit(
                sat_problem(), name="faulty",
                fault_specs=("smt.session.solve:raise:times=1",))
            result = service.wait(handle)
        assert result.status == "sat"
        assert result.stats.get("degraded_to")
        assert "degraded_to" in result.as_dict()
        dumps = glob.glob(str(tmp_path / "flight-*degraded*.json"))
        assert dumps, "degradation must leave a flight dump"
        body = read_flight(dumps[0])
        assert body["trigger"] == "degraded"
        assert body["request"]["name"] == "faulty"
        assert body["request"].get("spans"), "dump must carry span records"
        import json
        assert "smt.session.solve" in json.dumps(body["request"]), \
            "dump must name the faulted phase"

    def test_worker_metrics_round_trip_through_jsonl(self):
        # records produced in a *spawned worker* survive the JSONL path
        agg = TelemetryAggregator()
        with SolverService(jobs=1, timeout=20, aggregator=agg) as service:
            service.run_batch([("s1", sat_problem())])
        merged = agg.combined()
        text = dump_jsonl(Tracer(), merged)
        records = load_jsonl(io.StringIO(text))
        clone = metrics_from_records(records)
        assert clone.counters == merged.counters
        assert {n: h.to_dict() for n, h in clone.histograms.items()} \
            == {n: h.to_dict() for n, h in merged.histograms.items()}


# -- property: JSONL round trip is lossless -----------------------------------


_names = st.text(min_size=1, max_size=10).filter(str.strip)
_values = st.one_of(
    st.integers(-10 ** 9, 10 ** 9),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=10),
    st.booleans(),
)
_attrs = st.dictionaries(_names, _values, max_size=3)
_events = st.lists(st.tuples(_names, _attrs), max_size=2)
_node = st.recursive(
    st.tuples(_names, _attrs, _events, st.just([])),
    lambda children: st.tuples(_names, _attrs, _events,
                               st.lists(children, max_size=3)),
    max_leaves=12)
_forest = st.lists(_node, min_size=1, max_size=3)
_observations = st.lists(
    st.floats(min_value=1e-9, max_value=1e9,
              allow_nan=False, allow_infinity=False),
    min_size=1, max_size=8)


def _grow(tracer, nodes):
    for name, attrs, events, children in nodes:
        with tracer.span(name) as span:
            span.attrs.update(attrs)
            for event_name, event_attrs in events:
                span.events.append((event_name, dict(event_attrs)))
            _grow(tracer, children)


class TestJsonlLossless:
    @settings(max_examples=60, deadline=None)
    @given(forest=_forest,
           counters=st.dictionaries(_names, st.integers(1, 10 ** 9),
                                    max_size=4),
           gauges=st.dictionaries(
               _names, st.floats(allow_nan=False, allow_infinity=False),
               max_size=4),
           histograms=st.dictionaries(_names, _observations, max_size=3))
    def test_dump_load_replay_redump_identical(self, forest, counters,
                                               gauges, histograms):
        tracer, metrics = Tracer(), Metrics()
        _grow(tracer, forest)
        for name, value in counters.items():
            metrics.add(name, value)
        for name, value in gauges.items():
            metrics.gauge(name, value)
        for name, values in histograms.items():
            for value in values:
                metrics.observe(name, value)

        text = dump_jsonl(tracer, metrics)
        records = load_jsonl(io.StringIO(text))
        replay_tracer = tracer_from_records(records)
        replay_metrics = metrics_from_records(records)
        assert dump_jsonl(replay_tracer, replay_metrics) == text
