"""Tests for the indexOf encoding (builder + SMT-LIB)."""

import pytest

from repro.core import TrauSolver
from repro.errors import SolverError, UnsupportedConstraint
from repro.logic import eq, le, var
from repro.smtlib import load_problem
from repro.strings import ProblemBuilder, str_len


class TestBuilder:
    def test_first_occurrence(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("abcab",))
        i = b.index_of_char(x, "b")
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "sat"
        assert result.model[i] == 1        # not 4: first occurrence

    def test_synthesize_position(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]+")
        b.require_int(eq(str_len(x), 4))
        i = b.index_of_char(x, "b")
        b.require_int(eq(var(i), 2))
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "sat"
        assert result.model["x"][:3] == "aab"

    def test_absent_character_is_unsat(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "a+")
        b.require_int(le(str_len(x), 4))
        b.index_of_char(x, "b")
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "unsat"

    def test_multichar_needle_rejected(self):
        b = ProblemBuilder()
        with pytest.raises(SolverError):
            b.index_of_char(b.str_var("x"), "ab")


class TestSmtlib:
    def test_indexof_term(self):
        text = """
        (declare-fun s () String)
        (declare-fun i () Int)
        (assert (= s "xya"))
        (assert (= i (str.indexof s "a" 0)))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["i"] == 2

    def test_multichar_needle(self):
        text = """
        (declare-fun s () String)
        (declare-fun i () Int)
        (assert (= s "xabab"))
        (assert (= i (str.indexof s "ab" 0)))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["i"] == 1      # leftmost occurrence

    def test_nonzero_start(self):
        text = """
        (declare-fun s () String)
        (declare-fun i () Int)
        (assert (= s "xabab"))
        (assert (= i (str.indexof s "ab" 2)))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["i"] == 3

    def test_absent_needle_is_minus_one(self):
        text = """
        (declare-fun s () String)
        (declare-fun i () Int)
        (assert (= s "xyz"))
        (assert (= i (str.indexof s "ab" 0)))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["i"] == -1

    def test_unsupported_forms_are_loud(self):
        # A variable needle is outside the literal-needle fragment.
        with pytest.raises(UnsupportedConstraint):
            load_problem("""
            (declare-fun s () String)
            (declare-fun t () String)
            (assert (= 0 (str.indexof s t 0)))
            """)
