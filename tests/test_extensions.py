"""Tests for the extension operations (the paper's future-work items)."""

import pytest

from repro.core import TrauSolver
from repro.errors import SolverError
from repro.logic import conj, eq, ge, le, var
from repro.strings import ProblemBuilder, check_model, str_len


def solve(builder, timeout=45):
    return TrauSolver().solve(builder, timeout=timeout)


class TestSplitFixed:
    def test_split_concrete(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("ab:cd:e",))
        fields = b.split_fixed(x, ":", 3)
        result = solve(b)
        assert result.status == "sat"
        assert [result.model[f.name] for f in fields] == ["ab", "cd", "e"]

    def test_split_synthesizes_input(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        fields = b.split_fixed(x, "-", 2)
        b.equal((fields[0],), ("left",))
        b.require_int(eq(str_len(fields[1]), 2))
        b.member(fields[1], "[xy]+")
        result = solve(b)
        assert result.status == "sat"
        value = result.model["x"]
        assert value.startswith("left-") and len(value) == 7

    def test_wrong_field_count_unsat(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("a:b:c",))
        b.split_fixed(x, ":", 2)
        result = solve(b)
        assert result.status == "unsat"

    def test_empty_fields_allowed(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("::",))
        fields = b.split_fixed(x, ":", 3)
        result = solve(b)
        assert result.status == "sat"
        assert all(result.model[f.name] == "" for f in fields)

    def test_bad_arguments(self):
        b = ProblemBuilder()
        with pytest.raises(SolverError):
            b.split_fixed(b.str_var("x"), "ab", 2)
        with pytest.raises(SolverError):
            b.split_fixed(b.str_var("x"), ":", 0)


class TestSignedConversion:
    def test_negative_value(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num_signed(x)
        b.require_int(eq(var(n), -42))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"].startswith("-")
        assert int(result.model["x"]) == -42

    def test_positive_value(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num_signed(x)
        b.require_int(eq(var(n), 17))
        b.require_int(le(str_len(x), 2))
        result = solve(b)
        assert result.status == "sat"
        assert int(result.model["x"]) == 17

    def test_concrete_negative_string(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("-007",))
        n = b.to_num_signed(x)
        result = solve(b)
        assert result.status == "sat"
        assert result.model[n] == -7

    def test_range_constraint(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num_signed(x)
        b.require_int(conj(ge(var(n), -3), le(var(n), -1)))
        b.require_int(eq(str_len(x), 2))
        result = solve(b)
        assert result.status == "sat"
        assert -3 <= int(result.model["x"]) <= -1
