"""Tests for the command-line interface."""

import io
import sys

import pytest

from repro.cli import format_model, main


SAT_SCRIPT = """
(set-logic QF_SLIA)
(declare-fun x () String)
(declare-fun n () Int)
(assert (= n (str.to_int x)))
(assert (= n 7))
(assert (= (str.len x) 3))
(check-sat)
"""

UNSAT_SCRIPT = """
(declare-fun x () String)
(assert (str.in_re x ((_ re.loop 2 2) (re.range "a" "b"))))
(assert (>= (str.len x) 3))
(check-sat)
"""


def run_cli(tmp_path, text, *flags):
    path = tmp_path / "input.smt2"
    path.write_text(text)
    captured = io.StringIO()
    stdout = sys.stdout
    sys.stdout = captured
    try:
        code = main([str(path), "--timeout", "30", *flags])
    finally:
        sys.stdout = stdout
    return code, captured.getvalue()


class TestCli:
    def test_sat_with_model(self, tmp_path):
        code, out = run_cli(tmp_path, SAT_SCRIPT, "--model", "--validate")
        assert code == 0
        assert out.splitlines()[0] == "sat"
        assert '"007"' in out
        assert "model validates" in out

    def test_unsat(self, tmp_path):
        code, out = run_cli(tmp_path, UNSAT_SCRIPT)
        assert code == 0
        assert out.strip() == "unsat"

    def test_expected_status_mismatch_flagged(self, tmp_path):
        text = "(set-info :status unsat)\n" + SAT_SCRIPT
        code, out = run_cli(tmp_path, text)
        assert code == 1
        assert "WARNING" in out

    def test_baseline_solvers_selectable(self, tmp_path):
        code, out = run_cli(tmp_path, SAT_SCRIPT, "--solver", "enum")
        assert out.splitlines()[0] in ("sat", "unknown")

    def test_format_model_escapes_quotes(self):
        from repro.strings import ProblemBuilder
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ('a"b',))
        text = format_model(b.problem, {"x": 'a"b'})
        assert '"a""b"' in text
