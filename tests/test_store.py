"""Crash-safe persistent store: framing, validate-on-read, quarantine,
concurrency, and the warm-start layers (DESIGN.md Section 14).

The contract under test everywhere: a store entry is a claim, not a
fact.  Whatever is done to the bytes on disk — torn writes, bit flips,
version skew, concurrent truncation, ``kill -9`` mid-append — every read
is either a validated hit or a clean miss, never an exception and never
a wrong verdict.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro import cache, faults, store
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.logic.formula import ge, le
from repro.logic.terms import var
from repro.store import (
    MISSING, Store, canonicalize, encode_record, key_digest, scan_segment,
)
from repro.strings.ops import ProblemBuilder


@pytest.fixture(autouse=True)
def _fresh_store_state():
    """Isolate every test from process-global store/cache state."""
    store.reset()
    cache.clear_all()
    previous = store.set_default_path(None)
    yield
    store.reset()
    cache.clear_all()
    store.set_default_path(previous)


def _records(root):
    out = []
    for name in sorted(os.listdir(root)):
        if name.startswith("seg-") and name.endswith(".log"):
            records, _ = scan_segment(os.path.join(root, name))
            out.extend(r for _, _, r in records)
    return out


# -- framing -----------------------------------------------------------------


class TestFraming:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "seg.log"
        recs = [{"kind": "k", "key": "d%d" % i, "value": i, "meta": {},
                 "seq": i, "tomb": False} for i in range(5)]
        with open(path, "wb") as handle:
            for rec in recs:
                handle.write(encode_record(rec))
        parsed, offset = scan_segment(str(path))
        assert [r for _, _, r in parsed] == recs
        assert offset == os.path.getsize(path)

    @pytest.mark.parametrize("cut", [1, 7, 20, 41])
    def test_torn_tail_truncates_cleanly(self, tmp_path, cut):
        path = tmp_path / "seg.log"
        good = encode_record({"kind": "k", "key": "a", "value": 1,
                              "meta": {}, "seq": 1, "tomb": False})
        torn = encode_record({"kind": "k", "key": "b", "value": 2,
                              "meta": {}, "seq": 2, "tomb": False})
        with open(path, "wb") as handle:
            handle.write(good + torn[:cut])
        parsed, offset = scan_segment(str(path))
        assert len(parsed) == 1
        assert parsed[0][2]["key"] == "a"
        assert offset == len(good)

    def test_corrupt_frame_stops_scan(self, tmp_path):
        path = tmp_path / "seg.log"
        good = encode_record({"kind": "k", "key": "a", "value": 1,
                              "meta": {}, "seq": 1, "tomb": False})
        bad = bytearray(encode_record({"kind": "k", "key": "b", "value": 2,
                                       "meta": {}, "seq": 2, "tomb": False}))
        bad[len(bad) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(good + bytes(bad))
        parsed, _ = scan_segment(str(path))
        assert [r["key"] for _, _, r in parsed] == ["a"]

    def test_canonical_key_ignores_iteration_order(self):
        a = (frozenset(["x", "y", "zz"]), {"b": 2, "a": 1})
        b = (frozenset(["zz", "y", "x"]), {"a": 1, "b": 2})
        assert canonicalize(a) == canonicalize(b)
        assert key_digest("k", a) == key_digest("k", b)

    def test_canonical_key_distinguishes_values(self):
        assert key_digest("k", (1, 2)) != key_digest("k", (2, 1))
        assert key_digest("k1", "x") != key_digest("k2", "x")


# -- basics ------------------------------------------------------------------


class TestStoreBasics:
    def test_put_get_roundtrip(self, tmp_path):
        st = Store(str(tmp_path))
        assert st.put("verdict", ("fp", "sig"), {"status": "sat"})
        assert st.get("verdict", ("fp", "sig")) == {"status": "sat"}
        assert st.get("verdict", ("other", "sig")) is MISSING
        assert st.counters["hits"] == 1
        assert st.counters["misses"] == 1

    def test_first_write_wins(self, tmp_path):
        st = Store(str(tmp_path))
        assert st.put("k", "key", 1)
        assert not st.put("k", "key", 2)
        assert st.get("k", "key") == 1
        assert st.put("k", "key", 3, replace=True)
        assert st.get("k", "key") == 3

    def test_survives_reopen(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", {"deep": [1, 2, {"n": 3}]})
        st.close()
        st2 = Store(str(tmp_path))
        assert st2.get("k", "key") == {"deep": [1, 2, {"n": 3}]}

    def test_cross_process_visibility_via_refresh(self, tmp_path):
        writer = Store(str(tmp_path))
        reader = Store(str(tmp_path))
        # Distinct Store instances model distinct processes (each has its
        # own segment and index).
        writer.put("k", "key", 41)
        reader.refresh(force=True)
        assert reader.get("k", "key") == 41

    def test_meta_travels_with_value(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "v", meta={"budget_independent": True})
        seen = {}

        def validator(value, meta):
            seen.update(meta)
            return True

        assert st.get("k", "key", validator=validator) == "v"
        assert seen == {"budget_independent": True}


# -- validate-on-read + quarantine -------------------------------------------


class TestValidateOnRead:
    def test_validator_rejection_quarantines(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        assert st.get("k", "key", validator=lambda v, m: False) is MISSING
        assert st.counters["quarantined"] == 1
        assert st.counters["revalidation_failures"] == 1
        # Tombstoned: even a permissive read misses now.
        assert st.get("k", "key") is MISSING
        dumps = os.listdir(tmp_path / "quarantine")
        assert any("store-quarantined" in name for name in dumps)

    def test_validator_exception_is_a_rejection(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")

        def boom(value, meta):
            raise RuntimeError("validator crashed")

        assert st.get("k", "key", validator=boom) is MISSING
        assert st.counters["quarantined"] == 1

    def test_tombstone_survives_reopen(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        st.quarantine("k", "key", "test")
        st.close()
        st2 = Store(str(tmp_path))
        assert st2.get("k", "key") is MISSING

    def test_put_after_quarantine_resurrects(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "bad")
        st.quarantine("k", "key", "test")
        assert st.put("k", "key", "good")
        assert st.get("k", "key") == "good"


class TestOnDiskCorruption:
    def _flip_byte_of_entry(self, root):
        """Flip one payload byte of the first record on disk."""
        for name in sorted(os.listdir(root)):
            if name.startswith("seg-"):
                path = os.path.join(root, name)
                with open(path, "r+b") as handle:
                    handle.seek(40 + 9)      # header is 40B; inside payload
                    byte = handle.read(1)
                    handle.seek(40 + 9)
                    handle.write(bytes([byte[0] ^ 0xFF]))
                return
        raise AssertionError("no segment written")

    def test_checksum_mismatch_quarantines(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        self._flip_byte_of_entry(str(tmp_path))
        assert st.get("k", "key") is MISSING
        assert st.counters["quarantined"] == 1
        assert st.get("k", "key") is MISSING        # tombstoned now

    def test_truncation_under_a_live_index(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "k1", "v1")
        st.put("k", "k2", "v2")
        seg = [n for n in os.listdir(tmp_path) if n.startswith("seg-")][0]
        path = os.path.join(str(tmp_path), seg)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 10)       # tear the second record
        assert st.get("k", "k1") == "v1"
        assert st.get("k", "k2") is MISSING  # clean miss, not an error
        assert st.counters["errors"] == 0


class TestVersionSkew:
    def test_revision_skew_invalidates(self, tmp_path):
        st = Store(str(tmp_path), revision="rev-a")
        st.put("k", "key", "value")
        st.close()
        st2 = Store(str(tmp_path), revision="rev-b")
        assert st2.get("k", "key") is MISSING
        assert st2.counters["invalidated"] == 1
        stale = [n for n in os.listdir(tmp_path) if n.startswith("stale-")]
        assert len(stale) == 1
        assert any(n.startswith("seg-")
                   for n in os.listdir(tmp_path / stale[0]))
        # The new generation is fully usable.
        st2.put("k", "key", "fresh")
        assert st2.get("k", "key") == "fresh"

    def test_same_revision_keeps_data(self, tmp_path):
        st = Store(str(tmp_path), revision="rev-a")
        st.put("k", "key", "value")
        st.close()
        st2 = Store(str(tmp_path), revision="rev-a")
        assert st2.get("k", "key") == "value"
        assert st2.counters["invalidated"] == 0


class TestIndexRotation:
    def test_corrupt_index_falls_back_to_rescan(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        st.save_index()
        st.close()
        with open(tmp_path / "index.bin", "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff\xff")
        st2 = Store(str(tmp_path))
        assert st2.get("k", "key") == "value"

    def test_missing_index_rescans(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        st.close()
        os.remove(tmp_path / "index.bin")
        st2 = Store(str(tmp_path))
        assert st2.get("k", "key") == "value"


# -- fault seams -------------------------------------------------------------


class TestFaultSeams:
    def test_read_raise_degrades_to_miss(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        with faults.injected(specs=["store.read:raise"]):
            assert st.get("k", "key") is MISSING
        assert st.get("k", "key") == "value"

    def test_read_corrupt_is_caught_past_the_checksum(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        with faults.injected(specs=["store.read:corrupt"]):
            assert st.get("k", "key") is MISSING
        assert st.counters["quarantined"] == 1

    def test_write_raise_drops_the_write(self, tmp_path):
        st = Store(str(tmp_path))
        with faults.injected(specs=["store.write:raise"]):
            assert not st.put("k", "key", "value")
        assert st.counters["write_errors"] == 1
        assert st.get("k", "key") is MISSING

    def test_write_corrupt_models_a_torn_write(self, tmp_path):
        st = Store(str(tmp_path))
        with faults.injected(specs=["store.write:corrupt"]):
            st.put("k", "key", "value")
        # The record on disk cannot verify: reading it quarantines.
        assert st.get("k", "key") is MISSING
        assert st.counters["quarantined"] == 1

    def test_validate_corrupt_forces_quarantine(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        with faults.injected(specs=["store.validate:corrupt"]):
            assert st.get("k", "key", validator=lambda v, m: True) is MISSING
        assert st.counters["quarantined"] == 1

    def test_lock_raise_degrades(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        with faults.injected(specs=["store.lock:raise"]):
            assert not st.save_index()       # dropped, not raised
        assert st.save_index()

    def test_lock_delay_stalls_but_completes(self, tmp_path):
        st = Store(str(tmp_path))
        st.put("k", "key", "value")
        started = time.monotonic()
        with faults.injected(specs=["store.lock:delay:seconds=0.05"]):
            assert st.save_index()
        assert time.monotonic() - started >= 0.05


# -- solver integration ------------------------------------------------------


def _sat_problem():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[0-9]{2,4}")
    n = b.to_num(x, "n")
    b.require_int(ge(var(n), 120))
    b.require_int(le(var(n), 125))
    return b.problem


def _unsat_problem():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[0-9]{1,2}")
    n = b.to_num(x, "n")
    b.require_int(ge(var(n), 1000))
    return b.problem


def _verdict_key(problem):
    from repro.alphabet import DEFAULT_ALPHABET
    return (cache.problem_fingerprint(problem), DEFAULT_ALPHABET.signature())


def _boot(root):
    """Simulate a fresh worker boot sharing the on-disk store."""
    store.reset()
    cache.clear_all()
    return TrauSolver(config=SolverConfig(store_path=root))


class TestSolverIntegration:
    def test_sat_verdict_roundtrip(self, tmp_path):
        root = str(tmp_path)
        r1 = _boot(root).solve(_sat_problem(), timeout=30)
        assert r1.status == "sat"
        r2 = _boot(root).solve(_sat_problem(), timeout=30)
        assert r2.status == "sat"
        assert r2.stats.get("store") == "hit"
        assert r2.stats.get("rounds") == 0
        # The certificate: the model was re-validated on read.
        from repro.strings.eval import check_model
        assert check_model(_sat_problem(), r2.model)

    def test_unsat_verdict_roundtrip(self, tmp_path):
        root = str(tmp_path)
        r1 = _boot(root).solve(_unsat_problem(), timeout=30)
        assert r1.status == "unsat"
        r2 = _boot(root).solve(_unsat_problem(), timeout=30)
        assert r2.status == "unsat"
        assert r2.stats.get("store") == "hit"

    def test_corrupt_sat_model_degrades_to_fresh_solve(self, tmp_path):
        root = str(tmp_path)
        assert _boot(root).solve(_sat_problem(), timeout=30).status == "sat"
        st = store.get_store(root)
        assert st.put("verdict", _verdict_key(_sat_problem()),
                      {"status": "sat", "model": {"x": "zz", "n": -7}},
                      replace=True)
        result = _boot(root).solve(_sat_problem(), timeout=30)
        # Never the wrong model: re-validation rejected the lie and the
        # solve ran fresh.
        assert result.status == "sat"
        assert result.stats.get("store") != "hit"
        from repro.strings.eval import check_model
        assert check_model(_sat_problem(), result.model)
        assert store.get_store(root).counters["revalidation_failures"] >= 1

    def test_unsat_without_marker_is_rejected(self, tmp_path):
        root = str(tmp_path)
        st = store.get_store(root)
        st.put("verdict", _verdict_key(_sat_problem()), {"status": "unsat"},
               meta={})        # no budget-independence marker: untrusted
        result = _boot(root).solve(_sat_problem(), timeout=30)
        assert result.status == "sat"        # the lie did not surface

    def test_store_faults_never_change_the_verdict(self, tmp_path):
        root = str(tmp_path)
        assert _boot(root).solve(_sat_problem(), timeout=30).status == "sat"
        for spec in ("store.read:raise", "store.read:corrupt",
                     "store.write:raise", "store.write:corrupt",
                     "store.validate:corrupt", "store.lock:raise"):
            store.reset()
            cache.clear_all()
            solver = TrauSolver(config=SolverConfig(store_path=root,
                                                    fault_specs=(spec,)))
            result = solver.solve(_sat_problem(), timeout=30)
            assert result.status == "sat", spec
            from repro.strings.eval import check_model
            assert check_model(_sat_problem(), result.model), spec

    def test_no_cache_config_bypasses_store(self, tmp_path):
        root = str(tmp_path)
        assert _boot(root).solve(_sat_problem(), timeout=30).status == "sat"
        store.reset()
        cache.clear_all()
        solver = TrauSolver(config=SolverConfig(store_path=root,
                                                use_caches=False,
                                                use_incremental=False))
        result = solver.solve(_sat_problem(), timeout=30)
        assert result.status == "sat"
        assert result.stats.get("store") != "hit"

    def test_fragment_warm_start_after_verdict_tombstone(self, tmp_path):
        root = str(tmp_path)
        store.set_default_path(root)
        assert _boot(root).solve(_sat_problem(), timeout=30).status == "sat"
        st = store.get_store(root)
        st.quarantine("verdict", _verdict_key(_sat_problem()), "test")
        st.save_index()
        store.reset()
        cache.clear_all()
        from repro.obs import Metrics
        metrics = Metrics()
        solver = TrauSolver(config=SolverConfig(store_path=root),
                            metrics=metrics)
        result = solver.solve(_sat_problem(), timeout=30)
        assert result.status == "sat"
        flat = metrics.flat()
        assert flat.get("store.fragment_hits", 0) >= 1
        assert flat.get("store.lemmas_installed", 0) >= 1


class TestWarmLemmas:
    def test_seed_rejects_infeasible_claims(self):
        from repro.smt import IncrementalSmtSession

        session = IncrementalSmtSession()
        x = var("x")
        # ge/le build interned Atom objects; x>=2 AND x<=1 is a genuine
        # theory lemma, x>=0 AND x<=5 is a corrupt (satisfiable) claim.
        valid = ((ge(x, 2), True), (le(x, 1), True))
        bogus = ((ge(x, 0), True), (le(x, 5), True))
        installed, rejected = session.seed_lemmas([valid, bogus])
        assert installed == 1
        assert rejected == 1

    def test_lemmas_harvested_and_reproved_across_boots(self, tmp_path):
        root = str(tmp_path)
        assert _boot(root).solve(_sat_problem(), timeout=30).status == "sat"
        st = store.get_store(root)
        hit = st.get("session.lemmas",
                     (cache.problem_fingerprint(_sat_problem()),),
                     validator=None)
        # The entry is keyed with the alphabet signature too; just assert
        # some lemmas entry exists on disk at all.
        assert any(r.get("kind") == "session.lemmas"
                   for r in _records(root)) or hit is not MISSING


# -- concurrency & crash safety (satellite 3) --------------------------------


_WRITER = r"""
import os, sys, time
sys.path.insert(0, %(src)r)
from repro.store import Store
st = Store(%(root)r)
i = 0
deadline = time.monotonic() + %(seconds)r
while time.monotonic() < deadline:
    st.put("hammer", ("w%(tag)s", i), {"writer": %(tag)r, "i": i,
                                       "pad": "x" * (i %% 211)})
    if i %% 17 == 0:
        st.get("hammer", ("w%(tag)s", max(0, i - 5)))
    i += 1
st.close()
print(i)
"""

_TRUNCATOR = r"""
import os, random, sys, time
rng = random.Random(1234)
root = %(root)r
deadline = time.monotonic() + %(seconds)r
while time.monotonic() < deadline:
    segs = [n for n in os.listdir(root)
            if n.startswith("seg-") and n.endswith(".log")]
    if segs:
        path = os.path.join(root, rng.choice(segs))
        try:
            size = os.path.getsize(path)
            if size > 100:
                with open(path, "r+b") as handle:
                    handle.truncate(rng.randrange(size // 2, size))
        except OSError:
            pass
    time.sleep(0.01)
"""


def _spawn(script, **fmt):
    fmt.setdefault("src", os.path.join(os.path.dirname(__file__), os.pardir,
                                       "src"))
    return subprocess.Popen([sys.executable, "-c", script % fmt],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)


class TestConcurrentIntegrity:
    def test_writers_vs_truncator_never_lie(self, tmp_path):
        """Two processes hammer the store while a third truncates
        segments at random offsets; every read in the parent must be a
        validated hit or a clean miss — never an exception, never a
        wrong value."""
        root = str(tmp_path)
        seconds = 2.0
        writers = [_spawn(_WRITER, root=root, tag=t, seconds=seconds)
                   for t in ("a", "b")]
        truncator = _spawn(_TRUNCATOR, root=root, seconds=seconds + 0.5)

        def validator(value, _meta):
            return (isinstance(value, dict)
                    and value.get("writer") in ("a", "b")
                    and isinstance(value.get("i"), int)
                    and value.get("pad") == "x" * (value["i"] % 211))

        reader = Store(root)
        checked = hits = 0
        deadline = time.monotonic() + seconds + 1.0
        while time.monotonic() < deadline:
            reader.refresh(force=True)
            for tag in ("a", "b"):
                for i in range(0, 200, 7):
                    value = reader.get("hammer", ("w%s" % tag, i),
                                       validator=validator)
                    checked += 1
                    if value is not MISSING:
                        hits += 1
                        assert value["writer"] == tag
                        assert value["i"] == i
        for proc in writers:
            out, err = proc.communicate(timeout=30)
            assert proc.returncode == 0, err.decode()
            assert int(out) > 0
        truncator.communicate(timeout=30)
        assert checked > 0
        assert reader.counters["errors"] == 0
        # Truncation mid-record may quarantine — that is the designed
        # degradation; what must never happen is asserted above.

    def test_kill9_mid_write_generation_handoff(self, tmp_path):
        """kill -9 a writer mid-append, then a fresh 'worker generation'
        must read the store: every surviving record validates, the torn
        tail is a clean stop, zero corrupt reads surface."""
        root = str(tmp_path)
        for _ in range(3):
            proc = _spawn(_WRITER, root=root, tag="k", seconds=30.0)
            time.sleep(0.4)                  # let it write mid-stream
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            assert proc.returncode == -signal.SIGKILL

            st = Store(root)                 # next generation boots
            read = 0
            for record in _records(root):
                if record.get("kind") != "hammer":
                    continue
                value = st.get("hammer", ("wk", record["value"]["i"]))
                assert value is MISSING or value == record["value"]
                read += 1
            assert read > 0
            assert st.counters["errors"] == 0
            assert st.counters["quarantined"] == 0
            st.close()
            store.reset()


_SMT2 = """\
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (str.in_re x (re.+ (re.range "0" "9"))))
(assert (<= 120 (str.to_int x)))
(assert (<= (str.to_int x) 125))
(check-sat)
"""

_SMT_SOLVE = r"""
import json, sys
sys.path.insert(0, %(src)r)
from repro import cache
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.obs import Metrics
from repro.smtlib import load_problem
problem = load_problem(open(%(path)r).read()).problem
metrics = Metrics()
result = TrauSolver(config=SolverConfig(store_path=%(root)r),
                    metrics=metrics).solve(problem, timeout=30)
flat = metrics.flat()
print(json.dumps({"status": result.status,
                  "fp": cache.problem_fingerprint(problem),
                  "hits": flat.get("store.verdict.hits", 0),
                  "misses": flat.get("store.verdict.misses", 0)}))
"""


class TestCrossProcessStability:
    def test_store_keys_survive_worker_generations(self, tmp_path):
        """Regression: a verdict written by one worker generation must be
        found by the next, for SMT-LIB-parsed problems too.  Parsed
        regular constraints have no printable source, so the fingerprint
        takes the structural-walk path — which used to pickle the live
        (solve-mutated, hash-seed-dependent) object graph, making every
        process compute a different key and every warm lookup miss."""
        root = str(tmp_path / "store")
        smt2 = tmp_path / "q.smt2"
        smt2.write_text(_SMT2)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        runs = []
        for hashseed in ("1", "2", "77"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            proc = subprocess.run(
                [sys.executable, "-c",
                 _SMT_SOLVE % {"src": src, "path": str(smt2), "root": root}],
                capture_output=True, timeout=120, env=env)
            assert proc.returncode == 0, proc.stderr.decode()
            runs.append(json.loads(proc.stdout))
        assert [run["status"] for run in runs] == ["sat"] * 3
        # One fingerprint across processes regardless of hash seed ...
        assert len({run["fp"] for run in runs}) == 1
        # ... so the first generation misses and records, and every
        # later generation hits.
        assert (runs[0]["hits"], runs[0]["misses"]) == (0, 1)
        for run in runs[1:]:
            assert (run["hits"], run["misses"]) == (1, 0)

    def test_fingerprint_ignores_lazy_memo_fields(self):
        """Solving populates underscore-slot caches on AST nodes; the
        fingerprint must not see them, or the key recorded after a solve
        would differ from the key looked up before it."""
        from repro.smtlib import load_problem

        problem = load_problem(_SMT2).problem
        before = cache.problem_fingerprint(problem)
        solver = TrauSolver(config=SolverConfig())
        result = solver.solve(problem, timeout=30)
        assert result.status == "sat"
        assert cache.problem_fingerprint(problem) == before


class TestServiceIntegration:
    def test_pool_workers_share_the_store(self, tmp_path):
        from repro.serve import SolverService

        root = str(tmp_path)
        service = SolverService(config=SolverConfig(), jobs=1, timeout=30,
                                store_path=root)
        try:
            results = service.run_batch([("q1", _sat_problem()),
                                         ("q2", _unsat_problem())])
        finally:
            service.shutdown()
        by_name = {r.name: r.status for r in results}
        assert by_name == {"q1": "sat", "q2": "unsat"}
        # The workers wrote verdicts into the shared store; the next
        # generation (here: this process) reads them.
        st = Store(root)
        kinds = {r.get("kind") for r in _records(root)}
        assert "verdict" in kinds
        key = _verdict_key(_sat_problem())
        assert st.get("verdict", key)["status"] == "sat"
