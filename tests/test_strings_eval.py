"""Tests for the concrete evaluator (the paper's validator)."""

from hypothesis import given, strategies as st

from repro.automata.regex import regex_to_nfa
from repro.logic import eq, ge
from repro.strings import (
    CharNeq, IntConstraint, ProblemBuilder, RegularConstraint, StrVar,
    StringProblem, ToNum, WordEquation, check_model, evaluate_constraint,
    str_len, to_num_value,
)
from repro.strings.eval import failing_constraints


class TestToNumValue:
    def test_digits(self):
        assert to_num_value("0") == 0
        assert to_num_value("42") == 42
        assert to_num_value("00042") == 42

    def test_non_numerals(self):
        assert to_num_value("") == -1
        assert to_num_value("a") == -1
        assert to_num_value("4a2") == -1
        assert to_num_value("-5") == -1
        assert to_num_value(" 5") == -1

    @given(st.integers(0, 10 ** 12))
    def test_inverse_of_str(self, n):
        assert to_num_value(str(n)) == n

    @given(st.integers(0, 10 ** 6), st.integers(0, 5))
    def test_leading_zeros_preserve_value(self, n, pad):
        assert to_num_value("0" * pad + str(n)) == n


class TestEvaluateConstraint:
    def test_word_equation(self):
        c = WordEquation((StrVar("x"), "b"), ("a", StrVar("y")))
        assert evaluate_constraint(c, {"x": "ab", "y": "bb"})
        assert not evaluate_constraint(c, {"x": "b", "y": "b"})

    def test_regular(self):
        c = RegularConstraint(StrVar("x"), regex_to_nfa("[0-9]+"))
        assert evaluate_constraint(c, {"x": "123"})
        assert not evaluate_constraint(c, {"x": "12a"})

    def test_int_constraint_with_lengths(self):
        c = IntConstraint(eq(str_len("x") * 2, "n"))
        assert evaluate_constraint(c, {"x": "abc", "n": 6})
        assert not evaluate_constraint(c, {"x": "abc", "n": 5})

    def test_tonum(self):
        c = ToNum("n", StrVar("x"))
        assert evaluate_constraint(c, {"x": "077", "n": 77})
        assert evaluate_constraint(c, {"x": "zz", "n": -1})
        assert not evaluate_constraint(c, {"x": "077", "n": 78})

    def test_charneq(self):
        c = CharNeq(StrVar("a"), StrVar("b"))
        assert evaluate_constraint(c, {"a": "x", "b": "y"})
        assert evaluate_constraint(c, {"a": "", "b": "y"})
        assert not evaluate_constraint(c, {"a": "x", "b": "x"})
        assert not evaluate_constraint(c, {"a": "xy", "b": "z"})


class TestCheckModel:
    def test_missing_variable_fails(self):
        problem = StringProblem([
            WordEquation((StrVar("x"),), ("a",))])
        assert not check_model(problem, {})
        assert check_model(problem, {"x": "a"})

    def test_missing_int_fails(self):
        problem = StringProblem([ToNum("n", StrVar("x"))])
        assert not check_model(problem, {"x": "3"})
        assert check_model(problem, {"x": "3", "n": 3})

    def test_failing_constraints_reported(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]+")
        b.require_int(ge(str_len(x), 2))
        bad = failing_constraints(b.problem, {"x": "7"})
        assert len(bad) == 1
