"""Tests for the baseline solvers (correctness, not speed)."""

import pytest

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.logic import eq, ge, le, var
from repro.strings import ProblemBuilder, check_model, str_len


SOLVERS = [EnumerativeSolver, SplittingSolver]


def build_member_length():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]+")
    b.require_int(eq(str_len(x), 3))
    return b.problem


def build_equation():
    b = ProblemBuilder()
    x, y = b.str_var("x"), b.str_var("y")
    b.equal((x, "b"), ("a", y))
    b.require_int(eq(str_len(x), 2))
    return b.problem


def build_unsat_membership():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]{2}")
    b.require_int(ge(str_len(x), 3))
    return b.problem


def build_small_conversion():
    b = ProblemBuilder()
    x = b.str_var("x")
    n = b.to_num(x)
    b.require_int(eq(var(n), 7))
    b.require_int(eq(str_len(x), 2))
    return b.problem


@pytest.mark.parametrize("solver_class", SOLVERS)
class TestBothBaselines:
    def test_membership_with_length(self, solver_class):
        problem = build_member_length()
        result = solver_class().solve(problem, timeout=20)
        assert result.status == "sat"
        assert check_model(problem, result.model)

    def test_equation(self, solver_class):
        problem = build_equation()
        result = solver_class().solve(problem, timeout=20)
        assert result.status == "sat"
        assert check_model(problem, result.model)

    def test_unsat_membership(self, solver_class):
        problem = build_unsat_membership()
        result = solver_class().solve(problem, timeout=20)
        assert result.status == "unsat"

    def test_small_conversion(self, solver_class):
        problem = build_small_conversion()
        result = solver_class().solve(problem, timeout=20)
        assert result.status == "sat"
        assert result.model["x"] == "07"

    def test_never_wrong_on_generated_suite(self, solver_class):
        from repro.symbex import pyex
        solver = solver_class()
        for instance in pyex.generate(6, seed=3):
            result = solver.solve(instance.problem, timeout=5)
            if result.status == "sat":
                assert check_model(instance.problem, result.model), \
                    instance.name
            elif result.status == "unsat":
                assert instance.expected != "sat", instance.name


class TestEnumerativeSpecifics:
    def test_exhaustion_gives_unsat_when_bounded(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{2}")
        b.equal((x,), ("ab",))
        b.diseq((x,), ("ab",))
        result = EnumerativeSolver().solve(b.problem, timeout=20)
        assert result.status in ("unsat", "unknown")

    def test_unbounded_search_gives_unknown(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "a+")
        b.require_int(ge(str_len(x), 100))
        result = EnumerativeSolver().solve(b.problem, timeout=5)
        assert result.status == "unknown"


class TestSplitterSpecifics:
    def test_commuting_equation(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal(("ab", x), (x, "ab"))
        b.require_int(eq(str_len(x), 2))
        result = SplittingSolver().solve(b.problem, timeout=20)
        assert result.status == "sat"
        assert result.model["x"] == "ab"

    def test_depth_bound_reports_unknown_not_unsat(self):
        # A satisfiable equation whose solutions need deep splitting.
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), (y, x))
        b.require_int(ge(str_len(x), 6))
        b.require_int(ge(str_len(y), 6))
        solver = SplittingSolver(max_depth=4, max_fresh=10)
        result = solver.solve(b.problem, timeout=10)
        assert result.status in ("sat", "unknown")
