(set-logic QF_SLIA)
(set-info :status unsat)
; (distinct a b c) once expanded to a != b only, so a two-word language
; admitted a "model" with c = a.  Pairwise expansion makes this the
; pigeonhole: three mutually distinct words cannot fit in {"x", "y"}.
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(assert (str.in_re a (re.union (str.to_re "x") (str.to_re "y"))))
(assert (str.in_re b (re.union (str.to_re "x") (str.to_re "y"))))
(assert (str.in_re c (re.union (str.to_re "x") (str.to_re "y"))))
(assert (distinct a b c))
(check-sat)
