; Printer escaping regression: quote and backslash literals must survive
; print -> parse (the printer used to emit bare backslashes, which the
; parser re-read as the start of a \u{..} escape).  The collector's
; roundtrip pass re-prints and re-solves this problem.
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(declare-fun y () String)
(assert (= x "quote"" and backslash\u{5c} mixed"))
(assert (= y (str.++ x "\u{5c}u{0}")))
(check-sat)
