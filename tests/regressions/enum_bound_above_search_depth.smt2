; EnumerativeSolver soundness regression: the only word in the language
; is longer than the oracle's default search depth (max_total_length = 8).
; The solver used to answer UNSAT because the variable had *a* finite
; length bound, even though the bound exceeded the enumerated depth; it
; must answer unknown (or enumerate far enough to find the word).
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(assert (str.in_re x ((_ re.loop 9 9) (str.to_re "a"))))
(check-sat)
