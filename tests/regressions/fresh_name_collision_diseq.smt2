; repro.diff reproducer (found by `repro fuzz --seed 0`, metamorphic:roundtrip)
; Declared symbols shadow the names the diseq desugaring mints for itself
; (_dp1/_dc2/_dc3): before ProblemBuilder.reserve, conversion fused the
; declared variables with the encoding's fresh ones and flipped sat -> unsat.
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun _dp1 () String)
(declare-fun _dc2 () String)
(declare-fun _dc3 () String)
(assert (= _dp1 "a"))
(assert (= _dc2 "b"))
(assert (= _dc3 "c"))
(assert (not (= _dc2 _dc3)))
(check-sat)
