; toNum boundary case: value 12345 has exactly initial_numeric_m = 5
; significant digits and the length pin forces four leading zeros, so
; the flattened Psi_shift (0+w) encoding must agree with to_num_value.
; Also exercises the converter's direct (= n (str.to_int x)) binding.
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(declare-fun n () Int)
(assert (= n (str.to_int x)))
(assert (= n 12345))
(assert (= (str.len x) 9))
(check-sat)
