"""Tests for the lazy DPLL(T) combination layer."""

from hypothesis import given, settings, strategies as st

from repro.config import SolverConfig
from repro.logic import conj, disj, eq, evaluate, ge, le, ne, var
from repro.smt import solve_formula


X, Y, Z = var("x"), var("y"), var("z")


class TestCornerCases:
    def test_true_and_false(self):
        from repro.logic import TRUE, FALSE
        assert solve_formula(TRUE).status == "sat"
        assert solve_formula(FALSE).status == "unsat"

    def test_single_atom(self):
        r = solve_formula(le(X, 3))
        assert r.status == "sat" and r.model["x"] <= 3

    def test_all_variables_in_model(self):
        f = conj(le(X, 3), disj(ge(Y, 0), ge(Z, 0)))
        r = solve_formula(f)
        assert {"x", "y", "z"} <= set(r.model)

    def test_budget_returns_unknown(self):
        config = SolverConfig(smt_iteration_limit=1, bb_node_limit=1)
        # A formula needing branching should exhaust one node.
        f = conj(eq(X * 2 + Y * 3, 7), ge(X, 0), ge(Y, 0), le(X, 10),
                 le(Y, 10), ne(X, 2), ne(Y, 1))
        r = solve_formula(f, config=config)
        assert r.status in ("sat", "unknown")


class TestDisjunctiveReasoning:
    def test_case_split_over_intervals(self):
        f = conj(disj(conj(ge(X, 0), le(X, 4)),
                      conj(ge(X, 10), le(X, 14))),
                 ge(X, 5))
        r = solve_formula(f)
        assert r.status == "sat"
        assert 10 <= r.model["x"] <= 14

    def test_mutually_exclusive_branches(self):
        f = conj(disj(le(X, 0), ge(X, 10)),
                 disj(ge(X, 1), ge(Y, 7)),
                 le(X, 5), le(Y, 7))
        r = solve_formula(f)
        assert r.status == "sat"
        assert r.model["x"] <= 0 and r.model["y"] == 7

    def test_deep_unsat(self):
        f = conj(disj(eq(X, 1), eq(X, 2), eq(X, 3)),
                 ne(X, 1), ne(X, 2), ne(X, 3))
        assert solve_formula(f).status == "unsat"


@st.composite
def random_formula(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        a = draw(st.integers(-3, 3))
        b = draw(st.integers(-3, 3))
        k = draw(st.integers(-9, 9))
        return le(X * a + Y * b, k)
    parts = [draw(random_formula(depth=depth - 1))
             for _ in range(draw(st.integers(2, 3)))]
    return conj(*parts) if draw(st.booleans()) else disj(*parts)


class TestAgainstBruteForce:
    @settings(max_examples=40, deadline=None)
    @given(random_formula())
    def test_status_matches_bounded_enumeration(self, f):
        bounded = conj(f, ge(X, -8), le(X, 8), ge(Y, -8), le(Y, 8))
        result = solve_formula(bounded)
        feasible = any(evaluate(f, {"x": x, "y": y})
                       for x in range(-8, 9) for y in range(-8, 9))
        assert (result.status == "sat") == feasible
        if result.status == "sat":
            assert evaluate(bounded, result.model)
