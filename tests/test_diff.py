"""Tests for the differential/metamorphic harness (repro.diff)."""

import random

from hypothesis import given, settings

from repro.diff import (
    DifferentialDriver, GenConfig, TRANSFORMS, apply_transform, generate,
    run_campaign, save_reproducer, shrink_problem,
)
from repro.diff.strategies import generated_problems
from repro.smtlib import load_problem, problem_to_smtlib
from repro.strings import ProblemBuilder, check_model, str_len
from repro.logic import eq


class TestGenerator:
    def test_deterministic_from_seed(self):
        render = lambda i: problem_to_smtlib(
            generate(random.Random("7:%d" % i), GenConfig()).problem)
        first = [render(i) for i in range(5)]
        second = [render(i) for i in range(5)]
        assert first == second

    def test_certified_witness_validates(self):
        certified = 0
        for index in range(40):
            g = generate(random.Random("3:%d" % index), GenConfig(),
                         seed_index=index)
            if not g.certified:
                continue
            certified += 1
            assert check_model(g.problem, g.witness), index
        assert certified >= 5  # the lie rate must leave certificates

    def test_witness_covers_every_variable(self):
        for index in range(25):
            g = generate(random.Random("9:%d" % index), GenConfig())
            names = {v.name for v in g.problem.string_vars()}
            names |= set(g.problem.int_vars())
            missing = names - set(g.witness)
            assert not missing, (index, missing)

    @settings(max_examples=25, deadline=None)
    @given(generated_problems(max_constraints=3))
    def test_strategy_yields_problems(self, g):
        assert len(g.problem) >= 1
        assert isinstance(g.certified, bool)


class TestTransforms:
    def _certified(self, index=0):
        rng = random.Random("11:%d" % index)
        while True:
            g = generate(rng, GenConfig(lie_rate=0.0))
            if g.certified:
                return g

    def test_rename_preserves_satisfiability_of_witness(self):
        g = self._certified()
        transformed = apply_transform("rename", g.problem,
                                      random.Random(42))
        # The same witness under the renaming must still validate.
        renamed = apply_transform("rename", g.problem, random.Random(42))
        assert renamed is not None and len(renamed) == len(g.problem)

    def test_shuffle_keeps_witness(self):
        g = self._certified(1)
        transformed = apply_transform("shuffle", g.problem,
                                      random.Random(0))
        assert check_model(transformed, g.witness)

    def test_split_eq_adds_fresh_link_variable(self):
        from repro.strings import WordEquation

        applied = 0
        for index in range(20):
            g = generate(random.Random("19:%d" % index), GenConfig())
            if not g.problem.by_kind(WordEquation):
                continue
            transformed = apply_transform("split_eq", g.problem,
                                          random.Random(0))
            assert transformed is not None
            # One equation became two through a fresh variable.
            assert len(transformed) == len(g.problem) + 1
            applied += 1
        assert applied >= 3

    def test_roundtrip_is_parse_stable(self):
        """print -> parse -> print -> parse is stable where printable.

        A reparsed problem keeps regexes only as automata, so a second
        print may legitimately fail for infinite languages (the
        transform then returns None).  On the remaining problems
        consecutive prints must agree byte-for-byte — the dialect heads
        (str.to_code.partial, str.diseq.char) exist precisely so that
        desugar-internal constraints reach this fixpoint.
        """
        from repro.errors import ReproError

        stable = 0
        for index in range(12):
            g = generate(random.Random("13:%d" % index), GenConfig())
            transformed = apply_transform("roundtrip", g.problem,
                                          random.Random(0))
            if transformed is None:      # unprintable problems are skipped
                continue
            again = apply_transform("roundtrip", transformed,
                                    random.Random(0))
            if again is None:
                continue
            try:
                first = problem_to_smtlib(transformed)
                second = problem_to_smtlib(again)
            except ReproError:
                continue
            assert first == second, index
            stable += 1
        assert stable >= 2

    def test_all_transforms_total(self):
        g = generate(random.Random("17:0"), GenConfig())
        for name in TRANSFORMS:
            result = apply_transform(name, g.problem, random.Random(1))
            assert result is None or len(result) >= 1, name


class TestShrink:
    def test_shrinks_to_relevant_core(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x,), ("abc",))
        b.equal((y,), ("aa",))
        b.require_int(eq(str_len(y), 2))
        b.require_int(eq(str_len(x), 3))

        def predicate(problem):
            return any("x" in {v.name for v in c.string_vars()}
                       for c in problem)

        shrunk, checks = shrink_problem(b.problem, predicate)
        assert len(shrunk) == 1
        assert checks > 0

    def test_literal_shortening(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("abcdef",))

        def predicate(problem):
            return len(problem) == 1

        shrunk, _ = shrink_problem(b.problem, predicate)
        literal = "".join(e for e in shrunk.constraints[0].rhs
                          if isinstance(e, str))
        assert literal == ""  # every character was removable

    def test_predicate_exceptions_count_as_false(self):
        b = ProblemBuilder()
        b.equal((b.str_var("x"),), ("ab",))

        def predicate(problem):
            raise RuntimeError("boom")

        shrunk, _ = shrink_problem(b.problem, predicate)
        assert len(shrunk) == len(b.problem)

    def test_save_reproducer_writes_smt2(self, tmp_path):
        b = ProblemBuilder()
        b.equal((b.str_var("x"),), ("ab",))
        path = save_reproducer(b.problem, str(tmp_path), "case",
                               expected="sat", header=["hello"])
        text = open(path).read()
        assert path.endswith("case.smt2")
        assert text.startswith("; hello\n")
        assert "(set-info :status sat)" in text
        reloaded = load_problem(text)
        assert reloaded.expected == "sat"


class TestNewOpsOracle:
    """Enumerative-oracle cross-checks over the widened fragment.

    Each case builds a small bounded problem around one of the new ops
    and requires the PFA solver and the brute-force oracle to agree
    whenever both answer, with every SAT model validating concretely.
    This is the per-op version of the campaign's arbitration rule.
    """

    def _agree(self, problem, expected, label):
        from repro.baselines import EnumerativeSolver
        from repro.core.solver import TrauSolver

        answers = {}
        for name, solver in (("pfa", TrauSolver()),
                             ("enum", EnumerativeSolver())):
            result = solver.solve(problem, timeout=20)
            if result.status == "sat":
                assert check_model(problem, result.model), (label, name)
            if result.status in ("sat", "unsat"):
                answers[name] = result.status
        assert answers, (label, "neither solver answered")
        assert set(answers.values()) == {expected}, (label, answers)
        return answers

    def test_replace_first_occurrence(self):
        from repro.logic.terms import var as int_var  # noqa: F401

        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{2}")
        r, _ = b.replace(x, "a", "X", result="r")
        b.equal((r,), ("Xb",))
        answers = self._agree(b.problem, "sat", "replace-sat")
        assert "enum" in answers  # the oracle really arbitrated

        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{2}")
        r, _ = b.replace(x, "a", "X", result="r")
        b.equal((r,), ("XX",))  # first-only: a second "a" stays put
        answers = self._agree(b.problem, "unsat", "replace-unsat")
        assert "enum" in answers

    def test_replace_all(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{3}")
        r, _ = b.replace_all(x, "a", "c", max_occurrences=3, result="r")
        b.equal((r,), ("cbc",))
        self._agree(b.problem, "sat", "replace_all-sat")

    def test_indexof_with_start(self):
        from repro.logic.terms import var as int_var

        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{4}")
        i = b.index_of(x, "b", start=2)[0]
        b.require_int(eq(int_var(i), 3))
        self._agree(b.problem, "sat", "indexof-start")

    def test_at_out_of_range(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.require_int(eq(str_len(x), 2))
        c, _ = b.at_total(x, 5, result="c")
        b.require_int(eq(str_len(c), 1))  # but at(x, 5) is ""
        self._agree(b.problem, "unsat", "at-oob")

    def test_code_inversion_regression(self):
        """Regression: CharCode defeats the oracle's character pool.

        The candidate-character restriction is justified by a character
        interchangeability argument that CharCode breaks (the integer
        side can pin any specific code — here 66 forces "B", a character
        no literal mentions).  The oracle used to answer "unsat" with
        refuted_by=exhaustive-search on this satisfiable problem.
        """
        from repro.logic.terms import var as int_var

        b = ProblemBuilder()
        x = b.str_var("x")
        n, _ = b.to_code(x)
        b.require_int(eq(int_var(n), 66))
        y = b.from_code(n, result="y")
        b.equal((y,), (x,))
        answers = self._agree(b.problem, "sat", "code-inversion")
        assert "enum" in answers

    def test_charneq_pool_is_wide_enough(self):
        """Regression: disequality chains need spare pool characters.

        Three pairwise-distinct single-character variables with no
        literal constraints need three distinct characters; the old
        two-character baseline pool made the oracle claim exhaustive
        unsat.  The widened pool must never produce that wrong answer
        (unknown is acceptable — the search may legitimately exhaust
        its budget)."""
        from repro.baselines import EnumerativeSolver
        from repro.smtlib import load_problem as _load

        text = """
        (set-logic QF_SLIA)
        (declare-fun a () String)
        (declare-fun b () String)
        (declare-fun c () String)
        (assert (= (str.len a) 1))
        (assert (= (str.len b) 1))
        (assert (= (str.len c) 1))
        (assert (distinct a b c))
        (check-sat)
        """
        problem = _load(text).problem
        result = EnumerativeSolver().solve(problem, timeout=5)
        assert result.status != "unsat", result.stats
        if result.status == "sat":
            assert check_model(problem, result.model)

    def test_strtol_semantics(self):
        from repro.logic.terms import var as int_var

        b = ProblemBuilder()
        x = b.str_var("x")
        b.require_int(eq(str_len(x), 3))
        n = b.to_num_sem(x, "strtol", result="n")
        b.require_int(eq(int_var(n), 42))
        self._agree(b.problem, "sat", "strtol")


class TestDriver:
    def test_mini_campaign_is_clean_and_deterministic(self):
        driver = DifferentialDriver(config=GenConfig(max_constraints=3),
                                    timeout=2.0)
        report = run_campaign(seed=1, n=4, driver=driver,
                              config=GenConfig(max_constraints=3))
        assert report.ok, [d.describe() for d in report.disagreements]
        assert report.statuses["pfa-inc"]
        again = run_campaign(seed=1, n=4, driver=driver,
                             config=GenConfig(max_constraints=3))
        assert again.statuses == report.statuses

    def test_detects_planted_unsound_engine(self):
        from repro.core.solver import SolveResult

        class LyingSolver:
            def solve(self, problem, timeout=None):
                return SolveResult("unsat")

        driver = DifferentialDriver(config=GenConfig(max_constraints=2),
                                    timeout=2.0)
        driver.engines["pfa-inc"] = LyingSolver()
        rng = random.Random("1:0")
        found = []
        for index in range(6):
            g = generate(random.Random("1:%d" % index),
                         GenConfig(max_constraints=2), seed_index=index)
            found.extend(driver.check_problem(g))
        kinds = {d.kind for d in found}
        assert kinds & {"refuted-certified-sat", "oracle-refuted-unsat",
                        "sat-unsat-split", "metamorphic:rename",
                        "metamorphic:roundtrip", "metamorphic:shuffle",
                        "metamorphic:pad_tonum", "metamorphic:split_eq"}, \
            kinds

    def test_detects_invalid_model(self):
        from repro.core.solver import SolveResult

        class BadModelSolver:
            def solve(self, problem, timeout=None):
                names = {v.name: "zz" for v in problem.string_vars()}
                names.update({n: 0 for n in problem.int_vars()})
                return SolveResult("sat", model=names)

        driver = DifferentialDriver(config=GenConfig(max_constraints=2),
                                    timeout=2.0, metamorphic=False)
        driver.engines["pfa-inc"] = BadModelSolver()
        found = []
        for index in range(4):
            g = generate(random.Random("2:%d" % index),
                         GenConfig(max_constraints=2), seed_index=index)
            found.extend(driver.check_problem(g))
        assert any(d.kind == "invalid-model" and d.engine == "pfa-inc"
                   for d in found), [d.describe() for d in found]
