"""Tests for the solver-wide memoization caches (repro.cache)."""

import itertools

from hypothesis import given, settings, strategies as st

from repro import cache
from repro.alphabet import DEFAULT_ALPHABET as A
from repro.automata.nfa import EPS, NFA
from repro.automata.regex import regex_to_nfa
from repro.obs import Metrics, scope


def w(text):
    return A.encode_word(text)


class TestLRUCache:
    def test_miss_then_hit(self):
        c = cache.LRUCache("t.basic", 4)
        assert c.get("k") is cache.MISSING
        c.put("k", 41)
        assert c.get("k") == 41
        assert c.hits == 1 and c.misses == 1

    def test_eviction_is_lru(self):
        c = cache.LRUCache("t.evict", 2)
        c.put("a", 1)
        c.put("b", 2)
        assert c.get("a") == 1         # refresh "a"; "b" becomes oldest
        c.put("c", 3)
        assert c.get("b") is cache.MISSING
        assert c.get("a") == 1 and c.get("c") == 3
        assert len(c) <= 2

    def test_clear_and_info(self):
        c = cache.LRUCache("t.info", 4)
        c.put("a", 1)
        c.get("a")
        c.get("zzz")
        info = c.info()
        assert info["size"] == 1 and info["hits"] == 1 \
            and info["misses"] == 1
        c.clear()
        assert len(c) == 0

    def test_disabled_context(self):
        c = cache.LRUCache("t.disabled", 4)
        c.put("k", 1)
        with cache.disabled():
            assert c.get("k") is cache.MISSING
            assert not cache.enabled()
        assert cache.enabled()
        assert c.get("k") == 1

    def test_stats_registry(self):
        c = cache.LRUCache("t.registry", 4)
        c.put("x", 1)
        assert "t.registry" in cache.stats()

    def test_counters_reach_metrics(self):
        c = cache.LRUCache("t.metrics", 4)
        metrics = Metrics()
        with scope(None, metrics):
            c.get("nope")
            c.put("k", 1)
            c.get("k")
        flat = metrics.flat()
        assert flat.get("cache.t.metrics.misses") == 1
        assert flat.get("cache.t.metrics.hits") == 1


# -- cached automata operations are language-equivalent ------------------------


CODES = tuple(w("ab"))


def _language(nfa, max_len=4):
    accepted = set()
    for length in range(max_len + 1):
        for word in itertools.product(CODES, repeat=length):
            if nfa.accepts(list(word)):
                accepted.add(word)
    return accepted


@st.composite
def nfas(draw):
    num_states = draw(st.integers(1, 4))
    symbols = list(CODES) + [EPS]
    n_transitions = draw(st.integers(0, 8))
    transitions = [
        (draw(st.integers(0, num_states - 1)),
         draw(st.sampled_from(symbols)),
         draw(st.integers(0, num_states - 1)))
        for _ in range(n_transitions)]
    finals = draw(st.lists(st.integers(0, num_states - 1), max_size=3))
    return NFA(num_states, transitions, 0, finals)


class TestCachedOperationsEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(nfas())
    def test_determinize_minimize_trim(self, nfa):
        with cache.disabled():
            plain = (_language(nfa.without_epsilon()),
                     _language(nfa.trim()),
                     _language(nfa.determinize()),
                     _language(nfa.minimize()))
        cached = (_language(nfa.without_epsilon()),
                  _language(nfa.trim()),
                  _language(nfa.determinize()),
                  _language(nfa.minimize()))
        # And once more, so the second lookup exercises the hit path.
        cached_again = (_language(nfa.without_epsilon()),
                        _language(nfa.trim()),
                        _language(nfa.determinize()),
                        _language(nfa.minimize()))
        assert plain == cached == cached_again

    @settings(max_examples=40, deadline=None)
    @given(nfas(), nfas())
    def test_intersect(self, left, right):
        with cache.disabled():
            plain = _language(left.intersect(right))
        assert plain == _language(left.intersect(right))
        assert plain == _language(left.intersect(right))
        assert plain == _language(left) & _language(right)

    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(["a*b*", "(ab)*|aab", "a{2,4}", "[ab]+",
                            "a(ba)*", "b?a+b?"]))
    def test_regex_compile(self, pattern):
        with cache.disabled():
            plain = _language(regex_to_nfa(pattern))
        assert plain == _language(regex_to_nfa(pattern))
        assert plain == _language(regex_to_nfa(pattern))
