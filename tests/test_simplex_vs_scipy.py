"""Cross-validation of the rational simplex against scipy.optimize.linprog.

Random bounded systems of linear inequalities: our simplex and scipy must
agree on rational feasibility.  (Integer feasibility has no scipy oracle;
the branch-and-bound layer is cross-checked against brute force in
test_lia.py.)
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.lia.simplex import Simplex


@st.composite
def systems(draw):
    num_vars = draw(st.integers(1, 4))
    num_rows = draw(st.integers(1, 6))
    rows = []
    for _ in range(num_rows):
        coeffs = [draw(st.integers(-4, 4)) for _ in range(num_vars)]
        bound = draw(st.integers(-10, 10))
        rows.append((coeffs, bound))
    return num_vars, rows


def scipy_feasible(num_vars, rows, box=50):
    a_ub = [coeffs for coeffs, _ in rows]
    b_ub = [bound for _, bound in rows]
    result = linprog(c=np.zeros(num_vars), A_ub=np.array(a_ub),
                     b_ub=np.array(b_ub),
                     bounds=[(-box, box)] * num_vars, method="highs")
    return result.status == 0


def simplex_feasible(num_vars, rows, box=50):
    s = Simplex()
    names = ["x%d" % i for i in range(num_vars)]
    for name in names:
        s.add_variable(name)
    for idx, (coeffs, bound) in enumerate(rows):
        non_zero = {names[i]: c for i, c in enumerate(coeffs) if c}
        if not non_zero:
            if 0 > bound:
                return False
            continue
        slack = "s%d" % idx
        s.define(slack, non_zero)
        if s.assert_upper(slack, bound, idx) is not None:
            return False
    for name in names:
        if s.assert_lower(name, -box, None) is not None:
            return False
        if s.assert_upper(name, box, None) is not None:
            return False
    return s.check() == "sat"


class TestAgainstScipy:
    @settings(max_examples=80, deadline=None)
    @given(systems())
    def test_rational_feasibility_agrees(self, system):
        num_vars, rows = system
        assert simplex_feasible(num_vars, rows) == \
            scipy_feasible(num_vars, rows)

    def test_known_feasible(self):
        # x + y <= 4, -x <= 0, -y <= 0
        assert simplex_feasible(2, [([1, 1], 4), ([-1, 0], 0),
                                    ([0, -1], 0)])

    def test_known_infeasible(self):
        # x <= 1 and -x <= -2 (x >= 2)
        assert not simplex_feasible(1, [([1], 1), ([-1], -2)])
