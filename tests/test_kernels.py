"""Differential equivalence suites for the packed kernels.

Every suite drives the packed implementation and its pure reference on
the same randomized inputs and requires agreement:

* SAT — identical verdicts on random CNFs (and under assumptions), with
  each side's model checked against the clauses;
* simplex — identical sat/unsat verdicts, variable values, and conflict
  cores on random tableaux (the packed tableau makes the same Bland
  pivot choices as the pure one, so the comparison is exact);
* automata — *structurally identical* results for determinize,
  product, and the asynchronous PFA product (the packed constructions
  promise the pure discovery order, which is what lets the two backends
  share the memoization caches).

Caches are disabled inside the differential harnesses: a shared
fingerprint-keyed cache would happily return one backend's result to
the other and make the comparison vacuous.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings, strategies as st

from repro import cache as _cache
from repro import kernels
from repro.config import Deadline
from repro.automata.nfa import NFA
from repro.core.names import NameFactory
from repro.core.pfa import numeric_pfa, standard_pfa, straight_pfa
from repro.core.sync import asynchronous_product
from repro.kernels.sat import PackedSatSolver
from repro.kernels.simplex import PackedSimplex
from repro.lia.simplex import Simplex
from repro.sat import SAT, UNSAT, SatSolver


# -- SAT ---------------------------------------------------------------------


def literals(num_vars):
    return st.integers(min_value=1, max_value=num_vars).flatmap(
        lambda v: st.sampled_from([v, -v]))


def cnfs(num_vars=6, max_clauses=14):
    return st.lists(
        st.lists(literals(num_vars), min_size=1, max_size=4),
        min_size=0, max_size=max_clauses)


def check_clauses(clauses, model):
    return all(any(model.get(abs(l), False) == (l > 0) for l in c)
               for c in clauses)


def solve_with(solver_cls, clauses, num_vars, assumptions=None):
    solver = solver_cls()
    solver.ensure_var(num_vars)
    for clause in clauses:
        if not solver.add_clause(clause):
            return UNSAT, None
    outcome = solver.solve(assumptions=assumptions)
    return outcome, solver.model() if outcome == SAT else None


class TestSatEquivalence:
    @given(cnfs())
    @settings(max_examples=120, deadline=None)
    def test_same_verdict_and_valid_models(self, clauses):
        num_vars = 6
        pure_out, pure_model = solve_with(SatSolver, clauses, num_vars)
        packed_out, packed_model = solve_with(PackedSatSolver, clauses,
                                              num_vars)
        assert pure_out == packed_out
        if packed_out == SAT:
            assert check_clauses(clauses, pure_model)
            assert check_clauses(clauses, packed_model)

    @given(cnfs(), st.lists(literals(6), min_size=1, max_size=3,
                            unique_by=abs))
    @settings(max_examples=80, deadline=None)
    def test_same_verdict_under_assumptions(self, clauses, assumptions):
        num_vars = 6
        pure_out, pure_model = solve_with(SatSolver, clauses, num_vars,
                                          assumptions)
        packed_out, packed_model = solve_with(PackedSatSolver, clauses,
                                              num_vars, assumptions)
        assert pure_out == packed_out
        if packed_out == SAT:
            for model in (pure_model, packed_model):
                assert check_clauses(clauses, model)
                assert all(model[abs(a)] == (a > 0) for a in assumptions)

    @given(cnfs(max_clauses=8), cnfs(max_clauses=6))
    @settings(max_examples=60, deadline=None)
    def test_incremental_clause_addition(self, first, second):
        num_vars = 6
        solvers = {"pure": SatSolver(), "packed": PackedSatSolver()}
        outcomes = {}
        for name, solver in solvers.items():
            solver.ensure_var(num_vars)
            trace = []
            for batch in (first, second):
                alive = all(solver.add_clause(c) for c in batch)
                trace.append(solver.solve() if alive else UNSAT)
                if trace[-1] == UNSAT:
                    break
            outcomes[name] = trace
        assert outcomes["pure"] == outcomes["packed"]

    def test_level0_literals_match(self):
        clauses = [[1], [-1, 2], [-2, 3], [3, 4]]
        pure, packed = SatSolver(), PackedSatSolver()
        for solver in (pure, packed):
            solver.ensure_var(4)
            for clause in clauses:
                assert solver.add_clause(clause)
            assert solver.simplify()
        assert sorted(pure.level0_literals()) \
            == sorted(packed.level0_literals())


# -- simplex -----------------------------------------------------------------


def coeff_maps(variables):
    return st.dictionaries(
        st.sampled_from(variables),
        st.integers(min_value=-4, max_value=4).filter(bool),
        min_size=1, max_size=3)


def bound_ops(variables):
    return st.tuples(
        st.sampled_from(variables),
        st.booleans(),                                    # upper?
        st.one_of(st.integers(min_value=-8, max_value=8),
                  st.integers(min_value=-16, max_value=16)
                  .map(lambda n: Fraction(n, 3))))


def run_tableau(solver, rows, bounds):
    """Apply the scripted tableau; returns (status, values, conflict)."""
    base_vars = ("x", "y", "z")
    for v in base_vars:
        solver.add_variable(v)
    for i, coeffs in enumerate(rows):
        solver.define("r%d" % i, coeffs)
    status = None
    for tag, (v, upper, value) in enumerate(bounds):
        conflict = (solver.assert_upper(v, value, tag) if upper
                    else solver.assert_lower(v, value, tag))
        if conflict is not None:
            return "unsat", None, sorted(conflict)
    status = solver.check(Deadline.unbounded())
    if status == "unsat":
        return "unsat", None, sorted(t for t in solver.conflict
                                     if t is not None)
    names = list(base_vars) + ["r%d" % i for i in range(len(rows))]
    return status, [solver.value(v) for v in names], None


class TestSimplexEquivalence:
    @given(st.lists(coeff_maps(("x", "y", "z")), min_size=0, max_size=3),
           st.lists(bound_ops(("x", "y", "z")), min_size=1, max_size=8))
    @settings(max_examples=120, deadline=None)
    def test_same_status_values_and_conflicts(self, rows, bounds):
        bounds = [(v, u, val) for v, u, val in bounds]
        pure = run_tableau(Simplex(), rows, bounds)
        packed = run_tableau(PackedSimplex(), rows, bounds)
        assert pure == packed

    @given(st.lists(coeff_maps(("x", "y")), min_size=1, max_size=2),
           st.lists(bound_ops(("x", "y")), min_size=1, max_size=4),
           st.lists(bound_ops(("x", "y")), min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_push_pop_parity(self, rows, base, frame):
        results = []
        for cls in (Simplex, PackedSimplex):
            solver = cls()
            for v in ("x", "y"):
                solver.add_variable(v)
            for i, coeffs in enumerate(rows):
                solver.define("r%d" % i, coeffs)
            ok = True
            for tag, (v, upper, value) in enumerate(base):
                if (solver.assert_upper(v, value, tag) if upper
                        else solver.assert_lower(v, value, tag)) is not None:
                    ok = False
                    break
            if not ok:
                results.append(("base-conflict",))
                continue
            before = solver.check(Deadline.unbounded())
            solver.push()
            for tag, (v, upper, value) in enumerate(frame, start=100):
                if (solver.assert_upper(v, value, tag) if upper
                        else solver.assert_lower(v, value, tag)) is not None:
                    break
            inside = solver.check(Deadline.unbounded())
            solver.pop()
            after = solver.check(Deadline.unbounded())
            values = [solver.value(v) for v in ("x", "y")] \
                if after == "sat" else None
            results.append((before, inside, after, values))
        assert results[0] == results[1]


# -- automata ----------------------------------------------------------------


def structure(nfa):
    # Product symbols may be (label, IDLE) pairs with None components, so
    # order transitions by repr (total and deterministic) rather than <.
    return (nfa.num_states, nfa.initial,
            sorted(nfa.transitions, key=repr), sorted(nfa.finals))


@st.composite
def random_nfas(draw, max_states=5, symbols=(0, 1, 2)):
    n = draw(st.integers(min_value=1, max_value=max_states))
    transitions = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.sampled_from(symbols),
                  st.integers(0, n - 1)),
        max_size=12))
    finals = draw(st.lists(st.integers(0, n - 1), max_size=n, unique=True))
    return NFA(n, transitions, 0, finals)


def both_backends(operation):
    """Run *operation* under each backend with the caches bypassed."""
    results = []
    with _cache.disabled():
        for backend in ("pure", "packed"):
            with kernels.use_backend(backend):
                results.append(operation())
    return results


class TestAutomataEquivalence:
    @given(random_nfas())
    @settings(max_examples=100, deadline=None)
    def test_determinize_structurally_identical(self, nfa):
        pure, packed = both_backends(lambda: nfa.determinize(
            alphabet=[0, 1, 2]))
        assert structure(pure) == structure(packed)

    @given(random_nfas(), random_nfas())
    @settings(max_examples=100, deadline=None)
    def test_intersect_structurally_identical(self, a, b):
        pure, packed = both_backends(lambda: a.intersect(b))
        assert structure(pure) == structure(packed)

    @pytest.mark.parametrize("left_shape,right_shape", [
        (("straight", 3), ("standard", 2, 2)),
        (("numeric", 3), ("straight", 4)),
        (("standard", 1, 3), ("numeric", 2)),
        (("straight", 5), ("straight", 5)),
    ])
    def test_async_product_structurally_identical(self, left_shape,
                                                  right_shape):
        def build(shape, namer):
            if shape[0] == "straight":
                return straight_pfa(namer, shape[1])
            if shape[0] == "numeric":
                return numeric_pfa(namer, shape[1])
            return standard_pfa(namer, shape[1], shape[2])

        def product():
            names = NameFactory()
            left = build(left_shape, names.char_namer("u"))
            right = build(right_shape, names.char_namer("v"))
            return asynchronous_product(left, right)

        pure, packed = both_backends(product)
        assert structure(pure) == structure(packed)


# -- backend selection -------------------------------------------------------


class TestBackendSelection:
    def test_resolve_auto_prefers_packed(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert kernels.resolve(None) == kernels.PACKED
        assert kernels.resolve("auto") == kernels.PACKED

    def test_env_pins_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        assert kernels.resolve(None) == kernels.PURE

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "pure")
        assert kernels.resolve("packed") == kernels.PACKED

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            kernels.resolve("vectorized")

    def test_use_backend_scopes_factories(self):
        with kernels.use_backend("pure"):
            assert isinstance(kernels.sat_solver(), SatSolver)
            assert isinstance(kernels.simplex_solver(), Simplex)
        with kernels.use_backend("packed"):
            assert isinstance(kernels.sat_solver(), PackedSatSolver)
            assert isinstance(kernels.simplex_solver(), PackedSimplex)

    def test_explicit_factory_request_wins(self):
        with kernels.use_backend("pure"):
            assert isinstance(kernels.sat_solver("packed"), PackedSatSolver)
        with kernels.use_backend("packed"):
            assert isinstance(kernels.simplex_solver("pure"), Simplex)
