"""Chaos tests for :mod:`repro.serve` — the supervised pool and service
under injected hangs, crashes, and corrupted verdicts.

Every test drives real spawn workers; the faults come from
:mod:`repro.faults` seams planted inside the worker loop
(``serve.worker.request`` / ``serve.worker.result``), so the failure
modes are the genuine articles: processes that really hang, really die,
and really return wrong answers.  The invariant under test throughout:
every submitted request gets exactly one answer.
"""

import os
import time

from repro.logic import eq
from repro.serve import PortfolioEntry, PoolEvent, SolverService, WorkerPool
from repro.strings import ProblemBuilder, str_len

CRASH = "serve.worker.request:raise:exc=runtime"
HANG = "serve.worker.request:delay:seconds=30"
LIE = "serve.worker.result:corrupt"


def sat_problem(chars="ab"):
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[%s]{2}" % chars)
    return builder.problem


def unsat_problem():
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[ab]{2}")
    builder.require_int(eq(str_len(x), 9))
    return builder.problem


# -- pool-level tests ---------------------------------------------------------


def _echo_init(tag):
    """Picklable pool initializer for the protocol-level tests."""
    def handler(payload):
        if payload == "die":
            os._exit(7)
        if isinstance(payload, tuple) and payload[0] == "sleep":
            time.sleep(payload[1])
        return (tag, payload)
    return handler


def collect(pool, count, timeout=30.0):
    """Poll until *count* events arrived (or the wall clock gives up)."""
    events = []
    deadline = time.monotonic() + timeout
    while len(events) < count and time.monotonic() < deadline:
        events.extend(pool.poll(0.1))
    return events


class TestWorkerPool:
    def test_result_roundtrip_and_recycling(self):
        with WorkerPool(_echo_init, init_args=("t",), jobs=1,
                        max_requests=1) as pool:
            first = pool.submit("a", timeout=30)
            second = pool.submit("b", timeout=30)
            events = collect(pool, 2)
            assert {e.kind for e in events} == {PoolEvent.RESULT}
            assert {e.ticket: e.value for e in events} == {
                first: ("t", "a"), second: ("t", "b")}
            # max_requests=1 forces a fresh worker between the requests.
            assert pool.counters["recycled"] >= 1
        assert pool.worker_count == 0        # shutdown reaped everything

    def test_hang_is_hard_killed_and_pool_survives(self):
        with WorkerPool(_echo_init, init_args=("t",), jobs=1) as pool:
            ticket = pool.submit(("sleep", 60), timeout=0.4)
            events = collect(pool, 1)
            assert events[0].kind == PoolEvent.KILLED
            assert events[0].ticket == ticket
            assert pool.counters["hard_kills"] == 1
            # The replacement worker serves the next request.
            after = pool.submit("ok", timeout=30)
            events = collect(pool, 1)
            assert events[0].kind == PoolEvent.RESULT
            assert events[0].ticket == after

    def test_worker_death_carries_exit_code(self):
        with WorkerPool(_echo_init, init_args=("t",), jobs=1) as pool:
            ticket = pool.submit("die", timeout=30)
            events = collect(pool, 1)
            assert events[0].kind == PoolEvent.DIED
            assert events[0].ticket == ticket
            assert events[0].exitcode == 7
            assert pool.counters["deaths"] == 1

    def test_cancel_emits_no_events(self):
        with WorkerPool(_echo_init, init_args=("t",), jobs=1) as pool:
            slow = pool.submit(("sleep", 5), timeout=30)
            while not pool.is_inflight(slow):
                pool.poll(0.05)
            queued = pool.submit("q", timeout=30)
            assert pool.cancel(queued) is True      # still pending
            assert pool.cancel(slow) is True        # on a worker: killed
            assert pool.cancel(slow) is False       # nothing left
            assert pool.counters["cancelled"] == 2
            assert collect(pool, 1, timeout=1.0) == []


# -- service-level tests ------------------------------------------------------


class TestSolverService:
    def test_batch_gets_exactly_one_answer_each(self):
        with SolverService(jobs=2, timeout=20) as service:
            results = service.run_batch([
                ("s1", sat_problem()),
                ("u1", unsat_problem()),
                ("s2", sat_problem("cd")),
            ])
        assert [r.name for r in results] == ["s1", "u1", "s2"]
        assert [r.status for r in results] == ["sat", "unsat", "sat"]
        assert service.answered == 3

    def test_overload_rejects_at_the_door(self):
        service = SolverService(jobs=1, timeout=20, queue_limit=1)
        try:
            first = service.submit(sat_problem(), name="first")
            second = service.submit(sat_problem("cd"), name="second")
            assert not first.done
            assert second.done
            assert second.result.answer == "unknown(overloaded)"
        finally:
            service.shutdown(drain=False)

    def test_hang_answers_unknown_timeout(self):
        with SolverService(jobs=1, timeout=0.3, grace=0.3,
                           quarantine_threshold=10) as service:
            handle = service.submit(sat_problem(), fault_specs=(HANG,))
            result = service.wait(handle)
        assert result.answer == "unknown(timeout)"
        assert "hard-killed" in result.worker_exits
        assert result.retries == 0           # hangs are never retried

    def test_crash_retries_in_fresh_worker_then_answers(self):
        # The schedule lives per worker process: in the first worker the
        # benign request is hit 1 (skipped by after=1), the victim is
        # hit 2 (fires, worker dies); in the retry worker the victim is
        # hit 1 again, so it is skipped and the solve succeeds.
        spec = "serve.worker.request:raise:exc=runtime,after=1,times=1"
        with SolverService(jobs=1, timeout=20, quarantine_threshold=10,
                           worker_fault_specs=(spec,)) as service:
            service.wait(service.submit(unsat_problem(), name="benign"))
            victim = service.submit(sat_problem(), name="victim")
            result = service.wait(victim)
        assert result.status == "sat"
        assert result.retries == 1
        assert len(result.worker_exits) == 1

    def test_quarantine_after_k_strikes_then_instant_poison(self):
        problem = sat_problem()
        with SolverService(jobs=1, timeout=20, max_retries=5,
                           quarantine_threshold=2,
                           backoff_base=0.01) as service:
            handle = service.submit(problem, fault_specs=(CRASH,))
            result = service.wait(handle)
            assert result.answer == "unknown(poison)"
            assert service.quarantined(problem) == "poison"
            spawned = service.pool.counters["spawned"]
            again = service.submit(problem)
            # Answered at the door: already done, no worker burned.
            assert again.done
            assert again.result.answer == "unknown(poison)"
            assert service.pool.counters["spawned"] == spawned

    def test_fabricated_model_fails_validation(self):
        # Corrupt an UNSAT verdict into sat-with-empty-model; concrete
        # re-validation must demote the lie instead of reporting sat.
        with SolverService(jobs=1, timeout=20,
                           quarantine_threshold=10) as service:
            handle = service.submit(unsat_problem(), fault_specs=(LIE,))
            result = service.wait(handle)
        assert result.status == "unknown"
        assert result.stats.get("stopped_by") == "invalid-model"

    def test_drain_finishes_inflight_and_answers_queued(self):
        slow_spec = "serve.worker.request:delay:seconds=1"
        with SolverService(jobs=1, timeout=20,
                           quarantine_threshold=10) as service:
            slow = service.submit(sat_problem(), name="slow",
                                  fault_specs=(slow_spec,))
            while service.pool.inflight_count == 0:
                service.pump(0.05)
            queued = service.submit(sat_problem("cd"), name="queued")
            service.shutdown(drain=True)
            assert slow.result.status == "sat"
            assert queued.result.answer == "unknown(shutdown)"
        assert service.pool.worker_count == 0


class TestPortfolio:
    ENTRIES = (PortfolioEntry("incremental"),
               PortfolioEntry("oneshot"))

    def test_validated_sat_wins_the_race(self):
        with SolverService(portfolio=self.ENTRIES, jobs=2,
                           timeout=20) as service:
            result = service.wait(service.submit(sat_problem()))
        assert result.status == "sat"
        assert result.winner in ("incremental", "oneshot")

    def test_disagreement_is_caught_and_quarantined(self):
        # One arm lies (sat flipped to unsat), the honest arm is delayed
        # so the lie always arrives first; UNSAT holds no certificate,
        # so the service waits — then refuses to pick a side.
        problem = sat_problem()
        with SolverService(portfolio=self.ENTRIES, jobs=2,
                           timeout=20) as service:
            handle = service.submit(problem, entry_fault_specs={
                "oneshot": (LIE,),
                "incremental": ("serve.worker.request:delay:seconds=1",),
            })
            result = service.wait(handle)
            assert result.answer == "unknown(disagreement)"
            assert service.quarantined(problem) == "disagreement"

    def test_unsat_needs_every_arm_to_agree(self):
        with SolverService(portfolio=self.ENTRIES, jobs=2,
                           timeout=20) as service:
            result = service.wait(service.submit(unsat_problem()))
        assert result.status == "unsat"
        assert result.winner in ("incremental", "oneshot")
