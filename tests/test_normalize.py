"""Tests for string-level constant propagation (normalization)."""

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.core import TrauSolver
from repro.core.normalize import normalize
from repro.logic import eq, ge
from repro.strings import (
    CharNeq, IntConstraint, ProblemBuilder, StrVar, ToNum, WordEquation,
    check_model, str_len,
)


class TestPinning:
    def test_literal_pin_removes_variable(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x,), ("abc",))
        b.equal((y,), (x, "d"))
        out = normalize(b.problem, A)
        assert not out.infeasible
        assert out.pins["x"] == "abc"
        # y = "abcd" propagates transitively.
        assert out.pins.get("y") == "abcd"
        assert len(out.problem) == 0

    def test_ground_conflict_is_infeasible(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("ab",))
        b.equal((x, "c"), ("abd",))
        out = normalize(b.problem, A)
        assert out.infeasible

    def test_regular_folds_by_acceptance(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("123",))
        b.member(x, "[0-9]+")
        out = normalize(b.problem, A)
        assert not out.infeasible
        assert len(out.problem.by_kind(type(b.problem.constraints[1]))) == 0

    def test_regular_rejection_is_infeasible(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("12a",))
        b.member(x, "[0-9]+")
        assert normalize(b.problem, A).infeasible

    def test_tonum_folds_to_integer(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("042",))
        n = b.to_num(x)
        out = normalize(b.problem, A)
        assert not out.infeasible
        assert not out.problem.by_kind(ToNum)
        ints = out.problem.by_kind(IntConstraint)
        assert any(n in c.int_vars() for c in ints)

    def test_length_occurrences_fold(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("abcd",))
        b.require_int(ge(str_len(x), 9))
        assert normalize(b.problem, A).infeasible

    def test_charneq_keeps_pin_equation(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]")
        b.require_int(eq(str_len(x), 1))
        b.problem.add(WordEquation((StrVar("c"),), ("a",)))
        b.problem.add(IntConstraint(eq(str_len("c"), 1)))
        b.problem.add(CharNeq(StrVar("c"), x))
        out = normalize(b.problem, A)
        # c is pinned but still used by the CharNeq, so its equation stays.
        assert out.pins["c"] == "a"
        assert any(isinstance(cst, WordEquation) for cst in out.problem)


class TestEndToEnd:
    def test_fully_ground_sat(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("hello",))
        b.member(x, "[a-z]+")
        result = TrauSolver().solve(b, timeout=10)
        assert result.status == "sat"
        assert result.model["x"] == "hello"

    def test_fully_ground_unsat_is_fast(self):
        import time
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("hello",))
        b.equal((x,), ("world",))
        start = time.monotonic()
        result = TrauSolver().solve(b, timeout=10)
        assert result.status == "unsat"
        assert result.stats.get("phase") == "normalization"
        assert time.monotonic() - start < 1.0

    def test_partial_pinning_keeps_solving(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x,), ("ab",))
        b.equal((y, y), (x, x))
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "sat"
        assert result.model["x"] == "ab"
        assert check_model(b.problem, result.model)
