"""Unit and property tests for the CDCL SAT solver."""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.sat import SatSolver, SAT, UNSAT


def brute_force(clauses, num_vars):
    for bits in itertools.product([False, True], repeat=num_vars):
        assign = {v + 1: bits[v] for v in range(num_vars)}
        if all(any(assign[abs(l)] == (l > 0) for l in c) for c in clauses):
            return assign
    return None


def run_solver(clauses):
    solver = SatSolver()
    for clause in clauses:
        if not solver.add_clause(clause):
            return UNSAT, None
    outcome = solver.solve()
    return outcome, solver.model() if outcome == SAT else None


class TestBasics:
    def test_empty_problem_is_sat(self):
        solver = SatSolver()
        assert solver.solve() == SAT

    def test_unit_clauses(self):
        outcome, model = run_solver([[1], [-2], [3]])
        assert outcome == SAT
        assert model[1] and not model[2] and model[3]

    def test_conflicting_units(self):
        outcome, _ = run_solver([[1], [-1]])
        assert outcome == UNSAT

    def test_empty_clause(self):
        outcome, _ = run_solver([[1], []])
        assert outcome == UNSAT

    def test_simple_implication_chain(self):
        clauses = [[-1, 2], [-2, 3], [-3, 4], [1]]
        outcome, model = run_solver(clauses)
        assert outcome == SAT
        assert all(model[v] for v in (1, 2, 3, 4))

    def test_pigeonhole_3_into_2_unsat(self):
        # p_ij: pigeon i in hole j; vars 1..6 = (i, j) for i in 0..2, j in 0..1
        def var(i, j):
            return 1 + i * 2 + j
        clauses = [[var(i, 0), var(i, 1)] for i in range(3)]
        for j in range(2):
            for i1 in range(3):
                for i2 in range(i1 + 1, 3):
                    clauses.append([-var(i1, j), -var(i2, j)])
        outcome, _ = run_solver(clauses)
        assert outcome == UNSAT

    def test_tautological_clause_ignored(self):
        outcome, _ = run_solver([[1, -1], [2]])
        assert outcome == SAT

    def test_model_satisfies_all_clauses(self):
        clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
        outcome, model = run_solver(clauses)
        assert outcome == SAT
        assert all(any(model[abs(l)] == (l > 0) for l in c)
                   for c in clauses)

    def test_incremental_clause_addition(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve() == SAT
        solver.add_clause([-1])
        assert solver.solve() == SAT
        assert solver.model()[2]
        solver.add_clause([-2])
        assert solver.solve() == UNSAT

    def test_level0_literals_after_simplify(self):
        solver = SatSolver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        assert solver.simplify()
        fixed = set(solver.level0_literals())
        assert 1 in fixed and 2 in fixed


@st.composite
def random_cnf(draw):
    num_vars = draw(st.integers(1, 8))
    num_clauses = draw(st.integers(1, 25))
    clauses = []
    for _ in range(num_clauses):
        size = draw(st.integers(1, 4))
        clause = [draw(st.integers(1, num_vars))
                  * draw(st.sampled_from([1, -1])) for _ in range(size)]
        clauses.append(clause)
    return num_vars, clauses


class TestAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(random_cnf())
    def test_matches_brute_force(self, problem):
        num_vars, clauses = problem
        reference = brute_force(clauses, num_vars)
        outcome, model = run_solver(clauses)
        if reference is None:
            assert outcome == UNSAT
        else:
            assert outcome == SAT
            assert all(any(model[abs(l)] == (l > 0) for l in c)
                       for c in clauses)

    def test_random_3sat_near_threshold(self):
        rng = random.Random(7)
        for trial in range(15):
            num_vars = 12
            clauses = []
            for _ in range(int(num_vars * 4.0)):
                lits = rng.sample(range(1, num_vars + 1), 3)
                clauses.append([l * rng.choice([1, -1]) for l in lits])
            outcome, model = run_solver(clauses)
            if outcome == SAT:
                assert all(any(model[abs(l)] == (l > 0) for l in c)
                           for c in clauses)
