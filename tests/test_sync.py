"""Tests for the synchronization formula (paper Section 7, Lemma 7.1)."""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DEFAULT_ALPHABET as A, EPSILON
from repro.automata.regex import regex_to_nfa
from repro.core.names import NameFactory
from repro.core.pfa import count_var, standard_pfa, straight_pfa
from repro.core.sync import asynchronous_product, synchronization_formula
from repro.logic import FALSE, conj, eq, ge, le, var
from repro.smt import solve_formula


def pa_of_nfa(nfa, names):
    """Concrete automaton rendered as a throwaway PA (as the flattener
    does) so it can synchronize against PFAs."""
    from repro.core.flatten import Flattener
    from repro.strings.ast import StringProblem
    flattener = Flattener(StringProblem(), {}, A, names)
    return flattener._pa_of_nfa(nfa)


def domain(pfa):
    parts = []
    for v in pfa.char_vars:
        if pfa.binding_of(v) is None:
            parts.append(ge(var(v), EPSILON))
            parts.append(le(var(v), A.max_code))
    return conj(*parts)


def sync_with_word(pfa, nfa, names, word=None):
    """Solve Psi_{PFA x PA(nfa)}, optionally pinning the decoded word."""
    throwaway = pa_of_nfa(nfa, names)
    formula = synchronization_formula(pfa, throwaway, "s")
    if formula is FALSE:
        return None
    full = conj(formula, pfa.psi, pfa.parikh_formula(1000), domain(pfa))
    if word is not None:
        pins = []
        codes = A.encode_word(word)
        # Pin the straight chain (shift discipline) to the word.
        for i, v in enumerate(pfa.stem):
            value = codes[i] if i < len(codes) else EPSILON
            pins.append(eq(var(v), value))
        full = conj(full, *pins)
    result = solve_formula(full)
    return result


class TestProduct:
    def test_empty_intersection_is_false(self):
        names = NameFactory()
        pfa = straight_pfa(names.char_namer("x"), 2)
        nfa = regex_to_nfa("aaa")    # needs length 3 > 2
        formula = synchronization_formula(pfa, pa_of_nfa(nfa, names), "s")
        assert solve_formula(conj(formula, pfa.psi, domain(pfa))).status \
            == "unsat"

    def test_binding_pruning_shrinks_product(self):
        names = NameFactory()
        pfa = straight_pfa(names.char_namer("x"), 3)
        left_pa = pa_of_nfa(regex_to_nfa("abc"), names)
        product = asynchronous_product(pfa, left_pa)
        # Idle-left pairs with concrete non-epsilon labels are pruned, so
        # the product stays near the diagonal.
        assert product.num_states <= 4 * 5

    def test_membership_word_inside(self):
        names = NameFactory()
        pfa = straight_pfa(names.char_namer("x"), 3)
        assert sync_with_word(pfa, regex_to_nfa("ab?c"), names,
                              "abc").status == "sat"
        assert sync_with_word(pfa, regex_to_nfa("ab?c"), names,
                              "ac").status == "sat"
        assert sync_with_word(pfa, regex_to_nfa("ab?c"), names,
                              "bbc").status == "unsat"

    def test_loops_synchronize(self):
        names = NameFactory()
        pfa = standard_pfa(names.char_namer("x"), 1, 2)   # (v1 v2)^n
        throwaway = pa_of_nfa(regex_to_nfa("(ab){2}"), names)
        formula = synchronization_formula(pfa, throwaway, "s", 100)
        full = conj(formula, pfa.psi, pfa.parikh_formula(100), domain(pfa))
        result = solve_formula(full)
        assert result.status == "sat"
        # The loop must run twice with v1=a, v2=b (or an epsilon-padded
        # equivalent); decode and check.
        word = A.decode_word(pfa.decode(result.model))
        assert word == "abab"

    def test_counts_respect_psi_hash(self):
        names = NameFactory()
        pfa = straight_pfa(names.char_namer("x"), 2)
        throwaway = pa_of_nfa(regex_to_nfa("ab"), names)
        formula = synchronization_formula(pfa, throwaway, "s")
        full = conj(formula, pfa.psi, pfa.parikh_formula(10), domain(pfa))
        result = solve_formula(full)
        assert result.status == "sat"
        model = result.model
        # Both chain variables used exactly once.
        assert model[count_var(pfa.stem[0])] == 1
        assert model[count_var(pfa.stem[1])] == 1
        assert A.decode_word(pfa.decode(model)) == "ab"


class TestAgainstEnumeration:
    @settings(max_examples=25, deadline=None)
    @given(st.sampled_from(["a*b", "(ab)*", "a|bb|ccc", "[ab]{2}",
                            "a(b|c)a"]),
           st.text(alphabet="abc", max_size=3))
    def test_straight_pfa_membership_matches(self, pattern, text):
        names = NameFactory()
        pfa = straight_pfa(names.char_namer("x"), 3)
        nfa = regex_to_nfa(pattern)
        expected = nfa.accepts(A.encode_word(text)) and len(text) <= 3
        result = sync_with_word(pfa, nfa, names, text)
        assert (result.status == "sat") == expected
