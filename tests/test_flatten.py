"""Tests for the flattening of atomic constraints (Sections 6-8).

Strategy: flatten a small problem under a known restriction, solve the
linear formula, decode, and check the decoded interpretation against the
concrete evaluator — plus targeted UNSAT cases per constraint kind.
"""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.core.flatten import Flattener
from repro.core.names import NameFactory
from repro.core.pfa import numeric_pfa, straight_pfa
from repro.core.preprocess import expand_duplicates
from repro.core.strategy import build_restriction
from repro.config import DEFAULT_CONFIG
from repro.logic import eq, ge, le, var
from repro.smt import solve_formula
from repro.strings import (
    CharNeq, IntConstraint, ProblemBuilder, StrVar, ToNum, WordEquation,
    check_model, str_len,
)


def flatten_and_solve(problem, hints=None):
    names = NameFactory()
    expanded = expand_duplicates(problem, names)
    step = DEFAULT_CONFIG.schedule(2)[0]
    from repro.core.strategy import analyze_lengths
    hints = hints if hints is not None else analyze_lengths(expanded, A)
    restriction, _ = build_restriction(expanded, step, names, A, hints)
    flattener = Flattener(expanded, restriction, A, names, 10 ** 6)
    result = solve_formula(flattener.flatten())
    if result.status != "sat":
        return result.status, None
    interp = {}
    for v in problem.string_vars():
        interp[v.name] = A.decode_word(restriction[v.name].decode(
            result.model))
    for name in problem.int_vars():
        interp[name] = result.model.get(name, 0)
    return "sat", interp


class TestEquations:
    def test_literal_equation(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("hello",))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat" and interp["x"] == "hello"

    def test_concat_split(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), ("abcd",))
        b.require_int(eq(str_len(x), 3))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] == "abc" and interp["y"] == "d"
        assert check_model(b.problem, interp)

    def test_commuting_literal(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal(("ab", x), (x, "ab"))
        b.require_int(eq(str_len(x), 4))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] == "abab"

    def test_unsat_length_mismatch(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x, "a"), ("bb",))
        b.require_int(eq(str_len(x), 2))
        status, _ = flatten_and_solve(b.problem)
        assert status == "unsat"

    def test_empty_side(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), ())
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] == "" and interp["y"] == ""

    def test_duplicate_occurrences_expanded(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x, x), ("abab",))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] == "ab"


class TestRegular:
    def test_membership_with_length(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "(ab)+")
        b.require_int(eq(str_len(x), 4))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat" and interp["x"] == "abab"

    def test_two_memberships_intersect(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{3}")
        b.member(x, "a[ab]b")
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"][0] == "a" and interp["x"][2] == "b"

    def test_unsat_membership(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]{2}")
        b.require_int(ge(str_len(x), 3))
        status, _ = flatten_and_solve(b.problem)
        assert status == "unsat"


class TestToNum:
    def test_value_recovered(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 305))
        b.require_int(eq(str_len(x), 3))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat" and interp["x"] == "305"

    def test_leading_zeros(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 7))
        b.require_int(eq(str_len(x), 4))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat" and interp["x"] == "0007"

    def test_nan_branch(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), -1))
        b.require_int(eq(str_len(x), 2))
        b.member(x, "[a-z]+")
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert check_model(b.problem, interp)

    def test_empty_string_is_nan(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(str_len(x), 0))
        b.require_int(eq(var(n), 0))
        status, _ = flatten_and_solve(b.problem)
        assert status == "unsat"

    def test_all_zeros_is_zero(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 0))
        b.require_int(eq(str_len(x), 3))
        b.member(x, "[0-9]+")
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat" and interp["x"] == "000"

    def test_numeric_pfa_unbounded_length(self):
        # No length hint: the numeric PFA's zero loop must pump.
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 5))
        b.require_int(ge(str_len(x), 50))
        status, interp = flatten_and_solve(b.problem, hints={})
        assert status == "sat"
        assert interp["x"].endswith("5") and len(interp["x"]) >= 50
        assert int(interp["x"]) == 5


class TestCharNeq:
    def test_distinct_chars(self):
        b = ProblemBuilder()
        b.diseq(("a",), ("a",))
        status, _ = flatten_and_solve(b.problem)
        assert status == "unsat"

    def test_satisfiable_diseq(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{2}")
        b.diseq((x,), ("aa",))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] != "aa"
        assert check_model(b.problem, interp)


class TestSoundnessProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="ab", min_size=1, max_size=4),
           st.integers(0, 4))
    def test_split_of_concrete_word(self, word, cut):
        cut = min(cut, len(word))
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), (word,))
        b.require_int(eq(str_len(x), cut))
        status, interp = flatten_and_solve(b.problem)
        assert status == "sat"
        assert interp["x"] == word[:cut]
        assert interp["y"] == word[cut:]
