"""End-to-end tests of the full decision procedure (TrauSolver)."""

from hypothesis import given, settings, strategies as st

from repro import (
    ProblemBuilder, SolverConfig, TrauSolver, check_model, str_len,
    to_num_value,
)
from repro.logic import conj, eq, ge, gt, le, var


def solve(builder, timeout=30, **kwargs):
    return TrauSolver(**kwargs).solve(builder, timeout=timeout)


class TestPaperExamples:
    def test_toy_phi(self):
        """The running example of Section 1."""
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal(("0", x), (x, "0"))
        nx, ny = b.to_num(x), b.to_num(y)
        b.require_int(eq(var(nx), var(ny)))
        b.require_int(gt(str_len(y), str_len(x)))
        b.require_int(gt(str_len(x), 1))
        b.require_int(gt(str_len(y), 1000))
        result = solve(b, timeout=120)
        assert result.status == "sat"
        assert check_model(b.problem, result.model)
        assert len(result.model["y"]) > 1000
        assert set(result.model["x"]) == {"0"}

    def test_tonum_with_padded_length(self):
        """toNum(x) = 10 and |x| = 5 (Section 8's motivating case)."""
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 10))
        b.require_int(eq(str_len(x), 5))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"] == "00010"

    def test_luhn_smallest(self):
        from repro.symbex.luhn import luhn_problem
        result = TrauSolver().solve(luhn_problem(2), timeout=60)
        assert result.status == "sat"
        value = result.model["value"]
        digits = [int(c) for c in value]
        total = digits[1] + (digits[0] * 2 - 9 if digits[0] * 2 > 9
                             else digits[0] * 2)
        assert total % 10 == 0


class TestStatuses:
    def test_unsat_from_overapproximation(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]{2}")
        b.require_int(ge(str_len(x), 3))
        result = solve(b)
        assert result.status == "unsat"
        assert result.stats.get("phase") == "overapproximation"

    def test_unsat_from_complete_restriction(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{2}")
        b.equal((x,), ("ab",))
        b.diseq((x,), ("ab",))
        result = solve(b)
        assert result.status == "unsat"

    def test_unknown_without_overapproximation(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]{2}")
        b.require_int(ge(str_len(x), 3))
        result = solve(b, config=SolverConfig(use_overapproximation=False,
                                              max_rounds=1))
        assert result.status in ("unsat", "unknown")

    def test_empty_problem_is_sat(self):
        b = ProblemBuilder()
        result = solve(b)
        assert result.status == "sat"


class TestConversionScenarios:
    def test_tostr_is_canonical(self):
        b = ProblemBuilder()
        n = b.fresh_int("n")
        b.require_int(eq(var(n), 420))
        s = b.to_str(n)
        result = solve(b)
        assert result.status == "sat"
        assert result.model[s.name] == "420"

    def test_conversion_roundtrip_mismatch(self):
        """s != toStr(toNum(s)) has the leading-zero witnesses."""
        b = ProblemBuilder()
        s = b.str_var("s")
        b.member(s, "[0-9]+")
        b.require_int(le(str_len(s), 4))
        n = b.to_num(s)
        canonical = b.to_str(n)
        b.diseq((s,), (canonical,))
        result = solve(b, timeout=60)
        assert result.status == "sat"
        value = result.model["s"]
        assert value != str(to_num_value(value))

    def test_sum_of_two_converted_numbers(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.member(x, "[0-9]{2}")
        b.member(y, "[0-9]{2}")
        nx, ny = b.to_num(x), b.to_num(y)
        b.require_int(eq(var(nx) + var(ny), 110))
        b.require_int(eq(var(nx) - var(ny), 10))
        result = solve(b)
        assert result.status == "sat"
        assert int(result.model["x"]) == 60
        assert int(result.model["y"]) == 50

    def test_nan_propagates(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[a-z]{3}")
        n = b.to_num(x)
        b.require_int(ge(var(n), 0))
        result = solve(b)
        assert result.status == "unsat"


class TestOperations:
    def test_char_at(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]{4}")
        c = b.char_at(x, 2)
        b.equal((c,), ("b",))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"][2] == "b"

    def test_substr(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("abcdef",))
        piece = b.substr(x, 2, 3)
        y = b.str_var("y")
        b.equal((y,), (piece,))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["y"] == "cde"

    def test_contains_prefix_suffix(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.prefix_of(("ab",), x)
        b.suffix_of(("ba",), x)
        b.contains(x, ("cc",))
        b.require_int(le(str_len(x), 8))
        b.member(x, "[abc]+")
        result = solve(b, timeout=60)
        assert result.status == "sat"
        value = result.model["x"]
        assert value.startswith("ab") and value.endswith("ba")
        assert "cc" in value

    def test_ite_int(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]")
        n = b.to_num(x)
        doubled = var(n) * 2
        adjusted = b.ite_int(gt(doubled, 9), doubled - 9, doubled)
        b.require_int(eq(var(adjusted), 7))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"] == "8"


class TestValidatedRandomScenarios:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 999))
    def test_every_small_number_roundtrips(self, value):
        b = ProblemBuilder()
        n = b.fresh_int("n")
        b.require_int(eq(var(n), value))
        s = b.to_str(n)
        result = solve(b)
        assert result.status == "sat"
        assert result.model[s.name] == str(value)

    @settings(max_examples=15, deadline=None)
    @given(st.text(alphabet="abc", min_size=1, max_size=5))
    def test_pin_word_through_equation(self, word):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), (word,))
        b.require_int(eq(str_len(x), len(word) - 1))
        result = solve(b)
        assert result.status == "sat"
        assert check_model(b.problem, result.model)


class TestToNumBoundary:
    """Agreement of the flattened Psi_NaN/Psi_shift encoding with
    :func:`to_num_value` at the numeric-PFA chain boundary.

    The chain starts at ``initial_numeric_m = 5`` significant digits, so
    words whose digit-string length reaches or crosses 5 — including the
    ``0+w`` leading-zero forms Psi_shift exists for — are exactly where
    an off-by-one in the encoding would silently mis-convert."""

    BOUNDARY_WORDS = [
        "12345",        # length == initial m
        "123456",       # crosses m: solver must grow the chain
        "99999",        # largest value at the initial chain length
        "00000",        # all zeros, length == m, value 0
        "000001",       # leading zeros past m, single significant digit
        "0000012345",   # 0+w with |w| == m
        "09999",        # single leading zero at the boundary
    ]

    def _pinned(self, word, value):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), (word,))
        n = b.to_num(x)
        b.require_int(eq(var(n), value))
        return b

    def test_pinned_word_converts_exactly(self):
        for word in self.BOUNDARY_WORDS:
            expected = to_num_value(word)
            assert expected == int(word)
            builder = self._pinned(word, expected)
            result = solve(builder, timeout=60)
            assert result.status == "sat", (word, result.status)
            assert check_model(builder.problem, result.model), word

    def test_pinned_word_refutes_off_by_one(self):
        for word in self.BOUNDARY_WORDS:
            expected = to_num_value(word)
            result = solve(self._pinned(word, expected + 1), timeout=60)
            assert result.status == "unsat", (word, result.status)

    def test_nan_words_at_boundary(self):
        from repro.strings.ast import ToNum
        for word in ["1234a", "a23456", "12a45", ""]:
            assert to_num_value(word) == -1
            result = solve(self._pinned(word, -1), timeout=60)
            assert result.status == "sat", (word, result.status)
            refuted = self._pinned(word, -1)
            conversion = refuted.problem.by_kind(ToNum)[-1]
            refuted.require_int(ge(var(conversion.result), 0))
            result = solve(refuted, timeout=60)
            assert result.status == "unsat", (word, result.status)

    def test_leading_zero_padding_solved_backwards(self):
        """n = 12345 with |x| = 9 forces the 0+w shift form."""
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 12345))
        b.require_int(eq(str_len(x), 9))
        result = solve(b, timeout=60)
        assert result.status == "sat"
        assert result.model["x"] == "000012345"
