"""Unit and property tests for the simplex + branch-and-bound LIA core."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.lia.branch_bound import IntegerSolver, solve_atoms
from repro.lia.simplex import Simplex
from repro.logic.terms import var


class TestSimplex:
    def test_feasible_bounds(self):
        s = Simplex()
        s.add_variable("x")
        s.define("s1", {"x": 2})
        assert s.assert_lower("x", 1, "a") is None
        assert s.assert_upper("s1", 10, "b") is None
        assert s.check() == "sat"
        assert 1 <= s.value("x") <= 5

    def test_immediate_bound_clash(self):
        s = Simplex()
        s.add_variable("x")
        assert s.assert_lower("x", 5, "lo") is None
        conflict = s.assert_upper("x", 4, "up")
        assert set(conflict) == {"lo", "up"}

    def test_row_conflict_explanation(self):
        # x + y <= 2 with x >= 2, y >= 2 is infeasible.
        s = Simplex()
        s.define("r", {"x": 1, "y": 1})
        assert s.assert_upper("r", 2, "sum") is None
        assert s.assert_lower("x", 2, "x2") is None
        assert s.assert_lower("y", 2, "y2") is None
        assert s.check() == "unsat"
        assert set(s.conflict) == {"sum", "x2", "y2"}

    def test_push_pop_restores_feasibility(self):
        s = Simplex()
        s.define("r", {"x": 1, "y": -1})
        s.assert_upper("r", 0, "a")      # x <= y
        assert s.check() == "sat"
        s.push()
        # x >= y + 1 directly contradicts the recorded upper bound.
        conflict = s.assert_lower("r", 1, "b")
        assert set(conflict) == {"a", "b"}
        s.pop()
        assert s.check() == "sat"
        s.push()
        # A conflict that needs pivoting: bound the structural vars apart.
        assert s.assert_lower("x", 3, "x3") is None
        assert s.assert_upper("y", 1, "y1") is None
        assert s.check() == "unsat"
        assert set(s.conflict) == {"a", "x3", "y1"}
        s.pop()
        assert s.check() == "sat"

    def test_fractional_vertex(self):
        # 2x = 1 is rationally feasible at x = 1/2.
        s = Simplex()
        s.define("r", {"x": 2})
        s.assert_lower("r", 1, None)
        s.assert_upper("r", 1, None)
        assert s.check() == "sat"
        assert s.value("x") == Fraction(1, 2)


class TestIntegerSolver:
    def test_gcd_infeasibility_without_search(self):
        # 2x - 2y = 1 has no integer solution.
        result = solve_atoms([
            (var("x") * 2 - var("y") * 2 - 1, "eq1"),
            (1 + var("y") * 2 - var("x") * 2, "eq2"),
        ])
        assert result.status == "unsat"

    def test_branching_finds_integer_point(self):
        # 3x + 5y = 11, x, y >= 0 -> x = 2, y = 1.
        result = solve_atoms([
            (var("x") * 3 + var("y") * 5 - 11, None),
            (11 - var("x") * 3 - var("y") * 5, None),
            (-var("x"), None),
            (-var("y"), None),
        ])
        assert result.status == "sat"
        assert result.model["x"] * 3 + result.model["y"] * 5 == 11
        assert result.model["x"] >= 0 and result.model["y"] >= 0

    def test_frobenius_gap_unsat(self):
        # 3x + 5y = 7 has no solution with x, y >= 0.
        result = solve_atoms([
            (var("x") * 3 + var("y") * 5 - 7, "a"),
            (7 - var("x") * 3 - var("y") * 5, "b"),
            (-var("x"), "c"),
            (-var("y"), "d"),
        ])
        assert result.status == "unsat"

    def test_incremental_check_frames(self):
        solver = IntegerSolver()
        assert solver.assert_base(var("x") - 10, "base") is None   # x <= 10
        r1 = solver.check([(5 - var("x"), "lo5")])                 # x >= 5
        assert r1.status == "sat" and 5 <= r1.model["x"] <= 10
        r2 = solver.check([(11 - var("x"), "lo11")])               # x >= 11
        assert r2.status == "unsat"
        assert "lo11" in r2.conflict and "base" in r2.conflict
        r3 = solver.check([(7 - var("x"), "lo7")])
        assert r3.status == "sat"

    def test_budget_exhaustion_leaves_no_stale_frames(self):
        # x + 2y = 2 and 2x + y = 2 is rationally feasible (x = y = 2/3)
        # but integer-infeasible, so branching starts; node_limit=1 trips
        # the budget inside a branch frame.  The exception must unwind
        # every push, or this check's atoms stay asserted and poison the
        # conflict cores of every later check on the persistent solver.
        solver = IntegerSolver(node_limit=1)
        first = solver.check([
            (var("x") + var("y") * 2 - 2, "e1"),
            (2 - var("x") - var("y") * 2, "e2"),
            (var("x") * 2 + var("y") - 2, "e3"),
            (2 - var("x") * 2 - var("y"), "e4"),
        ])
        assert first.status == "unknown"
        after = solver.check([
            (var("x") - 5, "ux"), (5 - var("x"), "lx"),
            (var("y") - 5, "uy"), (5 - var("y"), "ly"),
        ])
        assert after.status == "sat"
        assert after.model["x"] == 5 and after.model["y"] == 5

    def test_conflict_core_subset_of_tags(self):
        result = solve_atoms([
            (var("x") - 3, "up"),
            (4 - var("x"), "lo"),
            (var("y"), "noise1"),
            (-var("y"), "noise2"),
        ])
        assert result.status == "unsat"
        assert set(result.conflict) <= {"up", "lo", "noise1", "noise2"}
        assert {"up", "lo"} <= set(result.conflict)


class TestIntegerProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(-4, 4), st.integers(-4, 4), st.integers(-6, 6)),
        min_size=1, max_size=6))
    def test_models_satisfy_atoms(self, rows):
        atoms = []
        for i, (a, b, k) in enumerate(rows):
            expr = var("x") * a + var("y") * b - k
            atoms.append((expr, i))
        atoms.append((var("x") - 20, "bx"))
        atoms.append((-var("x") - 20, "bx2"))
        atoms.append((var("y") - 20, "by"))
        atoms.append((-var("y") - 20, "by2"))
        result = solve_atoms(atoms)
        if result.status == "sat":
            x, y = result.model.get("x", 0), result.model.get("y", 0)
            for (a, b, k) in rows:
                assert a * x + b * y - k <= 0
        else:
            assert result.status == "unsat"
            # Cross-check with brute force over the bounded box.
            feasible = any(
                all(a * x + b * y - k <= 0 for (a, b, k) in rows)
                for x in range(-20, 21) for y in range(-20, 21))
            assert not feasible
