"""Tests for the formula presolver (elimination + interval folding)."""

from hypothesis import given, settings, strategies as st

from repro.logic import (
    FALSE, TRUE, atoms_of, conj, disj, eq, evaluate, ge, le, ne, var,
    variables_of,
)
from repro.logic.presolve import presolve, reconstruct_model
from repro.smt import solve_formula


class TestElimination:
    def test_constant_definition_folds(self):
        f = conj(eq(var("x"), 5), le(var("x"), 9))
        reduced, steps = presolve(f)
        assert reduced is TRUE
        model = reconstruct_model({}, steps)
        assert model["x"] == 5

    def test_alias_chain(self):
        f = conj(eq(var("x"), var("y")), eq(var("y"), var("z")),
                 eq(var("z"), 3), ge(var("x"), 0))
        reduced, steps = presolve(f)
        assert reduced is TRUE
        model = reconstruct_model({}, steps)
        assert model["x"] == model["y"] == model["z"] == 3

    def test_contradictory_equalities(self):
        f = conj(eq(var("x"), 1), eq(var("x"), 2))
        reduced, _ = presolve(f)
        assert reduced is FALSE

    def test_sum_definition_substitutes(self):
        f = conj(eq(var("t"), var("a") + var("b")),
                 le(var("t"), 5), ge(var("a"), 3), ge(var("b"), 3))
        reduced, _ = presolve(f)
        assert reduced is FALSE


class TestIntervalFolding:
    def test_entailed_atom_disappears(self):
        f = conj(le(var("x"), 5), ge(var("x"), 0),
                 disj(le(var("x"), 9), eq(var("y"), 2)))
        reduced, _ = presolve(f)
        # The disjunction is entailed by x <= 5 <= 9.
        assert len(atoms_of(reduced)) == 2

    def test_infeasible_branch_pruned(self):
        f = conj(le(var("x"), 5),
                 disj(ge(var("x"), 7), eq(var("y"), 2)),
                 ge(var("y"), 0))
        reduced, steps = presolve(f)
        model = reconstruct_model(solve_formula(reduced).model, steps)
        assert model["y"] == 2

    def test_bounds_stay_for_model_building(self):
        f = conj(ge(var("x"), 3), le(var("x"), 3))
        reduced, steps = presolve(f)
        model = reconstruct_model(
            solve_formula(reduced).model if reduced is not TRUE else {},
            steps)
        assert model["x"] == 3


@st.composite
def formulas(draw):
    atoms = []
    for _ in range(draw(st.integers(1, 6))):
        a = draw(st.integers(-3, 3))
        b = draw(st.integers(-3, 3))
        k = draw(st.integers(-8, 8))
        atoms.append(var("x") * a + var("y") * b + var("z") - k)
    parts = []
    for expr in atoms:
        kind = draw(st.sampled_from(["le", "eq", "or"]))
        if kind == "le":
            parts.append(le(expr, 0))
        elif kind == "eq":
            parts.append(eq(expr, 0))
        else:
            parts.append(disj(le(expr, 0), ge(var("x"), draw(
                st.integers(-3, 3)))))
    return conj(*parts)


class TestEquisatisfiability:
    @settings(max_examples=50, deadline=None)
    @given(formulas())
    def test_presolve_preserves_satisfiability(self, f):
        bounded = conj(f, *[conj(ge(var(v), -12), le(var(v), 12))
                            for v in ("x", "y", "z")])
        direct = solve_formula(bounded, simplify=False)
        simplified = solve_formula(bounded, simplify=True)
        assert direct.status == simplified.status
        if simplified.status == "sat":
            assert evaluate(bounded, simplified.model)
