"""Unit tests for :mod:`repro.serve.router` — deterministic, no real
worker processes.

The router only needs its shards to look like ``SolverService`` (submit
returning a handle, pump, drain, shutdown), so these tests drive it with
an in-memory fake whose flights finish exactly when the test says so:
breaker transitions, coalescing, cache hits, kill-and-reroute all become
single-threaded assertions.  The network-level tests with real services
live in ``test_net.py``.
"""

import pytest

from repro import faults
from repro.errors import FaultInjected
from repro.serve.router import CircuitBreaker, ShardRouter
from repro.serve.service import ServeResult
from repro.strings import ProblemBuilder


def sat_problem(chars="ab"):
    builder = ProblemBuilder()
    x = builder.str_var("x")
    builder.member(x, "[%s]{2}" % chars)
    return builder.problem


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class FakeHandle:
    def __init__(self, problem, name):
        self.problem = problem
        self.name = name
        self.done = False
        self.result = None


class FakeService:
    """Just enough SolverService surface for the router: flights finish
    when the test calls :meth:`finish`."""

    def __init__(self, index):
        self.index = index
        self.handles = []
        self.draining = False
        self.dead = False
        self.door_reason = None      # answer instantly at the door

    @property
    def open_requests(self):
        return sum(1 for h in self.handles if not h.done)

    def submit(self, problem, name=None, timeout=None, fingerprint=None):
        handle = FakeHandle(problem, name)
        if self.door_reason is not None:
            handle.done = True
            handle.result = ServeResult(name, "unknown",
                                        reason=self.door_reason)
        self.handles.append(handle)
        return handle

    def pump(self, block=0.0):
        return 0

    def begin_drain(self, keep_inflight=True):
        self.draining = True

    def shutdown(self, drain=True, poll=0.02):
        self.dead = True
        for handle in self.handles:
            if not handle.done:
                handle.done = True
                handle.result = ServeResult(handle.name, "unknown",
                                            reason="shutdown")

    def finish(self, index=-1, status="sat", reason=None):
        handle = self.handles[index]
        handle.done = True
        handle.result = ServeResult(handle.name, status, reason=reason)
        return handle


def make_router(shards=2, clock=None, **kwargs):
    services = {}

    def factory(index):
        services[index] = FakeService(index)
        return services[index]

    router = ShardRouter(factory, shards=shards,
                         clock=clock or FakeClock(), **kwargs)
    return router, services


def shard_of(router, services, ticket):
    return services[ticket.shard]


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()             # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half-open"
        assert breaker.allow()               # the probe
        assert not breaker.allow()           # only one at a time
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_rearms_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open" and not breaker.allow()
        assert breaker.trips == 1            # a re-arm is not a new trip


class TestRouting:
    def test_same_fingerprint_same_shard(self):
        router, services = make_router(shards=3)
        problem = sat_problem()
        first = router.submit(problem)
        shard_of(router, services, first).finish(status="sat")
        router.pump()
        assert first.result.status == "sat"
        # The cache would hide the second route; disable it per router.
        router2, services2 = make_router(shards=3, cache_size=0)
        a = router2.submit(problem)
        b = router2.submit(sat_problem("cd"))
        c = router2.submit(problem)          # coalesces onto a's flight
        assert a.shard == c.shard
        assert c.coalesced

    def test_coalesced_followers_share_the_result(self):
        router, services = make_router(shards=1)
        problem = sat_problem()
        leader = router.submit(problem, name="leader")
        follower = router.submit(problem, name="follower")
        assert follower.coalesced and not leader.coalesced
        assert services[0].open_requests == 1          # one real solve
        services[0].finish(status="sat")
        router.pump()
        assert leader.result.status == "sat"
        assert follower.result.status == "sat"
        assert follower.result.name == "follower"      # renamed copy
        assert router.counters["coalesced"] == 1

    def test_verdict_cache_serves_repeats_without_a_worker(self):
        router, services = make_router(shards=1)
        problem = sat_problem()
        first = router.submit(problem)
        services[0].finish(status="unsat")
        router.pump()
        repeat = router.submit(problem)
        assert repeat.done
        assert repeat.result.status == "unsat"
        assert repeat.result.stats.get("served_from") == "router-cache"
        assert router.counters["cache_hits"] == 1
        assert len(services[0].handles) == 1           # no second solve

    def test_unknowns_are_never_cached(self):
        router, services = make_router(shards=1)
        problem = sat_problem()
        router.submit(problem)
        services[0].finish(status="unknown", reason="timeout")
        router.pump()
        again = router.submit(problem)
        assert not again.done                          # re-solves
        assert len(services[0].handles) == 2

    def test_door_answers_are_not_flights(self):
        router, services = make_router(shards=1)
        services[0].door_reason = "overloaded"
        ticket = router.submit(sat_problem())
        assert ticket.done
        assert ticket.result.answer == "unknown(overloaded)"
        assert router.open_flights == 0


class TestBreakersAndFailover:
    def test_breaker_opens_after_infra_failures_and_reroutes(self):
        clock = FakeClock()
        router, services = make_router(shards=2, clock=clock,
                                       breaker_threshold=2,
                                       breaker_cooldown=10.0,
                                       cache_size=0)
        problem = sat_problem()
        home = router.submit(problem).shard
        for _ in range(2):
            services[home].finish(status="unknown", reason="timeout")
            router.pump()
            router.submit(problem)
        # Third submit finds the home breaker open: ring walks on.
        rerouted = router.submit(sat_problem("xy"))
        # Whichever shard that landed on, the tripped one takes nothing.
        states = {s["shard"]: s["breaker"] for s in router.shard_states()}
        assert states[home] == "open"
        assert router.counters["breaker_trips"] == 1

    def test_all_shards_down_answers_unavailable(self):
        router, services = make_router(shards=1, breaker_threshold=1)
        problem = sat_problem()
        router.submit(problem)
        services[0].finish(status="unknown", reason="worker-death")
        router.pump()
        ticket = router.submit(problem)
        assert ticket.done
        assert ticket.result.answer == "unknown(unavailable)"
        assert router.counters["unavailable"] == 1

    def test_kill_shard_reroutes_inflight_to_survivor(self):
        router, services = make_router(shards=2, cache_size=0)
        problem = sat_problem()
        ticket = router.submit(problem, timeout=30.0)
        victim = ticket.shard
        survivor = 1 - victim
        router.kill_shard(victim)
        # The dead shard answered shutdown; the router relaunched the
        # request on the survivor within its remaining deadline.
        assert not ticket.done
        assert ticket.reroutes == 1
        assert services[survivor].open_requests == 1
        services[survivor].finish(status="sat")
        router.pump()
        assert ticket.result.status == "sat"
        assert router.counters["shard_kills"] == 1

    def test_kill_shard_with_spent_deadline_answers_shutdown(self):
        clock = FakeClock()
        router, services = make_router(shards=2, clock=clock,
                                       cache_size=0)
        ticket = router.submit(sat_problem(), timeout=5.0)
        clock.advance(6.0)                   # the caller is gone
        router.kill_shard(ticket.shard)
        assert ticket.done
        assert ticket.result.answer == "unknown(shutdown)"
        assert ticket.reroutes == 0

    def test_restart_brings_a_fresh_shard_up(self):
        router, services = make_router(shards=2)
        assert router.kill_shard(0)
        assert not router.kill_shard(0)      # idempotent
        dead = services[0]
        assert router.restart_shard(0)
        assert services[0] is not dead       # factory built a new one
        states = router.shard_states()
        assert all(s["alive"] for s in states)

    def test_restart_after_timer(self):
        clock = FakeClock()
        router, services = make_router(shards=2, clock=clock,
                                       restart_after=3.0)
        router.kill_shard(1)
        router.pump()
        assert not router.shard_states()[1]["alive"]
        clock.advance(3.0)
        router.pump()
        assert router.shard_states()[1]["alive"]
        assert router.counters["shard_restarts"] == 1


class TestLifecycle:
    def test_draining_router_answers_shutdown_at_the_door(self):
        router, services = make_router(shards=1)
        router.begin_drain()
        ticket = router.submit(sat_problem())
        assert ticket.done
        assert ticket.result.answer == "unknown(shutdown)"
        assert services[0].draining

    def test_shutdown_answers_every_outstanding_ticket(self):
        router, services = make_router(shards=2, cache_size=0)
        tickets = [router.submit(sat_problem(c), name="t%s" % c)
                   for c in ("ab", "cd", "ef")]
        router.shutdown(drain=False)
        for ticket in tickets:
            assert ticket.done
            assert ticket.result.answer == "unknown(shutdown)"
        assert all(s.dead for s in services.values())

    def test_context_manager_shuts_down(self):
        router, services = make_router(shards=1)
        with router:
            ticket = router.submit(sat_problem())
        assert ticket.done
        assert all(s.dead for s in services.values())

    def test_route_fault_seam_raises_out_of_submit(self):
        router, services = make_router(shards=1)
        with faults.injected("net.route", mode="raise", times=1):
            with pytest.raises(FaultInjected):
                router.submit(sat_problem())
        # Disarmed: routing works again.
        ticket = router.submit(sat_problem())
        assert not ticket.done
        router.shutdown(drain=False)
