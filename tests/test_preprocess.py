"""Tests for duplicate-occurrence expansion (Section 7.2's assumption)."""

from repro.core.names import NameFactory
from repro.core.preprocess import expand_duplicates
from repro.strings import StrVar, StringProblem, WordEquation


def no_equation_repeats_a_var(problem):
    for c in problem.by_kind(WordEquation):
        seen = set()
        for e in c.lhs + c.rhs:
            if isinstance(e, StrVar):
                if e in seen:
                    return False
                seen.add(e)
    return True


X, Y = StrVar("x"), StrVar("y")


class TestExpansion:
    def test_no_duplicates_is_identity(self):
        problem = StringProblem([WordEquation((X, "a"), ("b", Y))])
        out = expand_duplicates(problem, NameFactory())
        assert len(out) == 1
        assert no_equation_repeats_a_var(out)

    def test_cross_side_duplicate(self):
        problem = StringProblem([WordEquation(("0", X), (X, "0"))])
        out = expand_duplicates(problem, NameFactory())
        assert len(out) == 2
        assert no_equation_repeats_a_var(out)

    def test_same_side_duplicate(self):
        problem = StringProblem([WordEquation((X, X), ("abab",))])
        out = expand_duplicates(problem, NameFactory())
        assert len(out) == 2
        assert no_equation_repeats_a_var(out)

    def test_triple_occurrence(self):
        problem = StringProblem([WordEquation((X, X, X), ("aaa",))])
        out = expand_duplicates(problem, NameFactory())
        assert len(out) == 3
        assert no_equation_repeats_a_var(out)

    def test_solutions_preserved(self):
        from repro.core.solver import TrauSolver
        from repro.strings import check_model
        problem = StringProblem([WordEquation((X, X), ("abab",))])
        result = TrauSolver().solve(problem, timeout=30)
        assert result.status == "sat"
        assert result.model["x"] == "ab"
        assert check_model(problem, result.model)
