"""Chaos suite: fault injection against the degradation ladder.

Every catalogued fault point (``repro.faults.CATALOG``) is armed in turn
against a small SAT/UNSAT/UNKNOWN triple, and the solver must uphold the
resilience contract of DESIGN.md Section 7:

* ``solve`` never lets an internal exception escape,
* a SAT answer always carries a model that validates concretely,
* a definite answer is never *wrong* (a fault may cost completeness,
  i.e. degrade a result to UNKNOWN, but never soundness),
* when the ladder stepped down, ``stats["degraded_to"]`` names the rung.

A hypothesis property additionally checks the fully-degraded rung agrees
with the default configuration on random fuzzed instances, and unit
tests pin the fault-spec grammar, the firing schedule, and the unified
Budget semantics.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import cache, faults
from repro.config import Budget, Deadline, SolverConfig
from repro.core.solver import DEGRADATION_LADDER, TrauSolver
from repro.errors import (BUDGET_REASONS, FaultInjected, ResourceLimit,
                          SolverError)
from repro.logic import eq, ge
from repro.logic.terms import var
from repro.strings import ProblemBuilder, check_model, str_len
from repro.symbex import fuzz

ALL_POINTS = sorted(faults.CATALOG)


def sat_problem():
    """toNum(x) = 10 and |x| = 5 — satisfied only by "00010"."""
    b = ProblemBuilder()
    x = b.str_var("x")
    n = b.to_num(x)
    b.require_int(eq(var(n), 10))
    b.require_int(eq(str_len(x), 5))
    return b.problem


def unsat_problem():
    """y in [0-9]{2} but |y| >= 3."""
    b = ProblemBuilder()
    y = b.str_var("y")
    b.member(y, "[0-9]{2}")
    b.require_int(ge(str_len(y), 3))
    return b.problem


def solve_with_fault(problem, spec, timeout=20, **config_kwargs):
    """One solve with *spec* armed via the config path.

    Returns ``(result, fault)`` so tests can tell whether the point was
    actually reached (a fault at a seam the instance never exercises is
    a vacuous run, not a recovery).
    """
    fault = faults.parse_spec(spec)
    config = SolverConfig(fault_specs=(fault,), **config_kwargs)
    # The chaos suite exercises specific seams; the cross-solve outcome
    # memos (overapprox verdicts, length hints) would let a warm entry
    # from an earlier test skip the very phase a fault targets.
    cache.clear_all()
    result = TrauSolver(config=config).solve(problem, timeout=timeout)
    return result, fault


def assert_contract(problem, result, expected):
    assert result.status in ("sat", "unsat", "unknown")
    if expected == "sat":
        assert result.status != "unsat"
    if expected == "unsat":
        assert result.status != "sat"
    if result.status == "sat":
        assert check_model(problem, result.model)
    if result.status == "unknown":
        assert result.stats.get("stopped_by")
    degraded = result.stats.get("degraded_to")
    if degraded is not None:
        assert degraded in DEGRADATION_LADDER


class TestChaosTriple:
    """Each point, armed permanently and transiently, against the triple."""

    @pytest.mark.parametrize("point", ALL_POINTS)
    @pytest.mark.parametrize("schedule", ["", ":times=1"])
    def test_raise_fault(self, point, schedule):
        spec = point + ":raise" + schedule
        transient = bool(schedule)

        # SAT leg.
        problem = sat_problem()
        result, fault = solve_with_fault(problem, spec)
        assert_contract(problem, result, "sat")
        if fault.fired and transient:
            # A one-shot failure must be absorbed by the next rung.
            assert result.status == "sat"
            assert result.stats.get("degraded_to") in DEGRADATION_LADDER
        if result.stats.get("degraded_to") == "give-up":
            assert result.stats["stopped_by"] == "internal-error"

        # UNSAT leg.
        problem = unsat_problem()
        result, fault = solve_with_fault(problem, spec)
        assert_contract(problem, result, "unsat")
        if fault.fired and transient:
            assert result.status == "unsat"

        # UNKNOWN leg: a starved budget on the SAT instance.  The fault
        # and the budget trip may interleave arbitrarily; the contract
        # still holds and nothing escapes.
        problem = sat_problem()
        result, fault = solve_with_fault(problem, spec,
                                         bb_node_limit=1,
                                         smt_iteration_limit=1)
        assert_contract(problem, result, "sat")

    @pytest.mark.parametrize("point", ["lia.pivot", "cache.lookup",
                                       "smt.session.solve"])
    def test_runtime_crash_is_absorbed(self, point):
        """A bare RuntimeError (not a SolverError) rides the same ladder."""
        problem = sat_problem()
        result, fault = solve_with_fault(
            problem, point + ":raise:exc=runtime,times=1")
        assert_contract(problem, result, "sat")
        if fault.fired:
            assert result.status == "sat"

    @pytest.mark.parametrize("point", ["sat.solve", "flatten.fragment"])
    def test_delay_fault_is_harmless_without_deadline(self, point):
        problem = sat_problem()
        result, _ = solve_with_fault(problem,
                                     point + ":delay:seconds=0.001,times=2")
        assert result.status == "sat"
        assert check_model(problem, result.model)

    @pytest.mark.parametrize("point", ["smt.solve", "lia.check"])
    def test_resource_fault_is_attributable(self, point):
        """An injected ResourceLimit is budget exhaustion, not a crash:
        no ladder retry, just an attributable unknown."""
        problem = sat_problem()
        result, fault = solve_with_fault(problem,
                                         point + ":raise:exc=resource")
        if fault.fired:
            assert result.status == "unknown"
            assert result.stats["stopped_by"] in BUDGET_REASONS
        else:
            assert_contract(problem, result, "sat")


class TestQuarantine:
    """Corrupt-mode faults: a lying component never reaches the caller."""

    @pytest.mark.parametrize("point", ["solver.decode", "smt.session.solve"])
    def test_corrupted_model_is_quarantined(self, point):
        problem = sat_problem()
        result, fault = solve_with_fault(problem, point + ":corrupt:times=1")
        assert result.status == "sat"
        assert check_model(problem, result.model)
        if fault.fired:
            # The lie was caught by validation and the rung retried.
            assert result.stats.get("degraded_to") in DEGRADATION_LADDER

    def test_corrupted_oneshot_model_never_escapes(self):
        """smt.solve also serves the over-approximation, where a corrupted
        model only misleads a heuristic — so corruption there need not
        force a rung change, but a SAT answer must still validate."""
        problem = sat_problem()
        result, fault = solve_with_fault(problem, "smt.solve:corrupt")
        assert fault.fired
        assert result.status in ("sat", "unknown")
        if result.status == "sat":
            assert check_model(problem, result.model)

    def test_corrupted_cache_hit_degrades_to_miss(self):
        problem = unsat_problem()
        result, _ = solve_with_fault(problem, "cache.lookup:corrupt")
        assert result.status == "unsat"


class TestLadderBehaviour:
    def test_permanent_fault_exhausts_ladder(self):
        """lia.pivot is on every rung's path: raising there forever must
        walk the whole ladder and give up attributably."""
        problem = sat_problem()
        result, fault = solve_with_fault(problem, "lia.pivot:raise")
        assert fault.fired
        assert result.status == "unknown"
        assert result.stats["degraded_to"] == "give-up"
        assert result.stats["stopped_by"] == "internal-error"
        assert result.stats["degradations"]

    def test_transient_fault_lands_on_next_rung(self):
        problem = sat_problem()
        result, fault = solve_with_fault(problem,
                                         "smt.session.solve:raise:times=1")
        assert fault.fired
        assert result.status == "sat"
        assert result.stats["degraded_to"] == "oneshot"
        assert any("smt.session.solve" in entry
                   for entry in result.stats["degradations"])

    def test_no_cache_rung_escapes_cache_faults(self):
        """A permanently broken cache costs two rungs, not the answer."""
        problem = unsat_problem()
        result, fault = solve_with_fault(problem, "cache.lookup:raise")
        assert result.status == "unsat"
        if fault.fired:
            assert result.stats["degraded_to"] in ("no-cache", "minimal")

    def test_unfired_fault_means_no_degradation(self):
        problem = sat_problem()
        result, fault = solve_with_fault(problem,
                                         "automata.determinize:raise:after=999")
        assert result.status == "sat"
        assert "degraded_to" not in result.stats


MINIMAL_CONFIG = SolverConfig(use_incremental=False, use_caches=False,
                              use_presolve=False,
                              use_overapproximation=False,
                              use_static_analysis=False)


def _compatible(a, b):
    """No SAT-vs-UNSAT contradiction (unknown is compatible with both)."""
    return {a, b} != {"sat", "unsat"}


class TestDegradedAgreement:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_minimal_rung_agrees_with_default(self, seed):
        for instance in fuzz.generate(2, seed=seed):
            default = TrauSolver().solve(instance.problem, timeout=15)
            minimal = TrauSolver(config=MINIMAL_CONFIG).solve(
                instance.problem, timeout=15)
            assert _compatible(default.status, minimal.status)
            for result in (default, minimal):
                if result.status == "sat":
                    assert check_model(instance.problem, result.model)
                if instance.expected and result.status in ("sat", "unsat"):
                    assert result.status == instance.expected


class TestFaultMachinery:
    def test_parse_spec_full(self):
        fault = faults.parse_spec("cache.lookup:raise:after=2,times=1")
        assert fault.point == "cache.lookup"
        assert fault.mode == "raise"
        assert fault.after == 2
        assert fault.times == 1

    def test_parse_spec_defaults(self):
        fault = faults.parse_spec("lia.pivot")
        assert fault.mode == "raise"
        assert fault.after == 0
        assert fault.times is None

    @pytest.mark.parametrize("spec", ["nope.nope", "lia.pivot:explode",
                                      "lia.pivot:raise:bogus=1",
                                      "lia.pivot:raise:times"])
    def test_parse_spec_rejects(self, spec):
        with pytest.raises(ValueError):
            faults.parse_spec(spec)

    def test_firing_schedule(self):
        fault = faults.Fault("lia.pivot", after=1, times=1)
        with faults.injected(specs=[fault]):
            faults.point("lia.pivot")          # hit 1: skipped (after=1)
            with pytest.raises(FaultInjected) as excinfo:
                faults.point("lia.pivot")      # hit 2: fires
            assert excinfo.value.point == "lia.pivot"
            faults.point("lia.pivot")          # hit 3: spent (times=1)
        assert fault.hits == 3
        assert fault.fired == 1

    def test_fault_injected_is_solver_error(self):
        # The ladder catches SolverError; injected faults must ride it.
        assert issubclass(FaultInjected, SolverError)

    def test_injected_restores_previous_arming(self):
        outer = faults.arm(faults.Fault("cache.store", after=99))
        try:
            with faults.injected("cache.store", times=1) as inner:
                assert faults.ARMED["cache.store"] is inner
            assert faults.ARMED["cache.store"] is outer
        finally:
            faults.disarm()

    def test_arm_from_env(self):
        environ = {"REPRO_INJECT_FAULT":
                   "cache.lookup:raise:times=1; lia.pivot:delay"}
        try:
            armed = faults.arm_from_env(environ)
            assert sorted(f.point for f in armed) == ["cache.lookup",
                                                      "lia.pivot"]
            assert faults.ARMED["lia.pivot"].mode == "delay"
        finally:
            faults.disarm()

    def test_corrupt_leaves_other_modes_alone(self):
        with faults.injected("cache.lookup", mode="raise", after=99):
            assert faults.corrupt("cache.lookup", 7, lambda v: -v) == 7

    def test_every_point_is_documented(self):
        for name, where in faults.CATALOG.items():
            assert name and where


class TestBudget:
    def test_plain_deadline_is_degenerate_budget(self):
        deadline = Deadline.unbounded()
        assert deadline.bb_node_limit is None
        assert deadline.smt_iteration_limit is None
        deadline.charge_states(10 ** 9)  # no limit: no-op

    def test_charge_states_trips_attributably(self):
        budget = Budget(automata_states=10)
        budget.charge_states(10)  # at the limit: fine
        with pytest.raises(ResourceLimit) as excinfo:
            budget.charge_states(11, op="determinization")
        assert excinfo.value.reason == "automata-states"
        assert "determinization" in str(excinfo.value)

    def test_resource_limit_default_reason(self):
        assert ResourceLimit("out of time").reason == "deadline"
        assert set(BUDGET_REASONS) == {"deadline", "bb-nodes",
                                       "smt-iterations", "automata-states"}

    def test_config_budget_carries_limits(self):
        config = SolverConfig(bb_node_limit=7, smt_iteration_limit=8,
                              automata_state_limit=9,
                              parikh_counter_bound=10)
        budget = config.budget()
        assert budget.bb_node_limit == 7
        assert budget.smt_iteration_limit == 8
        assert budget.automata_state_limit == 9
        assert budget.parikh_counter_bound == 10
        assert budget.remaining() is None

    def test_starved_search_budget_is_attributable(self):
        problem = sat_problem()
        config = SolverConfig(bb_node_limit=1, smt_iteration_limit=1)
        result = TrauSolver(config=config).solve(problem, timeout=20)
        assert result.status == "unknown"
        reason = result.stats.get("budget_tripped") \
            or result.stats.get("stopped_by")
        assert reason in BUDGET_REASONS

    def test_starved_automata_budget_is_attributable(self):
        # u.v = v.u with unbounded variables forces loop PFAs, whose
        # synchronization needs the asynchronous product — the construction
        # the state budget guards.
        b = ProblemBuilder()
        u = b.str_var("u")
        v = b.str_var("v")
        b.equal((u, v), (v, u))
        b.require_int(ge(str_len(u), 1))
        config = SolverConfig(automata_state_limit=1)
        result = TrauSolver(config=config).solve(b.problem, timeout=20)
        assert result.status == "unknown"
        assert result.stats["stopped_by"] == "automata-states"

    def test_explicit_budget_overrides_config(self):
        problem = sat_problem()
        solver = TrauSolver(config=SolverConfig(bb_node_limit=1,
                                                smt_iteration_limit=1))
        generous = Budget(bb_nodes=10 ** 6, smt_iterations=10 ** 6)
        result = solver.solve(problem, budget=generous)
        assert result.status == "sat"
        assert check_model(problem, result.model)
