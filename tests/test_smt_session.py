"""Tests for cross-round incremental SMT solving (repro.smt.session)."""

from hypothesis import given, settings, strategies as st

from repro.cli import _selfcheck_problems
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.logic import conj, eq, ge, le, ne
from repro.logic.formula import evaluate
from repro.logic.terms import var
from repro.obs import Metrics, scope
from repro.sat.solver import SAT, UNSAT, SatSolver
from repro.smt import IncrementalSmtSession, solve_formula

X, Y, Z = var("x"), var("y"), var("z")
NAMES = ("x", "y", "z")


# -- SatSolver under assumptions ---------------------------------------------


class TestSolveUnderAssumptions:
    def test_assumption_flips_outcome(self):
        sat = SatSolver()
        sat.add_clause([1, 2])
        sat.add_clause([-1, 2])
        assert sat.solve(assumptions=[-2]) == UNSAT
        # The solver survives an assumption conflict and stays usable.
        assert sat.solve(assumptions=[2]) == SAT
        assert sat.solve() == SAT

    def test_assumptions_respected_in_model(self):
        sat = SatSolver()
        sat.add_clause([1, 2, 3])
        assert sat.solve(assumptions=[-1, -3]) == SAT
        model = sat.model()
        assert model[1] is False and model[3] is False and model[2] is True

    def test_global_unsat_is_permanent(self):
        sat = SatSolver()
        sat.add_clause([1])
        sat.add_clause([-1])
        assert sat.solve(assumptions=[2]) == UNSAT
        assert not sat._ok or sat.solve() == UNSAT

    def test_propagate_assumptions_yields_implied(self):
        sat = SatSolver()
        sat.add_clause([-1, 2])
        sat.add_clause([-2, 3])
        implied = sat.propagate_assumptions([1])
        assert implied is not None
        assert {1, 2, 3} <= set(implied)

    def test_propagate_assumptions_conflict(self):
        sat = SatSolver()
        sat.add_clause([-1, 2])
        sat.add_clause([-2, -1])
        assert sat.propagate_assumptions([1]) is None
        assert sat._ok          # only the assumptions were refuted
        assert sat.solve() == SAT


# -- IncrementalSmtSession agrees with fresh one-shot solving ----------------


def exprs():
    coeff = st.integers(-3, 3)
    def build(c1, c2, v1, v2, k):
        return c1 * var(v1) + c2 * var(v2) + k
    return st.builds(build, coeff, coeff, st.sampled_from(NAMES),
                     st.sampled_from(NAMES), st.integers(-8, 8))


def atoms():
    return st.builds(lambda op, e: op(e, 0),
                     st.sampled_from([eq, ge, le, ne]), exprs())


def small_formulas():
    return st.builds(lambda atoms_, op: op(*atoms_),
                     st.lists(atoms(), min_size=1, max_size=3),
                     st.sampled_from([conj]))


BOUNDS = conj(*[conj(ge(var(n), -10), le(var(n), 10)) for n in NAMES])


def check_round(session, fragments, reference):
    expected = solve_formula(reference)
    got = session.solve(fragments)
    assert got.status == expected.status, \
        "session=%s one-shot=%s for %s" % (got.status, expected.status,
                                           reference)
    if got.status == "sat":
        assert evaluate(reference, got.model) is True


class TestSessionMatchesOneShot:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(small_formulas(), min_size=1, max_size=4))
    def test_rounds_agree_with_fresh_solves(self, rounds):
        """Each round (bounds + stable fragment + round fragment) must
        answer exactly like a fresh solve of the conjunction."""
        session = IncrementalSmtSession(SolverConfig())
        stable = rounds[0]
        for formula in rounds:
            fragments = [("bounds", BOUNDS), ("stable", stable),
                         ("round", formula)]
            check_round(session, fragments,
                        conj(BOUNDS, stable, formula))

    @settings(max_examples=25, deadline=None)
    @given(small_formulas(), small_formulas())
    def test_replacing_a_fragment_retires_it(self, first, second):
        """A replaced fragment must stop constraining later rounds."""
        session = IncrementalSmtSession(SolverConfig())
        check_round(session, [("bounds", BOUNDS), ("frag", first)],
                    conj(BOUNDS, first))
        check_round(session, [("bounds", BOUNDS), ("frag", second)],
                    conj(BOUNDS, second))

    def test_unsat_round_does_not_poison_session(self):
        session = IncrementalSmtSession(SolverConfig())
        good = conj(ge(X, 1), le(X, 5))
        bad = conj(ge(Y, 3), le(Y, 2))
        check_round(session, [("a", good)], good)
        check_round(session, [("a", good), ("b", bad)], conj(good, bad))
        check_round(session, [("a", good)], good)

    def test_identical_fragments_reuse_clauses(self):
        session = IncrementalSmtSession(SolverConfig())
        shared = conj(ge(X, 0), le(X + Y, 7), ne(Y, 3))
        metrics = Metrics()
        with scope(None, metrics):
            session.solve([("s", shared), ("r", ge(Y, 1))])
            session.solve([("s", shared), ("r", ge(Y, 2))])
        flat = metrics.flat()
        assert flat.get("smt.clauses_reused", 0) > 0
        assert flat.get("smt.fragments_reused", 0) >= 1


# -- end-to-end: selfcheck statuses are knob-independent ---------------------


class TestSelfcheckKnobIndependence:
    def test_statuses_identical_across_knobs(self):
        configs = [
            SolverConfig(),
            SolverConfig(use_caches=False),
            SolverConfig(use_incremental=False),
            SolverConfig(use_caches=False, use_incremental=False),
        ]
        for name, problem, expected in _selfcheck_problems():
            statuses = {
                (config.use_caches, config.use_incremental):
                    TrauSolver(config=config).solve(problem,
                                                    timeout=60.0).status
                for config in configs}
            assert set(statuses.values()) == {expected}, \
                "%s: %s" % (name, statuses)
