"""Tests for the SMT-LIB frontend (parser, converter, printer)."""

import pytest

from repro.core import TrauSolver
from repro.errors import ParseError, UnsupportedConstraint
from repro.smtlib import load_problem, parse_sexprs, problem_to_smtlib
from repro.smtlib.parser import StringLiteral
from repro.strings import check_model


class TestParser:
    def test_atoms_and_nesting(self):
        out = parse_sexprs("(assert (= x 3)) (check-sat)")
        assert out == [["assert", ["=", "x", 3]], ["check-sat"]]

    def test_string_literals_with_escapes(self):
        out = parse_sexprs('(assert (= x "a""b"))')
        assert out[0][1][2] == StringLiteral('a"b')

    def test_unicode_escape(self):
        out = parse_sexprs('(= x "\\u{41}")')
        assert out[0][2] == StringLiteral("A")

    def test_comments_ignoredted(self):
        out = parse_sexprs("; hello\n(check-sat) ; bye")
        assert out == [["check-sat"]]

    def test_negative_numbers(self):
        assert parse_sexprs("(- x -3)") == [["-", "x", -3]]

    def test_errors(self):
        with pytest.raises(ParseError):
            parse_sexprs("(a (b)")
        with pytest.raises(ParseError):
            parse_sexprs('(= x "abc)')


SCRIPT = """
(set-logic QF_SLIA)
(set-info :status sat)
(declare-fun x () String)
(declare-fun n () Int)
(assert (= n (str.to_int x)))
(assert (= n 42))
(assert (= (str.len x) 4))
(check-sat)
"""


class TestConverter:
    def test_conversion_script_solves(self):
        script = load_problem(SCRIPT)
        assert script.expected == "sat"
        assert script.logic == "QF_SLIA"
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["x"] == "0042"

    def test_concat_and_membership(self):
        text = """
        (declare-fun a () String)
        (declare-fun b () String)
        (assert (= (str.++ a b) "hello"))
        (assert (str.in_re a (re.+ (re.range "a" "z"))))
        (assert (= (str.len a) 2))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["a"] == "he"

    def test_extended_predicates(self):
        text = """
        (declare-fun s () String)
        (assert (str.prefixof "ab" s))
        (assert (str.suffixof "ba" s))
        (assert (str.contains s "c"))
        (assert (<= (str.len s) 6))
        (assert (str.in_re s (re.* (re.union (str.to_re "a")
                                             (str.to_re "b")
                                             (str.to_re "c")))))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=60)
        assert result.status == "sat"
        value = result.model["s"]
        assert value.startswith("ab") and value.endswith("ba")
        assert "c" in value

    def test_distinct_strings(self):
        text = """
        (declare-fun a () String)
        (assert (str.in_re a (re.+ (str.to_re "x"))))
        (assert (distinct a "x"))
        (assert (<= (str.len a) 3))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["a"] != "x"

    def test_ite_and_arithmetic(self):
        text = """
        (declare-fun n () Int)
        (declare-fun m () Int)
        (assert (= m (ite (> n 5) (- n 5) n)))
        (assert (= m 3))
        (assert (> n 5))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["n"] == 8

    def test_from_int(self):
        text = """
        (declare-fun n () Int)
        (declare-fun s () String)
        (assert (= s (str.from_int n)))
        (assert (= n 120))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert result.model["s"] == "120"

    def test_define_fun_macro(self):
        text = """
        (declare-fun x () String)
        (define-fun limit () Int 3)
        (assert (= (str.len x) limit))
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        assert len(result.model["x"]) == 3

    def test_unsupported_is_loud(self):
        with pytest.raises(UnsupportedConstraint):
            load_problem("(declare-fun f (Int) Int)")
        with pytest.raises(UnsupportedConstraint):
            # str.replace is supported for literal needles only.
            load_problem("""
            (declare-fun x () String)
            (declare-fun y () String)
            (assert (= x (str.replace x y "b")))
            """)


class TestPrinterRoundTrip:
    def test_generated_problem_round_trips(self):
        from repro.symbex.pythonlib import parse_date_problem
        problem = parse_date_problem(True)
        text = problem_to_smtlib(problem, expected="sat")
        reloaded = load_problem(text)
        assert reloaded.expected == "sat"
        result = TrauSolver().solve(reloaded.problem, timeout=60)
        assert result.status == "sat"

    def test_luhn_round_trips(self):
        from repro.symbex.luhn import luhn_problem
        problem = luhn_problem(2)
        text = problem_to_smtlib(problem)
        reloaded = load_problem(text)
        result = TrauSolver().solve(reloaded.problem, timeout=60)
        assert result.status == "sat"
        assert check_model(reloaded.problem, result.model)


class TestLiteralEscaping:
    """print -> parse must be the identity on string literals (SMT-LIB
    2.6 ``""`` / ``\\u{..}`` forms), over the *full* default alphabet —
    quote and backslash included."""

    @staticmethod
    def _roundtrip_literal(text):
        from repro.strings import ProblemBuilder, StrVar, WordEquation

        b = ProblemBuilder()
        b.equal((b.str_var("x"),), (text,))
        script = load_problem(problem_to_smtlib(b.problem))
        equation = script.problem.by_kind(WordEquation)[0]
        return "".join(e for e in equation.rhs
                       if not isinstance(e, StrVar))

    def test_full_default_alphabet(self):
        from repro.alphabet import DEFAULT_ALPHABET
        text = "".join(DEFAULT_ALPHABET.chars())
        assert self._roundtrip_literal(text) == text

    def test_quote_backslash_and_nonprintables(self):
        for text in ['"', "\\", '""\\\\', 'a"b\\c', "\\u{0}",
                     "line\nbreak", "\ttab", "\x00\x1f\x7f"]:
            assert self._roundtrip_literal(text) == text, repr(text)

    def test_hypothesis_roundtrip(self):
        from hypothesis import given, settings, strategies as st
        from repro.alphabet import DEFAULT_ALPHABET

        @settings(max_examples=100, deadline=None)
        @given(st.text(alphabet="".join(DEFAULT_ALPHABET.chars()),
                       max_size=12))
        def run(text):
            assert self._roundtrip_literal(text) == text

        run()


class TestFreshNameCollision:
    def test_declared_encoding_names_stay_distinct(self):
        """A script may declare the very names the diseq desugaring
        would mint (_dp1, _dc2, ...); conversion must not fuse them
        (found by `repro fuzz`: roundtripped problems flipped
        sat -> unsat when fresh names collided with declared ones)."""
        text = """
        (set-logic QF_SLIA)
        (declare-fun _dp1 () String)
        (declare-fun _dc2 () String)
        (declare-fun _dc3 () String)
        (assert (= _dp1 "a"))
        (assert (= _dc2 "b"))
        (assert (= _dc3 "c"))
        (assert (not (= _dc2 _dc3)))
        (check-sat)
        """
        script = load_problem(text)
        result = TrauSolver().solve(script.problem, timeout=30)
        assert result.status == "sat"
        model = result.model
        assert (model["_dp1"], model["_dc2"], model["_dc3"]) \
            == ("a", "b", "c")
