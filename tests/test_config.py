"""Tests for configuration, deadlines, refinement schedules, names."""

import time

from repro.config import Deadline, DEFAULT_CONFIG, SolverConfig
from repro.core.names import NameFactory


class TestDeadline:
    def test_unbounded_never_expires(self):
        d = Deadline.unbounded()
        assert not d.expired()
        assert d.remaining() is None

    def test_zero_budget_expires_immediately(self):
        d = Deadline(0.0)
        assert d.expired()
        assert d.remaining() == 0.0

    def test_positive_budget(self):
        d = Deadline(30.0)
        assert not d.expired()
        assert 0 < d.remaining() <= 30.0

    def test_none_is_unbounded(self):
        assert not Deadline(None).expired()


class TestSchedule:
    def test_paper_initial_point(self):
        steps = DEFAULT_CONFIG.schedule()
        assert steps[0].numeric_m == 5
        assert steps[0].loops == 2

    def test_growth_per_round(self):
        steps = SolverConfig(max_rounds=3).schedule(q0=2)
        assert [s.numeric_m for s in steps] == [5, 10, 20]
        assert [s.loops for s in steps] == [2, 3, 4]
        assert [s.loop_length for s in steps] == [2, 3, 4]

    def test_caps_respected(self):
        config = SolverConfig(max_rounds=6, max_numeric_m=12,
                              max_loops=3, max_loop_length=4)
        steps = config.schedule(q0=2)
        assert max(s.numeric_m for s in steps) <= 12
        assert max(s.loops for s in steps) <= 3
        assert max(s.loop_length for s in steps) <= 4

    def test_q0_floor(self):
        steps = DEFAULT_CONFIG.schedule(q0=4)
        assert steps[0].loop_length == 4


class TestNameFactory:
    def test_freshness(self):
        names = NameFactory()
        seen = {names.fresh("a") for _ in range(100)}
        assert len(seen) == 100

    def test_char_namer_embeds_variable(self):
        names = NameFactory()
        namer = names.char_namer("myvar")
        name = namer()
        assert "myvar" in name
        assert names.is_internal(name)

    def test_user_names_are_not_internal(self):
        names = NameFactory()
        assert not names.is_internal("x")
        assert not names.is_internal("sum2")
