"""Tests for interval propagation with branch hulls."""

from math import inf

from repro.logic import conj, disj, eq, ge, implies, le, var
from repro.logic.intervals import propagate_intervals, range_of


class TestAtomPropagation:
    def test_direct_bounds(self):
        state = propagate_intervals(conj(ge(var("x"), 2), le(var("x"), 7)))
        assert state.get("x") == (2, 7)
        assert state.feasible

    def test_chained_equalities(self):
        f = conj(eq(var("x"), 4), eq(var("y"), var("x") + 3),
                 eq(var("z"), var("y") * 2))
        state = propagate_intervals(f)
        assert state.get("y") == (7, 7)
        assert state.get("z") == (14, 14)

    def test_sum_bound(self):
        f = conj(ge(var("a"), 0), ge(var("b"), 0),
                 le(var("a") + var("b"), 5))
        state = propagate_intervals(f)
        assert state.upper("a") == 5
        assert state.upper("b") == 5

    def test_infeasible(self):
        state = propagate_intervals(conj(ge(var("x"), 3), le(var("x"), 2)))
        assert not state.feasible

    def test_unbounded_stays_unbounded(self):
        state = propagate_intervals(ge(var("x"), 0))
        assert state.get("x") == (0, inf)


class TestBranchHull:
    def test_hull_of_two_branches(self):
        f = conj(ge(var("x"), 0),
                 disj(conj(ge(var("x"), 1), le(var("x"), 2)),
                      conj(ge(var("x"), 5), le(var("x"), 6))))
        state = propagate_intervals(f)
        assert state.get("x") == (1, 6)

    def test_infeasible_branch_dropped(self):
        f = conj(le(var("n"), 9),
                 implies(ge(var("n"), 10), ge(var("L"), 2)),
                 implies(le(var("n"), 9), le(var("L"), 1)),
                 ge(var("L"), 0))
        state = propagate_intervals(f)
        assert state.upper("L") == 1

    def test_implication_ladder(self):
        parts = [ge(var("n"), 0), le(var("n"), 12345), ge(var("L"), 0)]
        for digits in range(1, 10):
            parts.append(implies(le(var("n"), 10 ** digits - 1),
                                 le(var("L"), digits)))
        state = propagate_intervals(conj(*parts))
        assert state.upper("L") == 5

    def test_all_branches_infeasible_is_infeasible(self):
        f = conj(le(var("x"), 0),
                 disj(ge(var("x"), 1), ge(var("x"), 2)))
        state = propagate_intervals(f)
        assert not state.feasible

    def test_opaque_branch_is_conservative(self):
        # A branch we cannot analyze must not constrain anything.
        inner = disj(conj(le(var("x"), 1), disj(le(var("y"), 0),
                                                ge(var("y"), 5))),
                     le(var("x"), 3))
        state = propagate_intervals(conj(ge(var("x"), 0), inner))
        assert state.upper("x") >= 3


class TestRangeOf:
    def test_range_arithmetic(self):
        bounds = {"x": (1, 3), "y": (-2, 2)}
        expr = var("x") * 2 - var("y") + 1
        assert range_of(expr, bounds) == (1, 9)

    def test_unbounded_component(self):
        bounds = {"x": (0, inf)}
        lo, hi = range_of(var("x") + 1, bounds)
        assert lo == 1 and hi == inf
