"""Tests for the over-approximation phase (Section 4)."""

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.logic import conj, eq, ge, le, var
from repro.core.overapprox import (
    derived_affix_constraints, length_abstraction, overapproximate,
    tonum_relaxation,
)
from repro.smt import solve_formula
from repro.strings import ProblemBuilder, ToNum, StrVar, str_len


def oa(builder):
    return overapproximate(builder.problem, A)


class TestUnsatDetection:
    def test_membership_emptiness(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]+")
        b.member(x, "[a-z]+")
        assert oa(b).status == "unsat"

    def test_length_conflict_via_equation(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, y), ("abc",))
        b.require_int(ge(str_len(x), 4))
        assert oa(b).status == "unsat"

    def test_regex_length_set_conflict(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "(ab){2}|(ab){4}")    # lengths {4, 8}
        b.require_int(eq(str_len(x), 6))
        assert oa(b).status == "unsat"

    def test_prefix_clash_through_equations(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("a", b.str_var("r1")))
        b.equal((x,), ("b", b.str_var("r2")))
        assert oa(b).status == "unsat"

    def test_tonum_value_too_large_for_length(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(ge(var(n), 1000))
        b.require_int(le(str_len(x), 3))
        assert oa(b).status == "unsat"

    def test_tonum_below_minus_one(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(le(var(n), -2))
        assert oa(b).status == "unsat"


class TestInconclusive:
    def test_sat_instances_pass_through(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]+")
        b.require_int(eq(str_len(x), 3))
        assert oa(b).status == "inconclusive"

    def test_overapproximation_never_claims_sat(self):
        # A formula that is UNSAT for non-length reasons must not be
        # declared UNSAT by the relaxation (soundness direction).
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("ab",))
        b.diseq((x,), ("ab",))
        assert oa(b).status == "inconclusive"


class TestAffixDerivation:
    def test_prefix_and_suffix_found(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.equal((x,), ("ab", b.str_var("m"), "cd"))
        derived = derived_affix_constraints(b.problem, A)
        names = [name for name, _ in derived]
        assert names == ["x", "x"]
        prefix_nfa = derived[0][1]
        assert prefix_nfa.accepts(A.encode_word("abzz"))
        assert not prefix_nfa.accepts(A.encode_word("zzab"))


class TestRelaxationSoundness:
    def test_tonum_relaxation_admits_real_pairs(self):
        constraint = ToNum("n", StrVar("x"))
        formula = tonum_relaxation(constraint)
        for text in ("0", "7", "00042", "999999", "abc", ""):
            from repro.strings.eval import to_num_value
            pin = conj(formula,
                       eq(var("n"), to_num_value(text)),
                       eq(str_len("x"), len(text)))
            assert solve_formula(pin).status == "sat", text

    def test_length_abstraction_admits_solutions(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.equal((x, "sep", y), (b.str_var("z"),))
        b.member(x, "[ab]{2}")
        formula = length_abstraction(b.problem, A)
        pinned = conj(formula, eq(str_len(x), 2), eq(str_len(y), 4),
                      eq(str_len("z"), 9))
        assert solve_formula(pinned).status == "sat"
