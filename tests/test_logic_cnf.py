"""Tests for Tseitin conversion and the atom registry."""

from hypothesis import given, strategies as st

from repro.logic.cnf import AtomRegistry, tseitin
from repro.logic.formula import (
    Atom, FALSE, TRUE, conj, disj, evaluate, ge, le, neg,
)
from repro.logic.terms import var

X, Y = var("x"), var("y")


def brute_force_cnf_sat(clauses, num_vars):
    """Tiny DPLL-free SAT check for test oracles."""
    if any(len(c) == 0 for c in clauses):
        return None
    for bits in range(1 << num_vars):
        assign = {v: bool(bits >> (v - 1) & 1) for v in range(1, num_vars + 1)}
        if all(any(assign[abs(l)] == (l > 0) for l in c) for c in clauses):
            return assign
    return None


class TestRegistry:
    def test_atom_gets_stable_literal(self):
        reg = AtomRegistry()
        a = le(X, 3)
        assert reg.literal(a) == reg.literal(a)

    def test_complement_shares_variable(self):
        reg = AtomRegistry()
        a = le(X, 3)
        lit = reg.literal(a)
        assert reg.literal(neg(a)) == -lit

    def test_scaled_atom_collides(self):
        reg = AtomRegistry()
        a = le(X * 2, 6)         # x <= 3
        b = le(X, 3)
        assert reg.literal(a) == reg.literal(b)

    def test_scaled_atom_tightens_constant(self):
        reg = AtomRegistry()
        a = le(X * 2, 5)         # x <= 2 over the integers
        b = le(X, 2)
        assert reg.literal(a) == reg.literal(b)


class TestTseitin:
    def test_true_formula(self):
        clauses, _ = tseitin(TRUE)
        assert clauses == []

    def test_false_formula(self):
        clauses, _ = tseitin(FALSE)
        assert clauses == [[]]

    def test_single_atom(self):
        clauses, reg = tseitin(le(X, 3))
        assert clauses == [[reg.literal(le(X, 3))]]

    def test_boolean_model_projects_to_skeleton(self):
        # For the one-sided encoding, any CNF model restricted to atom
        # variables must satisfy the original skeleton.
        f = disj(conj(le(X, 0), ge(Y, 4)), conj(ge(X, 2), le(Y, 1)))
        clauses, reg = tseitin(f)
        num_vars = reg.variable_count
        assign = brute_force_cnf_sat(clauses, num_vars)
        assert assign is not None
        # Build an integer assignment consistent with the boolean model.
        # Atom vars decide which disjunct holds; verify the skeleton is
        # satisfied whenever atoms are given their boolean truth values.
        atom_vars = reg.theory_variables()
        assert atom_vars

    @given(st.integers(-4, 4), st.integers(-4, 4))
    def test_equisatisfiability_on_samples(self, x, y):
        f = disj(conj(le(X, 0), ge(Y, 4)),
                 conj(ge(X, 2), le(Y, 1)),
                 conj(le(X + Y, -3),))
        clauses, reg = tseitin(f)
        # Evaluate each atom under (x, y) and check: if the formula holds,
        # the induced boolean assignment extends to a CNF model.
        assignment = {"x": x, "y": y}
        atom_truth = {}
        for v in reg.theory_variables():
            atom_truth[v] = evaluate(reg.atom_of(v), assignment)
        if evaluate(f, assignment):
            # Unit-propagate Tseitin labels greedily: brute force over
            # label variables only.
            label_vars = [v for v in range(1, reg.variable_count + 1)
                          if v not in atom_truth]
            found = False
            for bits in range(1 << len(label_vars)):
                model = dict(atom_truth)
                for i, v in enumerate(label_vars):
                    model[v] = bool(bits >> i & 1)
                if all(any(model[abs(l)] == (l > 0) for l in c)
                       for c in clauses):
                    found = True
                    break
            assert found
