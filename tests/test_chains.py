"""Tests for chain detection and breaking (the chain-free fragment)."""

from repro.core.chains import (
    break_chains, find_chain, find_orientation, is_chain_free,
)
from repro.core.names import NameFactory
from repro.strings import StrVar, StringProblem, WordEquation


def equation(lhs, rhs):
    return WordEquation(tuple(lhs), tuple(rhs))


X, Y, Z = StrVar("x"), StrVar("y"), StrVar("z")


class TestDetection:
    def test_self_loop_is_a_chain(self):
        # The paper's "0"x = x"0" example: x on both sides, both
        # orientations close a cycle.
        problem = StringProblem([equation(["0", X], [X, "0"])])
        assert not is_chain_free(problem)
        assert "x" in find_chain(problem)

    def test_mutual_definition_is_a_chain(self):
        problem = StringProblem([
            equation([X], ["a", Y]),
            equation([Y], [X, "b"]),
            equation([X], [Y]),
        ])
        assert not is_chain_free(problem)

    def test_two_equations_orientable(self):
        # x = a y and y = x b: orient both to define from the right?
        # Defining x by y (x->y) and x by y again through the second
        # equation oriented as "x b defined by y"... there is an acyclic
        # orientation: eq1 defines x from y, eq2 defines (rhs) from (lhs)
        # i.e. edges y->x -- that closes x->y->x.  Orient eq2 the other
        # way: lhs y defined by rhs x gives y->x again.  So this IS a
        # chain system.
        problem = StringProblem([
            equation([X], ["a", Y]),
            equation([Y], [X, "b"]),
        ])
        assert not is_chain_free(problem)

    def test_straight_line_system_is_chain_free(self):
        problem = StringProblem([
            equation([X], [Y, Z]),
            equation([Y], ["ab"]),
            equation([Z], ["cd"]),
        ])
        assert is_chain_free(problem)
        orientation = find_orientation(problem)
        assert orientation is not None

    def test_literal_only_equations_chain_free(self):
        problem = StringProblem([equation(["ab"], ["ab"])])
        assert is_chain_free(problem)

    def test_shared_variable_without_cycle(self):
        problem = StringProblem([
            equation([X], [Y, "a"]),
            equation([Z], [Y, "b"]),
        ])
        assert is_chain_free(problem)


class TestBreaking:
    def test_breaking_self_loop(self):
        problem = StringProblem([equation(["0", X], [X, "0"])])
        broken = break_chains(problem, NameFactory())
        assert is_chain_free(broken)
        assert len(broken) == 1

    def test_breaking_mutual_cycle(self):
        problem = StringProblem([
            equation([X], ["a", Y]),
            equation([Y], [X, "b"]),
        ])
        broken = break_chains(problem, NameFactory())
        assert is_chain_free(broken)
        assert len(broken) == 2

    def test_breaking_preserves_satisfiability(self):
        # Breaking only relaxes: the broken system of a SAT problem stays
        # SAT (the fresh variable can copy the original's value).
        problem = StringProblem([equation(["0", X], [X, "0"])])
        broken = break_chains(problem, NameFactory())
        from repro.core.solver import TrauSolver
        result = TrauSolver().solve(broken, timeout=30)
        assert result.status == "sat"
