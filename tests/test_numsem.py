"""Unit tests for real-parser conversion semantics (NumSemantics)."""

import pytest

from repro.errors import SolverError, UnsupportedConstraint
from repro.strings.eval import to_num_value
from repro.strings.numsem import (
    PG_INT, SCI, STRTOL, NumSemantics, semantics_named, standard_semantics,
)

INT64_MAX = 2 ** 63 - 1
INT64_MIN = -2 ** 63


class TestBaseSemantics:
    """Satellite: the paper's toNum must match SMT-LIB str.to_int."""

    @pytest.mark.parametrize("text,expected", [
        ("", -1),            # empty string is not a numeral
        ("0", 0),
        ("7", 7),
        ("007", 7),          # leading zeros are plain digits
        ("42", 42),
        ("+5", -1),          # SMT-LIB: sign characters are not digits
        ("-5", -1),
        (" 5", -1),          # no whitespace skipping
        ("5 ", -1),
        ("5a", -1),          # trailing garbage
        ("a5", -1),
        ("1e2", -1),         # no exponent notation
    ])
    def test_to_num_value(self, text, expected):
        assert to_num_value(text) == expected

    def test_base_object_matches_to_num_value(self):
        base = NumSemantics("base")
        for text in ["", "0", "007", "+5", "-5", " 5", "5x", "123"]:
            assert base.convert(text) == to_num_value(text)


class TestStrtol:
    def test_whitespace_and_sign(self):
        assert STRTOL.convert("  +007") == 7
        assert STRTOL.convert(" -42") == -42
        assert STRTOL.convert("-0") == 0

    def test_rejects(self):
        assert STRTOL.convert("") == -1
        assert STRTOL.convert("   ") == -1      # whitespace only
        assert STRTOL.convert("+") == -1        # sign only
        assert STRTOL.convert(" + 5") == -1     # space after sign
        assert STRTOL.convert("5x") == -1

    def test_saturates_at_int64(self):
        assert STRTOL.convert("9" * 30) == INT64_MAX
        assert STRTOL.convert("-" + "9" * 30) == INT64_MIN
        assert STRTOL.convert(str(INT64_MAX)) == INT64_MAX
        assert STRTOL.convert(str(INT64_MIN)) == INT64_MIN


class TestPgInt:
    def test_sign_no_whitespace(self):
        assert PG_INT.convert("-5") == -5
        assert PG_INT.convert("+5") == 5
        assert PG_INT.convert(" 5") == -1

    def test_overflow_is_error(self):
        assert PG_INT.convert("9" * 30) == -1
        assert PG_INT.convert(str(INT64_MAX)) == INT64_MAX
        assert PG_INT.convert(str(INT64_MIN)) == INT64_MIN
        assert PG_INT.convert(str(INT64_MAX + 1)) == -1


class TestRadix:
    def test_hex(self):
        hexa = semantics_named("radix16")
        assert hexa.convert("FF") == 255
        assert hexa.convert("ff") == 255
        assert hexa.convert("-10") == -16
        assert hexa.convert("G") == -1

    def test_binary(self):
        assert semantics_named("radix2").convert("101") == 5
        assert semantics_named("radix2").convert("2") == -1

    def test_bad_names(self):
        with pytest.raises(UnsupportedConstraint):
            semantics_named("radix37")
        with pytest.raises(UnsupportedConstraint):
            semantics_named("nonsense")


class TestSci:
    def test_exponent(self):
        assert SCI.convert("5e2") == 500
        assert SCI.convert("-5E2") == -500
        assert SCI.convert("5e0") == 5
        assert SCI.convert("12e1") == 120

    def test_exponent_rejects(self):
        assert SCI.convert("5e") == -1       # dangling marker
        assert SCI.convert("e5") == -1       # no mantissa
        assert SCI.convert("5e+2") == -1     # signed exponents unsupported

    def test_huge_exponent(self):
        assert SCI.convert("0e999") == 0     # zero shortcut always exact
        assert SCI.convert("5e999") == SCI.error_value


class TestRegistry:
    def test_standard_set_has_enough_variants(self):
        sems = standard_semantics()
        assert len(sems) >= 3
        assert len({s.name for s in sems}) == len(sems)

    def test_named_lookup_roundtrip(self):
        for sem in standard_semantics():
            assert semantics_named(sem.name) == sem

    def test_validation(self):
        with pytest.raises(SolverError):
            NumSemantics("bad", radix=1)
        with pytest.raises(SolverError):
            NumSemantics("bad", overflow="wrap")
        with pytest.raises(SolverError):
            NumSemantics("bad", radix=16, exponent=True)

    def test_digit_segments_are_contiguous(self):
        from repro.alphabet import DEFAULT_ALPHABET
        for sem in standard_semantics():
            for lo, hi, offset in sem.digit_segments(DEFAULT_ALPHABET):
                for code in range(lo, hi + 1):
                    ch = DEFAULT_ALPHABET.char(code)
                    assert sem.digit_value(ch) == code + offset
