"""Smoke tests for the table-regeneration CLIs (tiny scales)."""

import io
import sys

from repro.bench import ablation, table1, table2, table3
from repro.bench.export import main as export_main


def capture(fn, *args, **kwargs):
    out = io.StringIO()
    stdout = sys.stdout
    sys.stdout = out
    try:
        fn(*args, **kwargs)
    finally:
        sys.stdout = stdout
    return out.getvalue()


class TestTableMains:
    def test_table1_main(self):
        text = capture(table1.main, ["--count", "2", "--timeout", "4"])
        assert "Table 1" in text
        assert "PyEx" in text and "cvc4term" in text
        assert "Total" in text

    def test_table2_main(self):
        text = capture(table2.main, ["--count", "2", "--timeout", "4"])
        assert "Table 2" in text
        assert "PythonLib" in text and "JavaScript" in text

    def test_table3_main(self):
        text = capture(table3.main, ["--timeout", "30", "--max-loops", "3"])
        assert "Table 3" in text
        assert "luhn-02" in text and "luhn-03" in text
        assert "SAT(" in text

    def test_export_main(self, tmp_path):
        text = capture(export_main, ["--out", str(tmp_path),
                                     "--count", "1", "--luhn-max", "2"])
        assert "wrote" in text
        assert any(tmp_path.rglob("*.smt2"))


class TestSuiteBuilders:
    def test_table1_suites_have_five_families(self):
        suites = table1.suites_for(2)
        assert [name for name, _ in suites] == [
            "PyEx", "LeetCode", "StringFuzz", "cvc4pred", "cvc4term"]
        assert all(len(instances) >= 2 for _, instances in suites)

    def test_table2_suites_have_three_families(self):
        suites = table2.suites_for(3)
        assert [name for name, _ in suites] == [
            "Leetcode", "PythonLib", "JavaScript"]

    def test_table3_instances_are_sat_labeled(self):
        instances = table3.instances_for(4)
        assert [i.expected for i in instances] == ["sat"] * 3
