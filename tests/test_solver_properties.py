"""Property-based end-to-end tests: decode/validate round trips.

Random small constraint systems constructed *witness-first*: a concrete
assignment is drawn, constraints true of it are synthesized, and the
solver must find some (possibly different) model that validates.
"""

from hypothesis import given, settings, strategies as st

from repro.core import TrauSolver
from repro.logic import eq, ge, le, var
from repro.strings import ProblemBuilder, check_model, str_len
from repro.strings.eval import to_num_value


@st.composite
def witness_problems(draw):
    b = ProblemBuilder()
    words = {}
    for i in range(draw(st.integers(1, 3))):
        name = "w%d" % i
        value = draw(st.text(alphabet="ab01", max_size=4))
        words[name] = value
        v = b.str_var(name)
        kind = draw(st.sampled_from(["len", "member", "eqlit", "concat"]))
        if kind == "len":
            b.require_int(eq(str_len(v), len(value)))
        elif kind == "member":
            b.member(v, "[ab01]*")
            b.require_int(le(str_len(v), len(value)))
        elif kind == "eqlit":
            b.equal((v,), (value,))
        else:
            cut = draw(st.integers(0, len(value)))
            left, right = b.str_var(name + "l"), b.str_var(name + "r")
            b.equal((v,), (left, right))
            b.require_int(eq(str_len(left), cut))
            b.require_int(eq(str_len(v), len(value)))
    # A conversion on a digits-only witness, sometimes.
    if draw(st.booleans()):
        digits = draw(st.text(alphabet="0123456789", min_size=1,
                              max_size=4))
        d = b.str_var("d")
        b.equal((d,), (digits,))
        n = b.to_num(d, "n")
        b.require_int(eq(var("n"), to_num_value(digits)))
    return b.problem


class TestWitnessProblems:
    @settings(max_examples=25, deadline=None)
    @given(witness_problems())
    def test_solver_finds_validating_model(self, problem):
        result = TrauSolver().solve(problem, timeout=30)
        assert result.status == "sat"
        assert check_model(problem, result.model)


class TestConversionBoundaries:
    def test_eighteen_digit_value(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        target = 10 ** 17 + 7
        b.require_int(eq(var(n), target))
        b.require_int(eq(str_len(x), 18))
        result = TrauSolver().solve(b, timeout=60)
        assert result.status == "sat"
        assert int(result.model["x"]) == target

    def test_value_needs_more_digits_than_length(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(ge(var(n), 100))
        b.require_int(le(str_len(x), 2))
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "unsat"

    def test_zero_with_many_leading_zeros(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x)
        b.require_int(eq(var(n), 0))
        b.require_int(eq(str_len(x), 12))
        result = TrauSolver().solve(b, timeout=30)
        assert result.status == "sat"
        assert result.model["x"] == "0" * 12
