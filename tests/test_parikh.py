"""Tests for the Parikh-image linear encoding (Lemma 2.1)."""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.automata.parikh import parikh_formula, parikh_image_of_word
from repro.automata.regex import regex_to_nfa
from repro.logic import FALSE, conj, eq, var
from repro.smt import solve_formula


def count_name(sym):
    return "#c%d" % sym


def image_is_feasible(nfa, image, symbols):
    formula = parikh_formula(nfa, count_name, "pk")
    pins = [eq(var(count_name(sym)), image.get(sym, 0)) for sym in symbols]
    return solve_formula(conj(formula, *pins)).status == "sat"


class TestExactness:
    def test_empty_language_is_false(self):
        from repro.automata.nfa import NFA
        assert parikh_formula(NFA.empty(), count_name, "pk") is FALSE

    def test_epsilon_language(self):
        nfa = regex_to_nfa("(ab)*")
        # The zero image (the empty word) must be feasible.
        assert image_is_feasible(nfa, {}, A.encode_word("ab"))

    def test_matches_enumeration_small(self):
        nfa = regex_to_nfa("(ab|ba)*c?")
        symbols = A.encode_word("abc")
        seen = {tuple(sorted(parikh_image_of_word(w).items()))
                for w in nfa.enumerate_words(6)}
        for na in range(3):
            for nb in range(3):
                for nc in range(2):
                    image = {}
                    if na:
                        image[A.code("a")] = na
                    if nb:
                        image[A.code("b")] = nb
                    if nc:
                        image[A.code("c")] = nc
                    key = tuple(sorted(image.items()))
                    expected = key in seen
                    # Enumeration to length 6 covers counts 2+2+1.
                    assert image_is_feasible(nfa, image, symbols) == expected

    def test_multiple_finals_are_merged(self):
        nfa = regex_to_nfa("a|bb")
        symbols = A.encode_word("ab")
        assert image_is_feasible(nfa, {A.code("a"): 1}, symbols)
        assert image_is_feasible(nfa, {A.code("b"): 2}, symbols)
        assert not image_is_feasible(
            nfa, {A.code("a"): 1, A.code("b"): 2}, symbols)

    def test_floating_cycle_rejected(self):
        # Automaton: initial -a-> final, plus an unreachable-from-the-run
        # cycle c at a state off the accepting path must not contribute.
        from repro.automata.nfa import NFA
        nfa = NFA(3, [(0, 1, 1), (2, 2, 2)], 0, [1])
        symbols = [1, 2]
        assert image_is_feasible(nfa, {1: 1}, symbols)
        assert not image_is_feasible(nfa, {1: 1, 2: 3}, symbols)

    def test_connected_cycle_counts(self):
        # a (bc)* d: b and c counts locked together.
        nfa = regex_to_nfa("a(bc)*d")
        symbols = A.encode_word("abcd")
        good = {A.code("a"): 1, A.code("d"): 1,
                A.code("b"): 2, A.code("c"): 2}
        bad = {A.code("a"): 1, A.code("d"): 1,
               A.code("b"): 2, A.code("c"): 1}
        assert image_is_feasible(nfa, good, symbols)
        assert not image_is_feasible(nfa, bad, symbols)


class TestAgainstWords:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["(ab)*", "a*b", "(a|b)(a|b)", "a(b|c)*",
                            "(abc)+|b*"]),
           st.text(alphabet="abc", max_size=5))
    def test_accepted_words_have_feasible_images(self, pattern, text):
        nfa = regex_to_nfa(pattern)
        codes = A.encode_word(text)
        if nfa.accepts(codes):
            image = parikh_image_of_word(codes)
            assert image_is_feasible(nfa, image, A.encode_word("abc"))
