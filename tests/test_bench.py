"""Tests for the benchmark harness (classification and table assembly)."""

from repro.bench.runner import (
    BenchmarkRunner, INCORRECT, SAT, TIMEOUT, UNSAT, default_solvers,
)
from repro.bench.tables import format_per_instance, format_table, summarize
from repro.core.solver import SolveResult
from repro.logic import eq
from repro.strings import ProblemBuilder, str_len
from repro.symbex.common import Instance


def sat_instance():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]{2}")
    return Instance("t/sat", b.problem, "sat")


def unsat_instance():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]{2}")
    b.require_int(eq(str_len(x), 9))
    return Instance("t/unsat", b.problem, "unsat")


class _FixedSolver:
    """Test double returning a canned result."""

    def __init__(self, result):
        self.result = result

    def solve(self, problem, timeout=None):
        return self.result


class _CrashingSolver:
    def solve(self, problem, timeout=None):
        raise RuntimeError("boom")


class SleepSolver:
    """Wedges forever — only ever run inside a supervised worker."""

    def solve(self, problem, timeout=None):
        import time
        time.sleep(3600)


class CrashSolver:
    """Takes the whole worker process down, like a segfault would."""

    def solve(self, problem, timeout=None):
        import os
        os._exit(3)


class TestClassification:
    def test_sat_validated(self):
        runner = BenchmarkRunner(timeout=10)
        outcome = runner.run_instance(sat_instance(), "pfa")
        assert outcome.classification == SAT

    def test_unsat(self):
        runner = BenchmarkRunner(timeout=10)
        outcome = runner.run_instance(unsat_instance(), "pfa")
        assert outcome.classification == UNSAT

    def test_invalid_model_is_incorrect(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(
                SolveResult("sat", model={"x": "zz"}))})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == INCORRECT

    def test_wrong_unsat_is_incorrect(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(SolveResult("unsat"))})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == INCORRECT

    def test_crash_is_error(self):
        runner = BenchmarkRunner(solvers={"fake": _CrashingSolver()})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == "ERROR"

    def test_slow_unknown_is_timeout(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(SolveResult("unknown"))},
            timeout=0.0)
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == TIMEOUT


class TestTables:
    def test_summarize_counts(self):
        runner = BenchmarkRunner(timeout=10)
        outcomes = runner.run_suite([sat_instance(), unsat_instance()],
                                    ["pfa"])
        summary = summarize(outcomes)
        assert summary["pfa"]["SAT"] == 1
        assert summary["pfa"]["UNSAT"] == 1

    def test_format_table_has_total_block(self):
        summary = {"pfa": {"SAT": 1, "UNSAT": 2, "UNKNOWN": 0,
                           "TIMEOUT": 0, "ERROR": 0, "INCORRECT": 0}}
        text = format_table("T", [("a", summary), ("b", summary)], ["pfa"])
        assert "Total" in text
        assert text.count("SAT") >= 6   # per-suite + total rows

    def test_format_per_instance(self):
        runner = BenchmarkRunner(timeout=10)
        run = runner.run_instance(sat_instance(), "pfa")
        text = format_per_instance("T3", [("i1", {"pfa": run})], ["pfa"])
        assert "SAT(" in text

    def test_default_lineup(self):
        solvers = default_solvers()
        assert set(solvers) == {"pfa", "splitting", "enumerative"}


class TestSupervisedRunner:
    """The jobs>1 path: the grid on the shared supervised worker pool."""

    def test_parallel_matches_sequential(self):
        instances = [sat_instance(), unsat_instance()]
        sequential = BenchmarkRunner(timeout=10).run_suite(
            instances, ["pfa"])
        parallel = BenchmarkRunner(timeout=10, jobs=2).run_suite(
            instances, ["pfa"])
        assert ([o.classification for o in sequential["pfa"]]
                == [o.classification for o in parallel["pfa"]])
        assert all(o.retries == 0 for o in parallel["pfa"])

    def test_hang_is_hard_killed_and_retried_once(self):
        # jobs>1 and several tasks, so the supervised pool (not the
        # in-process path) runs the wedging solver.
        runner = BenchmarkRunner(
            solvers={"sleepy": SleepSolver(), "pfa": default_solvers()["pfa"]},
            timeout=0.4, grace=0.3, jobs=2)
        outcomes = runner.run_suite([sat_instance()], ["sleepy", "pfa"])
        outcome = outcomes["sleepy"][0]
        assert outcome.classification == TIMEOUT
        assert outcome.answer == "hard-killed"
        assert outcome.retries == 1
        assert outcome.worker_exits == ["hard-killed", "hard-killed"]
        assert outcome.as_dict()["worker_exits"] == outcome.worker_exits
        # The healthy solver on the same pool is unaffected.
        assert outcomes["pfa"][0].classification == SAT

    def test_crash_is_error_with_exit_code(self):
        runner = BenchmarkRunner(
            solvers={"crashy": CrashSolver(), "pfa": default_solvers()["pfa"]},
            timeout=10, jobs=2)
        outcomes = runner.run_suite([sat_instance()], ["crashy", "pfa"])
        outcome = outcomes["crashy"][0]
        assert outcome.classification == "ERROR"
        assert "exit code 3" in outcome.answer
        assert outcome.retries == 1
        assert outcome.worker_exits == [3, 3]
        assert outcomes["pfa"][0].classification == SAT
