"""Tests for the benchmark harness (classification and table assembly)."""

from repro.bench.runner import (
    BenchmarkRunner, INCORRECT, SAT, TIMEOUT, UNSAT, default_solvers,
)
from repro.bench.tables import format_per_instance, format_table, summarize
from repro.core.solver import SolveResult
from repro.logic import eq
from repro.strings import ProblemBuilder, str_len
from repro.symbex.common import Instance


def sat_instance():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]{2}")
    return Instance("t/sat", b.problem, "sat")


def unsat_instance():
    b = ProblemBuilder()
    x = b.str_var("x")
    b.member(x, "[ab]{2}")
    b.require_int(eq(str_len(x), 9))
    return Instance("t/unsat", b.problem, "unsat")


class _FixedSolver:
    """Test double returning a canned result."""

    def __init__(self, result):
        self.result = result

    def solve(self, problem, timeout=None):
        return self.result


class _CrashingSolver:
    def solve(self, problem, timeout=None):
        raise RuntimeError("boom")


class TestClassification:
    def test_sat_validated(self):
        runner = BenchmarkRunner(timeout=10)
        outcome = runner.run_instance(sat_instance(), "pfa")
        assert outcome.classification == SAT

    def test_unsat(self):
        runner = BenchmarkRunner(timeout=10)
        outcome = runner.run_instance(unsat_instance(), "pfa")
        assert outcome.classification == UNSAT

    def test_invalid_model_is_incorrect(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(
                SolveResult("sat", model={"x": "zz"}))})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == INCORRECT

    def test_wrong_unsat_is_incorrect(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(SolveResult("unsat"))})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == INCORRECT

    def test_crash_is_error(self):
        runner = BenchmarkRunner(solvers={"fake": _CrashingSolver()})
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == "ERROR"

    def test_slow_unknown_is_timeout(self):
        runner = BenchmarkRunner(
            solvers={"fake": _FixedSolver(SolveResult("unknown"))},
            timeout=0.0)
        outcome = runner.run_instance(sat_instance(), "fake")
        assert outcome.classification == TIMEOUT


class TestTables:
    def test_summarize_counts(self):
        runner = BenchmarkRunner(timeout=10)
        outcomes = runner.run_suite([sat_instance(), unsat_instance()],
                                    ["pfa"])
        summary = summarize(outcomes)
        assert summary["pfa"]["SAT"] == 1
        assert summary["pfa"]["UNSAT"] == 1

    def test_format_table_has_total_block(self):
        summary = {"pfa": {"SAT": 1, "UNSAT": 2, "UNKNOWN": 0,
                           "TIMEOUT": 0, "ERROR": 0, "INCORRECT": 0}}
        text = format_table("T", [("a", summary), ("b", summary)], ["pfa"])
        assert "Total" in text
        assert text.count("SAT") >= 6   # per-suite + total rows

    def test_format_per_instance(self):
        runner = BenchmarkRunner(timeout=10)
        run = runner.run_instance(sat_instance(), "pfa")
        text = format_per_instance("T3", [("i1", {"pfa": run})], ["pfa"])
        assert "SAT(" in text

    def test_default_lineup(self):
        solvers = default_solvers()
        assert set(solvers) == {"pfa", "splitting", "enumerative"}
