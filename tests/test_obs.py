"""Tests for the observability subsystem (repro.obs)."""

import io
import json
import threading

import pytest

from repro.config import Deadline
from repro.core.solver import TrauSolver
from repro.logic import eq, ge
from repro.logic.terms import var
from repro.obs import (
    Metrics, NullMetrics, NullTracer, NULL_METRICS, NULL_TRACER, Tracer,
    current_metrics, current_tracer, dump_jsonl, load_jsonl, phase_seconds,
    render_metrics, render_report, render_tree, scope,
)
from repro.strings import ProblemBuilder, str_len


class TestTracerSpans:
    def test_single_span_records_duration(self):
        t = Tracer()
        with t.span("work") as s:
            pass
        assert s.name == "work"
        assert s.duration >= 0.0
        assert t.roots == [s]

    def test_nesting(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                with t.span("leaf"):
                    pass
            with t.span("sibling"):
                pass
        (outer,) = t.roots
        assert [c.name for c in outer.children] == ["inner", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["leaf"]

    def test_walk_preorder_with_depth(self):
        t = Tracer()
        with t.span("a"):
            with t.span("b"):
                pass
            with t.span("c"):
                pass
        assert [(d, s.name) for d, s in t.walk()] == [
            (0, "a"), (1, "b"), (1, "c")]

    def test_attrs_and_events(self):
        t = Tracer()
        with t.span("phase", kind="test") as s:
            s.set(rows=7)
            t.annotate(extra=True)
            t.event("milestone", step=2)
        assert s.attrs == {"kind": "test", "rows": 7, "extra": True}
        assert len(s.events) == 1
        assert s.events[0][0] == "milestone"

    def test_exception_marks_status(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("no")
        assert t.roots[0].status == "error"

    def test_current_returns_active_span(self):
        t = Tracer()
        assert t.current() is None
        with t.span("a") as a:
            assert t.current() is a
        assert t.current() is None


class TestNullTracer:
    def test_span_is_noop_and_shared(self):
        t = NullTracer()
        with t.span("x") as a:
            with t.span("y") as b:
                pass
        assert a is b  # one shared singleton, no allocation per span
        assert not t.enabled
        assert list(t.roots) == []
        # the null span swallows attribute/event writes
        a.set(key="value")
        a.event("ignored")

    def test_null_tracer_does_not_suppress_exceptions(self):
        with pytest.raises(RuntimeError):
            with NULL_TRACER.span("x"):
                raise RuntimeError("must propagate")


class TestMetrics:
    def test_counter_accumulates(self):
        m = Metrics()
        m.add("hits")
        m.add("hits", 4)
        assert m.counters["hits"] == 5

    def test_gauge_overwrites(self):
        m = Metrics()
        m.gauge("depth", 3)
        m.gauge("depth", 1)
        assert m.gauges["depth"] == 1

    def test_histogram_aggregates(self):
        m = Metrics()
        for v in (2, 8, 5):
            m.observe("size", v)
        h = m.histograms["size"]
        assert (h.count, h.total, h.minimum, h.maximum) == (3, 15, 2, 8)
        assert h.mean == 5.0

    def test_flat_expands_histograms(self):
        m = Metrics()
        m.add("c", 2)
        m.gauge("g", 7)
        m.observe("h", 3)
        flat = m.flat()
        assert flat["c"] == 2
        assert flat["g"] == 7
        assert flat["h.count"] == 1
        assert flat["h.sum"] == 3
        assert flat["h.min"] == 3
        assert flat["h.max"] == 3

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.add("c", 1)
        b.add("c", 2)
        b.observe("h", 4)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.histograms["h"].count == 1

    def test_null_metrics_noop(self):
        assert not NULL_METRICS.enabled
        NULL_METRICS.add("x")
        NULL_METRICS.gauge("y", 1)
        NULL_METRICS.observe("z", 2)
        assert NULL_METRICS.flat() == {}
        assert isinstance(NULL_METRICS, NullMetrics)


class TestAmbientScope:
    def test_defaults_are_null(self):
        assert not current_tracer().enabled
        assert not current_metrics().enabled

    def test_scope_installs_and_restores(self):
        t, m = Tracer(), Metrics()
        with scope(t, m) as (st, sm):
            assert st is t and sm is m
            assert current_tracer() is t
            assert current_metrics() is m
        assert not current_tracer().enabled
        assert not current_metrics().enabled

    def test_scope_is_thread_local(self):
        t = Tracer()
        seen = []
        with scope(t, Metrics()):
            thread = threading.Thread(
                target=lambda: seen.append(current_tracer().enabled))
            thread.start()
            thread.join()
        assert seen == [False]  # other threads keep the null default


class TestExport:
    def _sample(self):
        t, m = Tracer(), Metrics()
        with t.span("solve") as root:
            with t.span("overapprox") as s:
                s.set(status="inconclusive")
            with t.span("round", round=1):
                t.event("deadline_expired")
        root.set(status="sat")
        m.add("sat.conflicts", 12)
        m.observe("flatten.lia_vars", 30)
        return t, m

    def test_render_tree_shape(self):
        t, _ = self._sample()
        text = render_tree(t)
        lines = text.splitlines()
        assert "solve" in lines[0]
        assert any("overapprox" in line and "+-" in line for line in lines)
        assert "status=sat" in text

    def test_render_report_includes_metrics(self):
        t, m = self._sample()
        text = render_report(t, m)
        assert "sat.conflicts" in text
        assert "12" in text

    def test_jsonl_round_trip(self):
        t, m = self._sample()
        text = dump_jsonl(t, m)
        for line in text.splitlines():  # every line is valid JSON
            json.loads(line)
        records = load_jsonl(io.StringIO(text))
        spans = [r for r in records if r["type"] == "span"]
        events = [r for r in records if r["type"] == "event"]
        metric_rows = [r for r in records if r["type"] == "metric"]
        assert {s["name"] for s in spans} == {"solve", "overapprox", "round"}
        root = next(s for s in spans if s["name"] == "solve")
        assert root["depth"] == 0
        assert root["attrs"]["status"] == "sat"
        assert any(e["name"] == "deadline_expired" for e in events)
        assert {r["name"] for r in metric_rows} >= {"sat.conflicts"}

    def test_phase_seconds_sums_children(self):
        t, _ = self._sample()
        phases = phase_seconds(t)
        assert set(phases) == {"phase.overapprox_s", "phase.round_s"}
        assert all(v >= 0.0 for v in phases.values())

    def test_render_metrics_empty(self):
        assert render_metrics(Metrics()) == ""


class TestDeadlineCheckpoint:
    def test_not_expired_returns_false(self):
        t = Tracer()
        with t.span("s") as span:
            assert Deadline(60.0).checkpoint(t) is False
        assert span.events == []

    def test_expired_records_event_and_attr(self):
        t = Tracer()
        with t.span("s") as span:
            assert Deadline(0.0).checkpoint(t) is True
        assert span.attrs.get("deadline_expired") is True
        assert any(name == "deadline_expired" for name, _ in span.events)

    def test_works_without_tracer(self):
        assert Deadline(0.0).checkpoint() is True
        assert Deadline(None).checkpoint() is False


def _conversion_problem():
    b = ProblemBuilder()
    x = b.str_var("x")
    n = b.to_num(x)
    b.require_int(eq(var(n), 42))
    b.require_int(ge(str_len(x), 3))
    return b.problem


def _unsat_problem():
    b = ProblemBuilder()
    y = b.str_var("y")
    b.member(y, "[0-9]{2}")
    b.require_int(ge(str_len(y), 3))
    return b.problem


class TestSolverIntegration:
    def test_traced_status_matches_untraced(self):
        for problem in (_conversion_problem(), _unsat_problem()):
            plain = TrauSolver().solve(problem, timeout=30.0)
            tracer, metrics = Tracer(), Metrics()
            with scope(tracer, metrics):
                traced = TrauSolver().solve(problem, timeout=30.0)
            assert traced.status == plain.status

    def test_trace_has_solve_root_and_phases(self):
        tracer, metrics = Tracer(), Metrics()
        with scope(tracer, metrics):
            result = TrauSolver().solve(_conversion_problem(), timeout=30.0)
        assert result.status == "sat"
        (root,) = tracer.roots
        assert root.name == "solve"
        assert root.attrs.get("status") == "sat"
        names = {c.name for c in root.children}
        assert "normalize" in names and "overapprox" in names

    def test_phase_durations_sum_close_to_total(self):
        tracer = Tracer()
        with scope(tracer, Metrics()):
            TrauSolver().solve(_conversion_problem(), timeout=30.0)
        (root,) = tracer.roots
        child_total = sum(c.duration for c in root.children)
        assert child_total <= root.duration
        # acceptance criterion: phases account for >=90% of the total
        assert child_total >= 0.9 * root.duration

    def test_metrics_merged_into_result_stats(self):
        tracer, metrics = Tracer(), Metrics()
        with scope(tracer, metrics):
            result = TrauSolver().solve(_conversion_problem(), timeout=30.0)
        assert result.stats["refinement.rounds"] == result.stats["rounds"]
        assert "smt.calls" in result.stats

    def test_untraced_stats_stay_minimal(self):
        result = TrauSolver().solve(_conversion_problem(), timeout=30.0)
        assert "elapsed_s" in result.stats
        assert result.stats["elapsed_s"] >= 0.0
        assert "started" not in result.stats
        assert not any(key.startswith("sat.") for key in result.stats)

    def test_elapsed_s_present_on_unsat_path(self):
        result = TrauSolver().solve(_unsat_problem(), timeout=30.0)
        assert result.status == "unsat"
        assert "started" not in result.stats
        assert result.stats["elapsed_s"] >= 0.0


class TestCliTrace:
    def test_selfcheck_smoke(self, capsys):
        from repro.cli import selfcheck
        assert selfcheck(["--timeout", "60"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck: ok" in out

    def test_trace_flag_prints_comment_tree(self, tmp_path, capsys):
        from repro.cli import main
        smt = tmp_path / "q.smt2"
        smt.write_text("""
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (= (str.len x) 2))
(check-sat)
""")
        assert main([str(smt), "--trace"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0] == "sat"
        assert any(line.startswith("; ") and "solve" in line
                   for line in lines[1:])

    def test_trace_json_file_round_trips(self, tmp_path, capsys):
        from repro.cli import main
        smt = tmp_path / "q.smt2"
        smt.write_text("""
(set-logic QF_SLIA)
(declare-fun x () String)
(assert (= (str.len x) 2))
(check-sat)
""")
        trace = tmp_path / "trace.jsonl"
        assert main([str(smt), "--trace-json", str(trace)]) == 0
        capsys.readouterr()
        with open(trace) as handle:
            records = load_jsonl(handle)
        assert any(r["type"] == "span" and r["name"] == "solve"
                   for r in records)


class TestBenchStats:
    def test_runner_attaches_stats(self):
        from repro.bench.runner import BenchmarkRunner
        from repro.symbex import pythonlib
        instances = pythonlib.generate(1, seed=0)
        runner = BenchmarkRunner(solvers={"pfa": TrauSolver()}, timeout=30.0,
                                 collect_stats=True)
        outcome = runner.run_instance(instances[0], "pfa")
        assert outcome.stats
        assert "elapsed_s" in outcome.stats
        assert any(key.startswith("phase.") for key in outcome.stats)
        row = outcome.as_dict()
        assert row["stats"] == outcome.stats
        json.dumps(row)  # exported rows must be JSON-able

    def test_runner_without_stats_keeps_rows_lean(self):
        from repro.bench.runner import BenchmarkRunner
        from repro.symbex import pythonlib
        instances = pythonlib.generate(1, seed=0)
        runner = BenchmarkRunner(solvers={"pfa": TrauSolver()}, timeout=30.0)
        outcome = runner.run_instance(instances[0], "pfa")
        assert outcome.stats == {}
        assert "stats" not in outcome.as_dict()

    def test_stats_breakdown_renders(self):
        from repro.bench.runner import RunOutcome
        from repro.bench.tables import (aggregate_stats,
                                        format_stats_breakdown)
        runs = [RunOutcome("i0", "pfa", "SAT", 0.5, "sat",
                           stats={"elapsed_s": 0.5, "rounds": 1}),
                RunOutcome("i1", "pfa", "SAT", 1.5, "sat",
                           stats={"elapsed_s": 1.5, "rounds": 3})]
        means = aggregate_stats(runs)
        assert means == {"elapsed_s": 1.0, "rounds": 2.0}
        text = format_stats_breakdown("T", {"pfa": runs},
                                      ["elapsed_s", "rounds", "missing"])
        assert "pfa" in text
        assert "1.000" in text  # elapsed mean, 3 decimals
        assert "-" in text  # missing key renders as dash
