"""Cross-solver agreement: the paper's validation methodology.

Whenever two solvers both answer on the same instance, they must agree;
every SAT model must validate concretely.  This is how the paper arbitrated
disagreements between Z3-Trau, CVC4 and Z3 (Section 9).
"""

import pytest

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.core import TrauSolver
from repro.strings import check_model
from repro.symbex import cvc4, pyex, pythonlib


def agreement_sweep(instances, timeout=6):
    solvers = {
        "pfa": TrauSolver(),
        "splitting": SplittingSolver(),
        "enumerative": EnumerativeSolver(),
    }
    for instance in instances:
        answers = {}
        for name, solver in solvers.items():
            result = solver.solve(instance.problem, timeout=timeout)
            if result.status == "sat":
                assert check_model(instance.problem, result.model), \
                    "%s model invalid on %s" % (name, instance.name)
            if result.status in ("sat", "unsat"):
                answers[name] = result.status
        statuses = set(answers.values())
        assert len(statuses) <= 1, \
            "disagreement on %s: %r" % (instance.name, answers)
        if instance.expected and statuses:
            assert statuses == {instance.expected}, \
                "all solvers contradict the label on %s" % instance.name


class TestAgreement:
    def test_pyex_suite(self):
        agreement_sweep(pyex.generate(8, seed=11))

    def test_pythonlib_suite(self):
        agreement_sweep(pythonlib.generate(8, seed=12))

    def test_cvc4_suite(self):
        agreement_sweep(cvc4.generate(8, seed=13))


class TestExport:
    def test_export_round_trips(self, tmp_path):
        from repro.bench.export import export_suites
        from repro.smtlib import load_problem
        written, skipped = export_suites(str(tmp_path), count=2, seed=5,
                                         luhn_max=3)
        assert written > 10
        files = list(tmp_path.rglob("*.smt2"))
        assert len(files) == written
        # Every exported file parses back into a problem.
        reparsed = 0
        for path in files[:12]:
            script = load_problem(path.read_text())
            assert len(script.problem) > 0
            assert script.expected in ("sat", "unsat", None)
            reparsed += 1
        assert reparsed > 0
