"""Tests for the benchmark generators: labels must be trustworthy."""

import pytest

from repro.core import TrauSolver
from repro.strings import check_model
from repro.symbex import cvc4, fuzz, javascript, leetcode, pyex, pythonlib
from repro.symbex.luhn import luhn_problem


class TestLuhn:
    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            luhn_problem(1)

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_solution_passes_concrete_luhn(self, k):
        result = TrauSolver().solve(luhn_problem(k), timeout=60)
        assert result.status == "sat"
        value = result.model["value"]
        assert len(value) == k and all(c in "123456789" for c in value)
        total = 0
        for i, c in enumerate(reversed(value)):
            d = int(c)
            if i % 2 == 1:
                d *= 2
                if d > 9:
                    d -= 9
            total += d
        assert total % 10 == 0

    def test_reject_variant_builds(self):
        problem = luhn_problem(3, accept=False)
        assert len(problem) > 0


GENERATORS = [
    (pyex, {}), (fuzz, {}), (cvc4, {"flavor": "pred"}),
    (cvc4, {"flavor": "term"}), (leetcode, {}), (pythonlib, {}),
    (javascript, {"luhn_sizes": ()}),
]


class TestGeneratorContracts:
    @pytest.mark.parametrize("module,kwargs", GENERATORS)
    def test_deterministic(self, module, kwargs):
        a = module.generate(5, seed=1, **kwargs)
        b = module.generate(5, seed=1, **kwargs)
        assert [i.name for i in a] == [i.name for i in b]
        assert [i.expected for i in a] == [i.expected for i in b]

    @pytest.mark.parametrize("module,kwargs", GENERATORS)
    def test_instances_have_constraints(self, module, kwargs):
        for instance in module.generate(5, seed=2, **kwargs):
            assert len(instance.problem) > 0
            assert instance.expected in ("sat", "unsat", None)

    @pytest.mark.parametrize("module,kwargs", GENERATORS)
    def test_labels_verified_by_solver(self, module, kwargs):
        """Where the PFA solver answers, it must agree with the label
        (and SAT models must validate)."""
        for instance in module.generate(6, seed=4, **kwargs):
            result = TrauSolver().solve(instance.problem, timeout=8)
            if result.status == "sat":
                assert check_model(instance.problem, result.model), \
                    instance.name
                assert instance.expected != "unsat", instance.name
            elif result.status == "unsat":
                assert instance.expected != "sat", instance.name


class TestSuiteShapes:
    def test_cvc4_is_mostly_unsat(self):
        instances = cvc4.generate(50, seed=0)
        unsat = sum(1 for i in instances if i.expected == "unsat")
        assert unsat > 35

    def test_javascript_includes_luhn(self):
        instances = javascript.generate(4, seed=0, luhn_sizes=(2, 3))
        names = [i.name for i in instances]
        assert any("luhn" in n for n in names)

    def test_fuzz_has_unlabeled_instances(self):
        instances = fuzz.generate(12, seed=0)
        assert any(i.expected is None for i in instances)
