"""Tests for parametric flat automata (paper Section 5)."""

import pytest

from repro.alphabet import DEFAULT_ALPHABET as A, EPSILON
from repro.core.pfa import (
    PFA, count_var, literal_pfa, numeric_pfa, standard_pfa, straight_pfa,
)
from repro.core.names import NameFactory
from repro.errors import SolverError
from repro.logic import conj, evaluate
from repro.smt import solve_formula

from hypothesis import given, settings, strategies as st


def namer():
    factory = NameFactory()
    return factory.char_namer("x")


class TestShapes:
    def test_straight_structure(self):
        p = straight_pfa(namer(), 3)
        assert len(p.stem) == 3
        assert p.is_straight
        assert p.nfa.num_states == 4

    def test_standard_structure(self):
        p = standard_pfa(namer(), 3, 2)
        assert len(p.stem) == 2              # p-1 stem transitions
        assert [len(l) for l in p.loops] == [2, 2, 2]
        assert not p.is_straight

    def test_literal_bindings(self):
        p = literal_pfa(namer(), A.encode_word("ab"))
        assert len(p.stem) == 2
        assert p.binding_of(p.stem[0]) == A.code("a")
        assert p.binding_of(p.stem[1]) == A.code("b")

    def test_numeric_shape(self):
        p = numeric_pfa(namer(), 4)
        zero, chain = p.numeric
        assert len(chain) == 4
        assert p.loops[0] == [zero]
        assert not p.is_straight

    def test_loop_slot_mismatch_rejected(self):
        with pytest.raises(SolverError):
            PFA(["v1"], [[]])

    def test_reused_variable_rejected(self):
        with pytest.raises(SolverError):
            PFA(["v1", "v1"], [[], [], []])


class TestLanguages:
    def test_straight_accepts_parametric_words(self):
        p = straight_pfa(namer(), 2)
        assert p.nfa.accepts(p.stem)
        assert not p.nfa.accepts(p.stem[:1])

    def test_loop_words(self):
        p = standard_pfa(namer(), 2, 1)
        # stem v, loops [l0], [l1]: l0^i v l1^j
        l0 = p.loops[0][0]
        l1 = p.loops[1][0]
        v = p.stem[0]
        assert p.nfa.accepts([l0, l0, v, l1])
        assert p.nfa.accepts([v])
        assert not p.nfa.accepts([l1, v])


class TestDecode:
    def test_decode_straight(self):
        p = straight_pfa(namer(), 3)
        assignment = {p.stem[0]: A.code("a"), p.stem[1]: EPSILON,
                      p.stem[2]: A.code("b")}
        for v in p.stem:
            assignment[count_var(v)] = 1
        assert A.decode_word(p.decode(assignment)) == "ab"

    def test_decode_with_loops(self):
        p = standard_pfa(namer(), 2, 2)
        assignment = {}
        # First loop (c1 c2)^2 with c1='a', c2='b'; stem 'c'; no second loop.
        c1, c2 = p.loops[0]
        d1, d2 = p.loops[1]
        assignment[c1] = A.code("a")
        assignment[c2] = A.code("b")
        assignment[count_var(c1)] = 2
        assignment[count_var(c2)] = 2
        assignment[p.stem[0]] = A.code("c")
        assignment[count_var(p.stem[0])] = 1
        assignment[d1] = assignment[d2] = EPSILON
        assignment[count_var(d1)] = assignment[count_var(d2)] = 0
        assert A.decode_word(p.decode(assignment)) == "ababc"

    def test_decode_numeric_leading_zeros(self):
        p = numeric_pfa(namer(), 2)
        zero, chain = p.numeric
        assignment = {zero: 0, count_var(zero): 3,
                      chain[0]: 4, chain[1]: 2}
        for v in chain:
            assignment[count_var(v)] = 1
        assert A.decode_word(p.decode(assignment)) == "00042"


class TestConcat:
    def test_concat_structure_and_psi(self):
        factory = NameFactory()
        p1 = straight_pfa(factory.char_namer("x"), 2)
        p2 = straight_pfa(factory.char_namer("y"), 1)
        eps = factory.fresh("eps")
        joined = p1.concat(p2, eps)
        assert len(joined.stem) == 4
        assert joined.binding_of(eps) == EPSILON
        # psi must force the glue variable to epsilon.
        assert not evaluate(joined.psi, _all_zero(joined, {eps: 0}))
        assert evaluate(joined.psi, _all_zero(joined, {eps: EPSILON}))


def _all_zero(pfa, overrides):
    assignment = {v: 0 for v in pfa.char_vars}
    assignment.update(overrides)
    return assignment


class TestClosedFormParikh:
    def test_stem_counts_fixed_to_one(self):
        p = straight_pfa(namer(), 2)
        formula = p.parikh_formula()
        model = solve_formula(formula).model
        assert all(model[count_var(v)] == 1 for v in p.stem)

    def test_loop_counts_shared(self):
        p = standard_pfa(namer(), 1, 3)
        loop = p.loops[0]
        formula = conj(p.parikh_formula(),
                       _pin(count_var(loop[0]), 5))
        model = solve_formula(formula).model
        assert all(model[count_var(v)] == 5 for v in loop)

    def test_counter_bound_enforced(self):
        p = standard_pfa(namer(), 1, 1)
        loop_var = p.loops[0][0]
        formula = conj(p.parikh_formula(counter_bound=7),
                       _pin(count_var(loop_var), 8))
        assert solve_formula(formula).status == "unsat"


def _pin(name, value):
    from repro.logic import eq, var
    return eq(var(name), value)


class TestShiftDiscipline:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from([EPSILON, 0, 5, 11]), min_size=1,
                    max_size=5))
    def test_straight_psi_accepts_only_shifted(self, values):
        p = straight_pfa(namer(), len(values))
        assignment = dict(zip(p.stem, values))
        shifted = all(values[i] == EPSILON or values[i - 1] != EPSILON
                      for i in range(1, len(values)))
        assert evaluate(p.psi, assignment) == shifted
