"""Auto-collected fuzz reproducers.

Every ``tests/regressions/*.smt2`` file is a shrunk reproducer of a
disagreement once found by the differential harness (``repro fuzz``) or
a hand-reduced soundness bug.  Each is solved by the PFA solver and
cross-checked against the enumerative oracle and its own
``(set-info :status ...)`` expectation; printable problems additionally
make a print -> parse -> solve roundtrip so printer regressions re-fire.

To land a new reproducer, run a campaign with ``--save-failures`` and
move the minimized ``.smt2`` here once the underlying bug is fixed.
"""

import glob
import os

import pytest

from repro.baselines import EnumerativeSolver
from repro.core.solver import TrauSolver
from repro.errors import ReproError
from repro.smtlib import load_problem, problem_to_smtlib
from repro.strings import check_model

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "regressions")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.smt2")))


def test_corpus_is_present():
    assert CORPUS, "tests/regressions/ must hold at least one reproducer"


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_reproducer(path):
    script = load_problem(open(path).read())
    expected = script.expected

    result = TrauSolver().solve(script.problem, timeout=60)
    if expected in ("sat", "unsat"):
        assert result.status == expected, \
            "%s: %s != expected %s" % (path, result.status, expected)
    if result.status == "sat":
        assert check_model(script.problem, result.model), path

    # The oracle may say unknown, but must never contradict a definite
    # expectation — this is where the enumerative bound bug re-fires.
    oracle = EnumerativeSolver().solve(script.problem, timeout=15)
    if expected in ("sat", "unsat") and oracle.status in ("sat", "unsat"):
        assert oracle.status == expected, \
            "%s: oracle %s != expected %s" % (path, oracle.status, expected)
    if oracle.status == "sat":
        assert check_model(script.problem, oracle.model), path


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.basename(p) for p in CORPUS])
def test_reproducer_print_parse_roundtrip(path):
    script = load_problem(open(path).read())
    try:
        text = problem_to_smtlib(script.problem, expected=script.expected)
    except ReproError:
        pytest.skip("problem has no printable form")
    reloaded = load_problem(text)
    result = TrauSolver().solve(reloaded.problem, timeout=60)
    if script.expected in ("sat", "unsat"):
        assert result.status == script.expected, path
    if result.status == "sat":
        assert check_model(reloaded.problem, result.model), path
