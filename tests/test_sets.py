"""Tests for interval-set constraint builders."""

from hypothesis import given, strategies as st

from repro.logic import evaluate, var
from repro.logic.sets import interval_runs, member_of, not_member_of


class TestRuns:
    def test_single_run(self):
        assert interval_runs([1, 2, 3]) == [(1, 3)]

    def test_gaps(self):
        assert interval_runs([0, 1, 5, 7, 8, 9]) == [(0, 1), (5, 5), (7, 9)]

    def test_singleton(self):
        assert interval_runs([4]) == [(4, 4)]


class TestMembership:
    @given(st.sets(st.integers(0, 20), min_size=1), st.integers(-2, 22))
    def test_member_of_matches_set(self, codes, value):
        formula = member_of(var("v"), sorted(codes))
        assert evaluate(formula, {"v": value}) == (value in codes)

    @given(st.sets(st.integers(0, 20)), st.integers(-2, 22))
    def test_not_member_of_is_complement_in_range(self, codes, value):
        formula = not_member_of(var("v"), sorted(codes), 20)
        expected = 0 <= value <= 20 and value not in codes
        assert evaluate(formula, {"v": value}) == expected

    def test_not_member_of_empty_set(self):
        formula = not_member_of(var("v"), [], 5)
        assert evaluate(formula, {"v": 3})
        assert not evaluate(formula, {"v": 6})
        assert not evaluate(formula, {"v": -1})
