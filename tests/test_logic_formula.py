"""Unit and property tests for the boolean formula layer."""

from hypothesis import given, strategies as st

from repro.logic.formula import (
    And, Atom, FALSE, Not, Or, TRUE,
    atoms_of, conj, disj, eq, evaluate, ge, gt, iff, implies, le, lt, ne,
    neg, nnf, substitute, variables_of,
)
from repro.logic.terms import var


X, Y = var("x"), var("y")


class TestBuilders:
    def test_le_folds_constants(self):
        assert le(2, 3) is TRUE
        assert le(3, 2) is FALSE

    def test_strict_inequalities_are_integer_tight(self):
        assert evaluate(lt(X, 3), {"x": 2})
        assert not evaluate(lt(X, 3), {"x": 3})
        assert evaluate(gt(X, 3), {"x": 4})
        assert not evaluate(gt(X, 3), {"x": 3})

    def test_eq_and_ne(self):
        assert evaluate(eq(X, 5), {"x": 5})
        assert not evaluate(eq(X, 5), {"x": 6})
        assert evaluate(ne(X, 5), {"x": 6})
        assert not evaluate(ne(X, 5), {"x": 5})

    def test_conj_flattens_and_folds(self):
        f = conj(le(X, 3), TRUE, conj(ge(Y, 0), TRUE))
        assert isinstance(f, And)
        assert len(f.args) == 2
        assert conj(le(X, 3), FALSE) is FALSE
        assert conj() is TRUE

    def test_disj_flattens_and_folds(self):
        f = disj(le(X, 3), FALSE, disj(ge(Y, 0)))
        assert isinstance(f, Or)
        assert len(f.args) == 2
        assert disj(le(X, 3), TRUE) is TRUE
        assert disj() is FALSE

    def test_negation_of_atom_stays_atomic(self):
        a = le(X, 3)
        assert isinstance(neg(a), Atom)
        assert not evaluate(neg(a), {"x": 3})
        assert evaluate(neg(a), {"x": 4})

    def test_implies_and_iff(self):
        f = implies(ge(X, 1), ge(Y, 1))
        assert evaluate(f, {"x": 0, "y": 0})
        assert not evaluate(f, {"x": 1, "y": 0})
        g = iff(ge(X, 1), ge(Y, 1))
        assert evaluate(g, {"x": 1, "y": 1})
        assert evaluate(g, {"x": 0, "y": 0})
        assert not evaluate(g, {"x": 1, "y": 0})


class TestTraversals:
    def test_atoms_and_variables(self):
        f = conj(le(X + Y, 3), disj(ge(X, 1), Not(le(Y, 0))))
        assert len(atoms_of(f)) >= 2
        assert variables_of(f) == {"x", "y"}

    def test_substitute(self):
        f = le(X + Y, 3)
        g = substitute(f, {"x": var("z") * 2})
        assert variables_of(g) == {"z", "y"}
        folded = substitute(f, {"x": 1, "y": 1})
        assert folded is TRUE


@st.composite
def formulas(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        coeff_x = draw(st.integers(-3, 3))
        coeff_y = draw(st.integers(-3, 3))
        k = draw(st.integers(-5, 5))
        return le(X * coeff_x + Y * coeff_y, k)
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(formulas(depth=depth - 1)))
    parts = draw(st.lists(formulas(depth=depth - 1), min_size=1, max_size=3))
    return conj(*parts) if kind == "and" else disj(*parts)


class TestNnfProperty:
    @given(formulas(), st.integers(-6, 6), st.integers(-6, 6))
    def test_nnf_preserves_semantics(self, f, x, y):
        assignment = {"x": x, "y": y}
        assert evaluate(nnf(f), assignment) == evaluate(f, assignment)

    @given(formulas())
    def test_nnf_has_no_not_nodes(self, f):
        def no_not(g):
            if isinstance(g, Not):
                return False
            if isinstance(g, (And, Or)):
                return all(no_not(a) for a in g.args)
            return True
        assert no_not(nnf(f))

    @given(formulas(), st.integers(-6, 6), st.integers(-6, 6))
    def test_double_negation(self, f, x, y):
        assignment = {"x": x, "y": y}
        assert evaluate(neg(neg(f)), assignment) == evaluate(f, assignment)
