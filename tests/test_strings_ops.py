"""Tests for the high-level operation desugaring (ProblemBuilder)."""

from repro.strings import ProblemBuilder, check_model, str_len
from repro.logic import eq
from repro.core import TrauSolver


def models(builder, interp):
    """Does *interp* (extended over auxiliaries) satisfy the problem?

    The desugared encodings introduce fresh variables with existential
    meaning, so we let the solver finish the assignment by pinning the
    user-visible variables.
    """
    b2 = ProblemBuilder()
    b2.problem.constraints = list(builder.problem.constraints)
    for name, value in interp.items():
        if isinstance(value, str):
            b2.equal((builder.str_var(name),), (value,))
        else:
            from repro.logic import var as int_var
            b2.require_int(eq(int_var(name), value))
    result = TrauSolver().solve(b2, timeout=30)
    return result.status == "sat"


class TestCharAt:
    def test_positive_and_negative_witness(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        c = b.char_at(x, 1)
        b.equal((c,), ("b",))
        assert models(b, {"x": "abc"})
        assert not models(b, {"x": "aac"})

    def test_out_of_range_is_unsat(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.char_at(x, 5)
        assert not models(b, {"x": "abc"})


class TestSubstr:
    def test_witnesses(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        piece = b.substr(x, 1, 2)
        b.equal((piece,), ("bc",))
        assert models(b, {"x": "abcd"})
        assert not models(b, {"x": "axcd"})


class TestAffixes:
    def test_prefix_of(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.prefix_of(("ab",), x)
        assert models(b, {"x": "abba"})
        assert not models(b, {"x": "ba"})

    def test_suffix_of(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.suffix_of(("ba",), x)
        assert models(b, {"x": "abba"})
        assert not models(b, {"x": "ab"})

    def test_contains(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.contains(x, ("bb",))
        assert models(b, {"x": "abba"})
        assert not models(b, {"x": "abab"})


class TestDiseq:
    def test_diseq_blocks_equal_values(self):
        b = ProblemBuilder()
        x, y = b.str_var("x"), b.str_var("y")
        b.diseq((x,), (y,))
        assert models(b, {"x": "ab", "y": "ba"})
        assert models(b, {"x": "a", "y": "ab"})
        assert models(b, {"x": "", "y": "b"})
        assert not models(b, {"x": "ab", "y": "ab"})
        assert not models(b, {"x": "", "y": ""})


class TestConversionSugar:
    def test_to_num_names_result(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        n = b.to_num(x, "myn")
        assert n == "myn"
        assert models(b, {"x": "12", "myn": 12})
        assert not models(b, {"x": "12", "myn": 13})

    def test_to_str_rejects_leading_zero_witness(self):
        b = ProblemBuilder()
        s = b.to_str("n")
        assert models(b, {"n": 7, s.name: "7"})
        assert not models(b, {"n": 7, s.name: "07"})
        assert not models(b, {"n": -2, s.name: "x"})

    def test_length_of_term(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        expr = b.length((x, "ab", x))
        assert expr.coeffs == {str_len(x).coeffs.popitem()[0]: 2}
        assert expr.constant == 2
