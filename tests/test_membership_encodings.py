"""Regression and property tests for membership flattening paths.

Two encodings exist: DFA unrolling for straight (shifted) PFAs and the
synchronization product otherwise.  Both must agree with concrete
acceptance — including the historical trap where a collapsed character
class shared one variable across loop iterations and wrongly forced all
characters equal.
"""

from hypothesis import given, settings, strategies as st

from repro.alphabet import DEFAULT_ALPHABET as A
from repro.core import TrauSolver
from repro.logic import eq, ge, le
from repro.strings import ProblemBuilder, check_model, str_len
from repro.config import SolverConfig


def solve(builder, timeout=30):
    return TrauSolver().solve(builder, timeout=timeout)


class TestClassSharingRegression:
    def test_loop_class_allows_distinct_characters(self):
        # "[abc]+" through a loop transition must not force all characters
        # equal (the class-variable bug).
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[abc]+")
        b.prefix_of(("ab",), x)
        b.suffix_of(("ca",), x)
        b.require_int(eq(str_len(x), 5))
        result = solve(b)
        assert result.status == "sat"
        value = result.model["x"]
        assert value.startswith("ab") and value.endswith("ca")
        assert len(set(value)) >= 3

    def test_digit_plus_with_distinct_digits(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[0-9]+")
        c0 = b.char_at(x, 0)
        c1 = b.char_at(x, 1)
        b.equal((c0,), ("3",))
        b.equal((c1,), ("7",))
        b.require_int(eq(str_len(x), 2))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"] == "37"

    def test_unbounded_variable_uses_sync_path(self):
        # No length bound: the standard-PFA + sync path must also admit
        # distinct characters through a class loop.
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "[ab]+")
        b.prefix_of(("ab",), x)
        b.require_int(ge(str_len(x), 2))
        config = SolverConfig(use_static_analysis=False)
        result = TrauSolver(config=config).solve(b, timeout=30)
        assert result.status == "sat"
        assert result.model["x"].startswith("ab")


class TestUnrolledDfa:
    def test_exact_language_on_small_lengths(self):
        pattern = "(ab)*c|a+"
        from repro.automata.regex import regex_to_nfa
        nfa = regex_to_nfa(pattern)
        accepted = {A.decode_word(w) for w in nfa.enumerate_words(4)}
        for text in ["", "a", "aa", "ab", "abc", "c", "ababc", "b", "ac"]:
            b = ProblemBuilder()
            x = b.str_var("x")
            b.member(x, pattern)
            b.equal((x,), (text,))
            result = solve(b)
            expected = "sat" if (text in accepted or nfa.accepts(
                A.encode_word(text))) else "unsat"
            assert result.status == expected, text

    def test_dead_state_rejections(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "ab?c")
        b.prefix_of(("b",), x)
        b.require_int(le(str_len(x), 3))
        result = solve(b)
        assert result.status == "unsat"

    def test_empty_word_acceptance(self):
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, "(ab)*")
        b.require_int(eq(str_len(x), 0))
        result = solve(b)
        assert result.status == "sat"
        assert result.model["x"] == ""

    def test_ipv4_mid_lengths(self):
        octet = "(25[0-5]|2[0-4][0-9]|1[0-9][0-9]|[1-9][0-9]|[0-9])"
        b = ProblemBuilder()
        s = b.str_var("s")
        b.member(s, "%s(\\.%s){3}" % (octet, octet))
        b.require_int(eq(str_len(s), 12))
        result = solve(b, timeout=60)
        assert result.status == "sat"
        assert check_model(b.problem, result.model)


class TestAgreementProperty:
    @settings(max_examples=30, deadline=None)
    @given(st.sampled_from(["[ab]+", "a[ab]*b", "(ab|ba){1,2}", "a*b*",
                            "[ab]{2,4}"]),
           st.text(alphabet="ab", max_size=4))
    def test_pinned_word_matches_concrete(self, pattern, text):
        from repro.automata.regex import regex_to_nfa
        b = ProblemBuilder()
        x = b.str_var("x")
        b.member(x, pattern)
        b.equal((x,), (text,))
        result = solve(b)
        expected = regex_to_nfa(pattern).accepts(A.encode_word(text))
        assert (result.status == "sat") == expected
