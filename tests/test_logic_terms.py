"""Unit tests for linear expressions."""

import pytest

from repro.errors import SolverError
from repro.logic.terms import LinExpr, const, var


class TestAlgebra:
    def test_addition_merges_coefficients(self):
        e = var("x") + var("x") + 3
        assert e.coeffs == {"x": 2}
        assert e.constant == 3

    def test_cancellation_drops_variables(self):
        e = var("x") - var("x")
        assert e.is_constant()
        assert e.constant == 0

    def test_subtraction_and_negation(self):
        e = 5 - var("y")
        assert e.coeffs == {"y": -1}
        assert e.constant == 5
        assert (-e).constant == -5

    def test_scalar_multiplication(self):
        e = (var("x") + 2) * 3
        assert e.coeffs == {"x": 3}
        assert e.constant == 6

    def test_non_integer_scaling_rejected(self):
        with pytest.raises(SolverError):
            var("x") * 0.5


class TestEvaluation:
    def test_evaluate(self):
        e = var("x") * 2 - var("y") + 7
        assert e.evaluate({"x": 3, "y": 4}) == 9

    def test_substitute_with_expression(self):
        e = var("x") * 2 + var("y")
        s = e.substitute({"x": var("y") + 1})
        assert s.coeffs == {"y": 3}
        assert s.constant == 2

    def test_substitute_with_constant(self):
        e = var("x") + var("y")
        s = e.substitute({"x": 5})
        assert s.coeffs == {"y": 1}
        assert s.constant == 5


class TestIdentity:
    def test_equality_and_hash(self):
        assert var("x") + 1 == LinExpr({"x": 1}, 1)
        assert hash(var("x") + 1) == hash(LinExpr({"x": 1}, 1))
        assert var("x") != var("y")

    def test_coerce(self):
        assert LinExpr.coerce(4).constant == 4
        assert LinExpr.coerce("z").coeffs == {"z": 1}
        assert LinExpr.coerce(var("z")) == var("z")
        with pytest.raises(SolverError):
            LinExpr.coerce(3.14)
