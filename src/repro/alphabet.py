"""Numeric character encoding (paper Section 3).

The paper fixes a finite alphabet that is a subset of the natural numbers:
the digit characters ``'0'..'9'`` map to the numbers 0..9, and every other
character is assigned a unique code >= 10.  The empty word marker epsilon is
encoded as a number outside the alphabet; we use -1, matching the paper's own
use of ``v_{k+1} = -1`` in the Psi_last formula of Section 8.

The digits-first layout is load bearing: the NaN test of the numeric PFA is
the linear atom ``v > 9``, which is only correct because every non-digit
character has a code strictly greater than 9.
"""

from repro.errors import EncodingError

EPSILON = -1
"""Numeric code of the empty word marker, [[epsilon]]."""

_DIGITS = "0123456789"

# Printable non-digit characters in a stable order.  ASCII 32..126 minus the
# digits, so codes are deterministic across runs and processes.
_OTHER = "".join(chr(c) for c in range(32, 127) if chr(c) not in _DIGITS)

_DEFAULT_CHARS = _DIGITS + _OTHER


class Alphabet:
    """A bijection between characters and their numeric codes.

    Digits always occupy codes 0..9.  Additional characters are assigned
    consecutive codes starting at 10, in the order given.
    """

    def __init__(self, extra_chars=_OTHER):
        self._signature = None
        self._char_to_code = {}
        self._code_to_char = {}
        for code, char in enumerate(_DIGITS):
            self._char_to_code[char] = code
            self._code_to_char[code] = char
        code = 10
        for char in extra_chars:
            if char in self._char_to_code:
                continue
            self._char_to_code[char] = code
            self._code_to_char[code] = char
            code += 1

    def __len__(self):
        return len(self._char_to_code)

    def __contains__(self, char):
        return char in self._char_to_code

    @property
    def max_code(self):
        """Largest character code in the alphabet."""
        return len(self._char_to_code) - 1

    def signature(self):
        """Hashable identity of the char/code bijection (for cache keys)."""
        sig = self._signature
        if sig is None:
            sig = self._signature = "".join(
                self._code_to_char[c] for c in range(len(self)))
        return sig

    def chars(self):
        """All characters, in code order."""
        return [self._code_to_char[c] for c in range(len(self))]

    def codes(self):
        """All codes, ascending."""
        return range(len(self))

    def code(self, char):
        """Numeric code of *char* ([[c]] in the paper)."""
        try:
            return self._char_to_code[char]
        except KeyError:
            raise EncodingError("character %r is not in the alphabet" % char)

    def char(self, code):
        """Character with numeric *code* (inverse of :meth:`code`)."""
        try:
            return self._code_to_char[code]
        except KeyError:
            raise EncodingError("code %r does not name a character" % (code,))

    def encode_word(self, word):
        """Map a string to its list of character codes."""
        return [self.code(c) for c in word]

    def decode_word(self, codes):
        """Map a list of character codes back to a string.

        Epsilon codes are dropped: a parametric word interpreted with some
        characters set to epsilon contracts to the remaining characters.
        """
        return "".join(self.char(c) for c in codes if c != EPSILON)

    def is_digit_code(self, code):
        """True if *code* encodes one of '0'..'9'."""
        return 0 <= code <= 9


DEFAULT_ALPHABET = Alphabet()
"""Module-level default alphabet: digits plus printable ASCII."""
