"""SMT-LIB 2.x frontend for the strings fragment.

Parses the ``QF_S``/``QF_SLIA`` subset used by the paper's benchmark
suites — string equations, ``str.++ / str.len / str.at / str.substr``,
``str.to_int / str.from_int`` (both old and new spellings), regular
membership with the ``re.*`` combinators, extended predicates
(``str.contains``, ``str.prefixof``, ``str.suffixof``) and linear integer
arithmetic — into a :class:`~repro.strings.ast.StringProblem`, and prints
problems back out as ``.smt2`` text.
"""

from repro.smtlib.parser import parse_sexprs, parse_script
from repro.smtlib.convert import script_to_problem, load_problem
from repro.smtlib.printer import problem_to_smtlib

__all__ = ["parse_sexprs", "parse_script", "script_to_problem",
           "load_problem", "problem_to_smtlib"]
