"""S-expression reader for SMT-LIB 2.x scripts.

Produces nested Python lists of tokens: symbols stay strings, numerals
become ints, and string literals become :class:`StringLiteral` wrappers
(so ``"42"`` the string is distinguishable from ``42`` the numeral).
"""

from repro.errors import ParseError


class StringLiteral:
    """An SMT-LIB string literal (already unescaped)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, StringLiteral) and self.value == other.value

    def __hash__(self):
        return hash(("smtstr", self.value))

    def __repr__(self):
        return '"%s"' % self.value


def tokenize(text):
    """Token stream: '(' , ')', ints, StringLiteral, or symbol strings."""
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c in " \t\r\n":
            i += 1
        elif c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c in "()":
            tokens.append(c)
            i += 1
        elif c == '"':
            i += 1
            chunk = []
            while True:
                if i >= n:
                    raise ParseError("unterminated string literal", i)
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        chunk.append('"')
                        i += 2
                        continue
                    i += 1
                    break
                chunk.append(text[i])
                i += 1
            tokens.append(StringLiteral(_unescape("".join(chunk))))
        elif c == "|":
            j = text.find("|", i + 1)
            if j < 0:
                raise ParseError("unterminated quoted symbol", i)
            tokens.append(text[i + 1: j])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in ' \t\r\n();"|':
                j += 1
            token = text[i:j]
            i = j
            if token.lstrip("-").isdigit() and token.lstrip("-"):
                tokens.append(int(token))
            else:
                tokens.append(token)
    return tokens


def _unescape(raw):
    """Resolve SMT-LIB 2.6 ``\\u{..}`` escapes (and legacy ``\\x..``)."""
    out = []
    i = 0
    while i < len(raw):
        if raw[i] == "\\" and i + 2 < len(raw) and raw[i + 1] == "u":
            if raw[i + 2] == "{":
                j = raw.find("}", i + 3)
                if j > 0:
                    out.append(chr(int(raw[i + 3: j], 16)))
                    i = j + 1
                    continue
            else:
                hex_part = raw[i + 2: i + 6]
                if len(hex_part) == 4 and all(
                        h in "0123456789abcdefABCDEF" for h in hex_part):
                    out.append(chr(int(hex_part, 16)))
                    i += 6
                    continue
        out.append(raw[i])
        i += 1
    return "".join(out)


def parse_sexprs(text):
    """All top-level s-expressions of *text* as nested lists."""
    tokens = tokenize(text)
    position = [0]

    def parse_one():
        if position[0] >= len(tokens):
            raise ParseError("unexpected end of input", position[0])
        token = tokens[position[0]]
        position[0] += 1
        if token == "(":
            items = []
            while True:
                if position[0] >= len(tokens):
                    raise ParseError("missing ')'", position[0])
                if tokens[position[0]] == ")":
                    position[0] += 1
                    return items
                items.append(parse_one())
        if token == ")":
            raise ParseError("unexpected ')'", position[0])
        return token

    out = []
    while position[0] < len(tokens):
        out.append(parse_one())
    return out


def parse_script(text):
    """Alias of :func:`parse_sexprs` (an SMT-LIB script is a sexpr list)."""
    return parse_sexprs(text)
