"""Conversion of parsed SMT-LIB scripts to string problems.

The supported fragment is the conjunctive strings+LIA subset the paper's
benchmarks use.  Boolean structure over *integer* atoms is kept (it lands
in :class:`~repro.strings.ast.IntConstraint`); boolean structure over
string atoms beyond top-level conjunction and the directly-encodable
negations (disequalities, complemented memberships) raises
:class:`~repro.errors.UnsupportedConstraint`, matching the solver's input
language (Z3's core handles that splitting in the paper's setting).
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.errors import UnsupportedConstraint
from repro.logic.formula import (
    FALSE, TRUE, conj, disj, eq, ge, gt, iff, implies, le, lt, ne, neg,
)
from repro.logic.terms import LinExpr
from repro.logic.terms import var as int_var
from repro.smtlib.parser import StringLiteral, parse_sexprs
from repro.strings.ast import StrVar
from repro.strings.ops import ProblemBuilder

_TO_INT = {"str.to_int", "str.to.int"}
_FROM_INT = {"str.from_int", "int.to.str", "str.from-int"}
_IN_RE = {"str.in_re", "str.in.re"}


class SmtScript:
    """Result of converting a script."""

    __slots__ = ("problem", "builder", "expected", "logic")

    def __init__(self, problem, builder, expected, logic):
        self.problem = problem
        self.builder = builder
        self.expected = expected
        self.logic = logic


class _Converter:
    def __init__(self, alphabet):
        self.alphabet = alphabet
        self.builder = ProblemBuilder(alphabet)
        self.sorts = {}
        self.macros = {}
        self.expected = None
        self.logic = None

    # -- commands ---------------------------------------------------------------

    def run(self, sexprs):
        for command in sexprs:
            if not isinstance(command, list) or not command:
                continue
            head = command[0]
            if head in ("declare-fun", "declare-const"):
                self._declare(command)
            elif head == "define-fun":
                self._define(command)
            elif head == "assert":
                self._assert(command[1])
            elif head == "set-logic":
                self.logic = command[1]
            elif head == "set-info" and len(command) >= 3 \
                    and command[1] == ":status":
                self.expected = command[2]
            # check-sat / get-model / exit / set-option: nothing to do.
        return SmtScript(self.builder.problem, self.builder,
                         self.expected, self.logic)

    def _declare(self, command):
        name = command[1]
        sort = command[-1]
        if command[0] == "declare-fun" and command[2] != []:
            raise UnsupportedConstraint("uninterpreted functions: %r" % name)
        if sort not in ("String", "Int", "Bool"):
            raise UnsupportedConstraint("sort %r" % sort)
        self.sorts[name] = sort
        # Scripts may declare names the desugaring encodings would mint
        # themselves (_dp1, _num2, ...); reserving them keeps fresh
        # variables genuinely fresh.
        self.builder.reserve((name,))

    def _define(self, command):
        _, name, params, sort, body = command
        if params != []:
            raise UnsupportedConstraint("define-fun with parameters")
        self.macros[name] = body
        self.sorts[name] = sort
        self.builder.reserve((name,))

    # -- sort inference ----------------------------------------------------------

    def _sort_of(self, term):
        if isinstance(term, StringLiteral):
            return "String"
        if isinstance(term, int):
            return "Int"
        if isinstance(term, str):
            if term in self.macros:
                return self._sort_of(self.macros[term])
            if term in ("true", "false"):
                return "Bool"
            return self.sorts.get(term, "Int")
        head = term[0] if term else None
        if head in ("str.++", "str.at", "str.substr", "str.replace") \
                or head in _FROM_INT:
            return "String"
        if head in ("str.len", "+", "-", "*", "div", "mod", "abs") \
                or head in _TO_INT:
            return "Int"
        if head == "ite":
            return self._sort_of(term[2])
        return "Bool"

    # -- assertions ------------------------------------------------------------------

    def _assert(self, term):
        term = self._expand(term)
        if isinstance(term, str) and term == "true":
            return
        if isinstance(term, str) and term == "false":
            # A top-level trivial falsehood: the printer emits these for
            # degenerate generated problems, so the round-trip must
            # re-read them (as an unsatisfiable integer-layer fact).
            self.builder.require_int(FALSE)
            return
        if not isinstance(term, list):
            raise UnsupportedConstraint("cannot assert %r" % (term,))
        head = term[0]
        if head == "and":
            for part in term[1:]:
                self._assert(part)
            return
        if head == "=" and self._sort_of(term[1]) == "String":
            self.builder.equal(self._str_term(term[1]),
                               self._str_term(term[2]))
            return
        if head == "=" and len(term) == 3 \
                and self._tonum_binding(term[1], term[2]):
            return
        if head == "not":
            inner = self._expand(term[1])
            if isinstance(inner, list):
                if inner[0] == "=" and self._sort_of(inner[1]) == "String":
                    self.builder.diseq(self._str_term(inner[1]),
                                       self._str_term(inner[2]))
                    return
                if inner[0] in _IN_RE:
                    variable = self._varify(self._str_term(inner[1]))
                    nfa = self._regex(inner[2])
                    complement = nfa.complement(self.alphabet.codes()).trim()
                    from repro.strings.ast import RegularConstraint
                    self.builder.require(
                        RegularConstraint(variable,
                                          self._compact(complement)))
                    return
        if head == "distinct" and self._sort_of(term[1]) == "String":
            self.builder.diseq(self._str_term(term[1]),
                               self._str_term(term[2]))
            return
        if head in _IN_RE:
            variable = self._varify(self._str_term(term[1]))
            from repro.strings.ast import RegularConstraint
            self.builder.require(
                RegularConstraint(variable,
                                  self._compact(self._regex(term[2]))))
            return
        if head == "str.prefixof":
            self.builder.prefix_of(self._str_term(term[1]),
                                   self._varify(self._str_term(term[2])))
            return
        if head == "str.suffixof":
            self.builder.suffix_of(self._str_term(term[1]),
                                   self._varify(self._str_term(term[2])))
            return
        if head == "str.contains":
            self.builder.contains(self._varify(self._str_term(term[1])),
                                  self._str_term(term[2]))
            return
        # Anything else must be an integer/boolean formula.
        self.builder.require_int(self._bool_formula(term))

    # -- integer / boolean layer --------------------------------------------------------

    def _bool_formula(self, term):
        term = self._expand(term)
        if term == "true":
            return TRUE
        if term == "false":
            return FALSE
        if isinstance(term, str):
            raise UnsupportedConstraint("boolean variable %r" % term)
        head = term[0]
        if head == "and":
            return conj(*[self._bool_formula(t) for t in term[1:]])
        if head == "or":
            return disj(*[self._bool_formula(t) for t in term[1:]])
        if head == "not":
            return neg(self._bool_formula(term[1]))
        if head == "=>":
            return implies(self._bool_formula(term[1]),
                           self._bool_formula(term[2]))
        if head == "ite":
            condition = self._bool_formula(term[1])
            return disj(conj(condition, self._bool_formula(term[2])),
                        conj(neg(condition), self._bool_formula(term[3])))
        if head == "=":
            if self._sort_of(term[1]) == "Bool":
                return iff(self._bool_formula(term[1]),
                           self._bool_formula(term[2]))
            return eq(self._int_term(term[1]), self._int_term(term[2]))
        comparisons = {"<=": le, "<": lt, ">=": ge, ">": gt}
        if head in comparisons:
            return comparisons[head](self._int_term(term[1]),
                                     self._int_term(term[2]))
        if head == "distinct":
            return ne(self._int_term(term[1]), self._int_term(term[2]))
        raise UnsupportedConstraint("boolean operator %r" % head)

    def _int_term(self, term):
        term = self._expand(term)
        if isinstance(term, int):
            return LinExpr.of_const(term)
        if isinstance(term, str):
            return int_var(term)
        head = term[0]
        if head == "+":
            total = LinExpr.of_const(0)
            for t in term[1:]:
                total = total + self._int_term(t)
            return total
        if head == "-":
            if len(term) == 2:
                return -self._int_term(term[1])
            total = self._int_term(term[1])
            for t in term[2:]:
                total = total - self._int_term(t)
            return total
        if head == "*":
            operands = [self._int_term(t) for t in term[1:]]
            constant = 1
            linear = None
            for op in operands:
                if op.is_constant():
                    constant *= op.constant
                elif linear is None:
                    linear = op
                else:
                    raise UnsupportedConstraint("non-linear multiplication")
            if linear is None:
                return LinExpr.of_const(constant)
            return linear * constant
        if head == "str.len":
            return self.builder.length(self._str_term(term[1]))
        if head in _TO_INT:
            variable = self._varify(self._str_term(term[1]))
            return int_var(self.builder.to_num(variable))
        if head == "ite":
            condition = self._bool_formula(term[1])
            result = self.builder.ite_int(condition,
                                          self._int_term(term[2]),
                                          self._int_term(term[3]))
            return int_var(result)
        if head == "str.indexof":
            needle = self._expand(term[2])
            start = self._expand(term[3]) if len(term) > 3 else 0
            if isinstance(needle, StringLiteral) \
                    and len(needle.value) == 1 and start == 0:
                variable = self._varify(self._str_term(term[1]))
                return int_var(self.builder.index_of_char(variable,
                                                          needle.value))
            raise UnsupportedConstraint(
                "str.indexof needs a single-character literal and start 0")
        raise UnsupportedConstraint("integer operator %r" % head)

    # -- string layer ----------------------------------------------------------------------

    def _str_term(self, term):
        term = self._expand(term)
        if isinstance(term, StringLiteral):
            return (term.value,)
        if isinstance(term, str):
            if self.sorts.get(term) != "String":
                raise UnsupportedConstraint("unknown string symbol %r" % term)
            return (StrVar(term),)
        head = term[0]
        if head == "str.++":
            out = []
            for t in term[1:]:
                out.extend(self._str_term(t))
            return tuple(out)
        if head == "str.at":
            variable = self._varify(self._str_term(term[1]))
            return (self.builder.char_at(variable, self._int_term(term[2])),)
        if head == "str.substr":
            variable = self._varify(self._str_term(term[1]))
            return (self.builder.substr(variable, self._int_term(term[2]),
                                        self._int_term(term[3])),)
        if head in _FROM_INT:
            inner = self._int_term(term[1])
            name = self._int_name(inner)
            return (self.builder.to_str(name),)
        raise UnsupportedConstraint("string operator %r" % head)

    def _tonum_binding(self, lhs, rhs):
        """``(= n (str.to_int x))`` with *n* a declared Int symbol (either
        order) binds *n* directly as the conversion's result.  Without
        this, every parse would mint a fresh result variable plus a
        linking equality, so print -> parse would grow the problem."""
        lhs, rhs = self._expand(lhs), self._expand(rhs)
        for name, conversion in ((lhs, rhs), (rhs, lhs)):
            if isinstance(name, str) and self.sorts.get(name) == "Int" \
                    and isinstance(conversion, list) and conversion \
                    and conversion[0] in _TO_INT:
                variable = self._varify(self._str_term(conversion[1]))
                self.builder.to_num(variable, result=name)
                return True
        return False

    def _int_name(self, expr):
        """An integer variable equal to *expr* (fresh if needed)."""
        if len(expr.coeffs) == 1 and expr.constant == 0:
            (name, c), = expr.coeffs.items()
            if c == 1:
                return name
        fresh = self.builder.fresh_int("_fi")
        self.builder.require_int(eq(int_var(fresh), expr))
        return fresh

    def _varify(self, term):
        """A variable denoting *term* (fresh + equality if composite)."""
        if len(term) == 1 and isinstance(term[0], StrVar):
            return term[0]
        fresh = self.builder.fresh_str("_v")
        self.builder.equal((fresh,), term)
        return fresh

    # -- regexes ----------------------------------------------------------------------------

    def _regex(self, term):
        term = self._expand(term)
        if isinstance(term, str):
            if term == "re.allchar":
                return NFA.from_symbols(sorted(self.alphabet.codes()))
            if term == "re.all":
                return NFA.from_symbols(
                    sorted(self.alphabet.codes())).star()
            if term == "re.none":
                return NFA.empty()
            raise UnsupportedConstraint("regex symbol %r" % term)
        head = term[0]
        if head == "str.to_re" or head == "str.to.re":
            return NFA.from_word(
                self.alphabet.encode_word(term[1].value))
        if head == "re.++":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.concat(self._regex(t))
            return out
        if head == "re.union":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.union(self._regex(t))
            return out
        if head == "re.inter":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.intersect(self._regex(t))
            return out
        if head == "re.*":
            return self._regex(term[1]).star()
        if head == "re.+":
            return self._regex(term[1]).plus()
        if head == "re.opt":
            return self._regex(term[1]).optional()
        if head == "re.range":
            low = term[1].value
            high = term[2].value
            codes = [self.alphabet.code(chr(o))
                     for o in range(ord(low), ord(high) + 1)
                     if chr(o) in self.alphabet]
            return NFA.from_symbols(codes)
        if isinstance(head, list) and len(head) >= 2 \
                and head[0] == "_" and head[1] == "re.loop":
            low, high = head[2], head[3]
            return self._regex(term[1]).repeat(low, high)
        raise UnsupportedConstraint("regex operator %r" % (head,))

    def _compact(self, nfa):
        """Shrink a Thompson-constructed automaton.

        ``re.union`` chains of single characters produce epsilon-heavy
        NFAs whose parallel paths defeat the flattener's class grouping;
        minimizing small automata restores the compact form.
        """
        base = nfa.without_epsilon().trim()
        if 0 < base.num_states <= 60:
            try:
                minimized = base.minimize(self.alphabet.codes())
                if minimized.num_states <= base.num_states:
                    return minimized
            except Exception:
                pass
        return base

    def _expand(self, term):
        if isinstance(term, str) and term in self.macros:
            return self._expand(self.macros[term])
        return term


def script_to_problem(sexprs, alphabet=DEFAULT_ALPHABET):
    """Convert parsed commands; returns an :class:`SmtScript`."""
    return _Converter(alphabet).run(sexprs)


def load_problem(text, alphabet=DEFAULT_ALPHABET):
    """Parse SMT-LIB *text* into an :class:`SmtScript`."""
    return script_to_problem(parse_sexprs(text), alphabet)
