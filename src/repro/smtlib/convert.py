"""Conversion of parsed SMT-LIB scripts to string problems.

The supported fragment is the conjunctive strings+LIA subset the paper's
benchmarks use.  Boolean structure over *integer* atoms is kept (it lands
in :class:`~repro.strings.ast.IntConstraint`); boolean structure over
string atoms beyond top-level conjunction and the directly-encodable
negations (disequalities, complemented memberships) raises
:class:`~repro.errors.UnsupportedConstraint`, matching the solver's input
language (Z3's core handles that splitting in the paper's setting).
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.errors import UnsupportedConstraint
from repro.logic.formula import (
    FALSE, TRUE, conj, disj, eq, ge, gt, iff, implies, le, lt, ne, neg,
)
from repro.logic.terms import LinExpr
from repro.logic.terms import var as int_var
from repro.smtlib.parser import StringLiteral, parse_sexprs
from repro.strings.ast import StrVar
from repro.strings.ops import ProblemBuilder

_REGEX_META = set("()[]|*+?{}.\\")
_TO_INT = {"str.to_int", "str.to.int"}
_FROM_INT = {"str.from_int", "int.to.str", "str.from-int"}
_IN_RE = {"str.in_re", "str.in.re"}


class SmtScript:
    """Result of converting a script."""

    __slots__ = ("problem", "builder", "expected", "logic")

    def __init__(self, problem, builder, expected, logic):
        self.problem = problem
        self.builder = builder
        self.expected = expected
        self.logic = logic


class _Converter:
    def __init__(self, alphabet):
        self.alphabet = alphabet
        self.builder = ProblemBuilder(alphabet)
        self.sorts = {}
        self.macros = {}
        self.expected = None
        self.logic = None

    # -- commands ---------------------------------------------------------------

    def run(self, sexprs):
        for command in sexprs:
            if not isinstance(command, list) or not command:
                continue
            head = command[0]
            if head in ("declare-fun", "declare-const"):
                self._declare(command)
            elif head == "define-fun":
                self._define(command)
            elif head == "assert":
                self._assert(command[1])
            elif head == "set-logic":
                self.logic = command[1]
            elif head == "set-info" and len(command) >= 3 \
                    and command[1] == ":status":
                self.expected = command[2]
            # check-sat / get-model / exit / set-option: nothing to do.
        return SmtScript(self.builder.problem, self.builder,
                         self.expected, self.logic)

    def _declare(self, command):
        name = command[1]
        sort = command[-1]
        if command[0] == "declare-fun" and command[2] != []:
            raise UnsupportedConstraint("uninterpreted functions: %r" % name)
        if sort not in ("String", "Int", "Bool"):
            raise UnsupportedConstraint("sort %r" % sort)
        self.sorts[name] = sort
        # Scripts may declare names the desugaring encodings would mint
        # themselves (_dp1, _num2, ...); reserving them keeps fresh
        # variables genuinely fresh.
        self.builder.reserve((name,))

    def _define(self, command):
        _, name, params, sort, body = command
        if params != []:
            raise UnsupportedConstraint("define-fun with parameters")
        self.macros[name] = body
        self.sorts[name] = sort
        self.builder.reserve((name,))

    # -- sort inference ----------------------------------------------------------

    def _sort_of(self, term):
        if isinstance(term, StringLiteral):
            return "String"
        if isinstance(term, int):
            return "Int"
        if isinstance(term, str):
            if term in self.macros:
                return self._sort_of(self.macros[term])
            if term in ("true", "false"):
                return "Bool"
            if term in self.sorts:
                return self.sorts[term]
            # Defaulting unknown names to Int silently turned a mistyped
            # symbol into a free integer variable (and a wrong model).
            raise UnsupportedConstraint("undeclared symbol %r" % term)
        head = term[0] if term else None
        if head in ("str.++", "str.at", "str.substr", "str.replace",
                    "str.replace_all", "str.from_code") \
                or head in _FROM_INT:
            return "String"
        if head in ("str.len", "+", "-", "*", "div", "mod", "abs",
                    "str.indexof", "str.to_code", "str.to_code.partial") \
                or head in _TO_INT \
                or self._head_semantics(head) is not None:
            return "Int"
        if head == "ite":
            return self._sort_of(term[2])
        if head == "!":
            return self._sort_of(term[1])
        return "Bool"

    @staticmethod
    def _head_semantics(head):
        """The semantics name of a ``str.to_int.<name>`` head, else None."""
        if isinstance(head, str) and head.startswith("str.to_int."):
            return head[len("str.to_int."):]
        return None

    @staticmethod
    def _annotation(term):
        """``(! inner :semantics name ...)`` -> (inner, name-or-None)."""
        inner = term[1]
        for i in range(2, len(term) - 1):
            if term[i] == ":semantics":
                return inner, term[i + 1]
        return inner, None

    # -- assertions ------------------------------------------------------------------

    def _assert(self, term):
        term = self._expand(term)
        if isinstance(term, str) and term == "true":
            return
        if isinstance(term, str) and term == "false":
            # A top-level trivial falsehood: the printer emits these for
            # degenerate generated problems, so the round-trip must
            # re-read them (as an unsatisfiable integer-layer fact).
            self.builder.require_int(FALSE)
            return
        if not isinstance(term, list):
            raise UnsupportedConstraint("cannot assert %r" % (term,))
        head = term[0]
        if head == "and":
            for part in term[1:]:
                self._assert(part)
            return
        if head == "or":
            # Pure integer/boolean disjunctions stay in the int layer;
            # disjunctions involving string atoms become a Disjunction
            # constraint whose branches capture each disjunct's encoding
            # (including any desugaring the disjunct needs).
            try:
                captured = self._capture(
                    lambda: self.builder.require_int(
                        self._bool_formula(term)))
            except UnsupportedConstraint:
                from repro.strings.ast import Disjunction, IntConstraint
                branches = []
                for part in term[1:]:
                    branch = self._capture(
                        lambda part=part: self._assert(part))
                    branches.append(branch or [IntConstraint(TRUE)])
                self.builder.require(Disjunction(branches))
                return
            self.builder.problem.extend(captured)
            return
        if head == "=" and self._sort_of(term[1]) == "String":
            # Chained (= a b c ...) means all operands are equal.
            first = self._str_term(term[1])
            for t in term[2:]:
                self.builder.equal(first, self._str_term(t))
            return
        if head == "=" and len(term) == 3 \
                and self._tonum_binding(term[1], term[2]):
            return
        if head == "not":
            inner = self._expand(term[1])
            if isinstance(inner, list):
                if inner[0] == "=" and self._sort_of(inner[1]) == "String":
                    self.builder.diseq(self._str_term(inner[1]),
                                       self._str_term(inner[2]))
                    return
                if inner[0] in _IN_RE:
                    variable = self._varify(self._str_term(inner[1]))
                    nfa = self._regex(inner[2])
                    complement = nfa.complement(self.alphabet.codes()).trim()
                    source = self._regex_source(inner[2])
                    from repro.strings.ast import RegularConstraint
                    self.builder.require(
                        RegularConstraint(
                            variable, self._compact(complement),
                            source=None if source is None
                            else "!(%s)" % source))
                    return
        if head == "str.diseq.char" and len(term) == 3:
            # Dialect form the printer emits for CharNeq (see printer).
            from repro.strings.ast import CharNeq
            self.builder.require(CharNeq(
                self._varify(self._str_term(term[1])),
                self._varify(self._str_term(term[2]))))
            return
        if head == "distinct" and self._sort_of(term[1]) == "String":
            # (distinct a b c ...) is pairwise: every operand differs from
            # every other, not just the first two.
            operands = [self._str_term(t) for t in term[1:]]
            for i in range(len(operands)):
                for j in range(i + 1, len(operands)):
                    self.builder.diseq(operands[i], operands[j])
            return
        if head in _IN_RE:
            variable = self._varify(self._str_term(term[1]))
            from repro.strings.ast import RegularConstraint
            self.builder.require(
                RegularConstraint(variable,
                                  self._compact(self._regex(term[2])),
                                  source=self._regex_source(term[2])))
            return
        if head == "str.prefixof":
            self.builder.prefix_of(self._str_term(term[1]),
                                   self._varify(self._str_term(term[2])))
            return
        if head == "str.suffixof":
            self.builder.suffix_of(self._str_term(term[1]),
                                   self._varify(self._str_term(term[2])))
            return
        if head == "str.contains":
            self.builder.contains(self._varify(self._str_term(term[1])),
                                  self._str_term(term[2]))
            return
        # Anything else must be an integer/boolean formula.
        self.builder.require_int(self._bool_formula(term))

    # -- integer / boolean layer --------------------------------------------------------

    def _bool_formula(self, term):
        term = self._expand(term)
        if term == "true":
            return TRUE
        if term == "false":
            return FALSE
        if isinstance(term, str):
            raise UnsupportedConstraint("boolean variable %r" % term)
        head = term[0]
        if head == "and":
            return conj(*[self._bool_formula(t) for t in term[1:]])
        if head == "or":
            return disj(*[self._bool_formula(t) for t in term[1:]])
        if head == "not":
            return neg(self._bool_formula(term[1]))
        if head == "=>":
            return implies(self._bool_formula(term[1]),
                           self._bool_formula(term[2]))
        if head == "ite":
            condition = self._bool_formula(term[1])
            return disj(conj(condition, self._bool_formula(term[2])),
                        conj(neg(condition), self._bool_formula(term[3])))
        if head == "=":
            sort = self._sort_of(term[1])
            if sort == "String":
                raise UnsupportedConstraint(
                    "string equality under boolean structure")
            if sort == "Bool":
                return conj(*[iff(self._bool_formula(a),
                                  self._bool_formula(b))
                              for a, b in zip(term[1:], term[2:])])
            first = self._int_term(term[1])
            return conj(*[eq(first, self._int_term(t)) for t in term[2:]])
        comparisons = {"<=": le, "<": lt, ">=": ge, ">": gt}
        if head in comparisons:
            return comparisons[head](self._int_term(term[1]),
                                     self._int_term(term[2]))
        if head == "distinct":
            if self._sort_of(term[1]) == "String":
                raise UnsupportedConstraint(
                    "string distinct under boolean structure")
            # Pairwise over all operands, not just the first two.
            operands = [self._int_term(t) for t in term[1:]]
            return conj(*[ne(operands[i], operands[j])
                          for i in range(len(operands))
                          for j in range(i + 1, len(operands))])
        raise UnsupportedConstraint("boolean operator %r" % head)

    def _int_term(self, term):
        term = self._expand(term)
        if isinstance(term, int):
            return LinExpr.of_const(term)
        if isinstance(term, str):
            return int_var(term)
        head = term[0]
        if head == "+":
            total = LinExpr.of_const(0)
            for t in term[1:]:
                total = total + self._int_term(t)
            return total
        if head == "-":
            if len(term) == 2:
                return -self._int_term(term[1])
            total = self._int_term(term[1])
            for t in term[2:]:
                total = total - self._int_term(t)
            return total
        if head == "*":
            operands = [self._int_term(t) for t in term[1:]]
            constant = 1
            linear = None
            for op in operands:
                if op.is_constant():
                    constant *= op.constant
                elif linear is None:
                    linear = op
                else:
                    raise UnsupportedConstraint("non-linear multiplication")
            if linear is None:
                return LinExpr.of_const(constant)
            return linear * constant
        if head == "str.len":
            return self.builder.length(self._str_term(term[1]))
        if head in _TO_INT:
            variable = self._varify(self._str_term(term[1]))
            return int_var(self.builder.to_num(variable))
        semantics = self._head_semantics(head)
        if semantics is not None:
            variable = self._varify(self._str_term(term[1]))
            return int_var(self.builder.to_num_sem(variable, semantics))
        if head == "!":
            inner, semantics = self._annotation(term)
            inner = self._expand(inner)
            if semantics is not None and isinstance(inner, list) \
                    and inner and inner[0] in _TO_INT:
                variable = self._varify(self._str_term(inner[1]))
                return int_var(self.builder.to_num_sem(variable, semantics))
            return self._int_term(inner)
        if head == "ite":
            condition = self._bool_formula(term[1])
            result = self.builder.ite_int(condition,
                                          self._int_term(term[2]),
                                          self._int_term(term[3]))
            return int_var(result)
        if head == "str.indexof":
            needle = self._expand(term[2])
            if not isinstance(needle, StringLiteral):
                raise UnsupportedConstraint(
                    "str.indexof needs a literal needle")
            variable = self._varify(self._str_term(term[1]))
            start = self._int_term(term[3]) if len(term) > 3 \
                else LinExpr.of_const(0)
            result, _ = self.builder.index_of(variable, needle.value, start)
            return int_var(result)
        if head == "str.to_code":
            variable = self._varify(self._str_term(term[1]))
            result, _ = self.builder.to_code(variable)
            return int_var(result)
        raise UnsupportedConstraint("integer operator %r" % head)

    # -- string layer ----------------------------------------------------------------------

    def _str_term(self, term):
        term = self._expand(term)
        if isinstance(term, StringLiteral):
            return (term.value,)
        if isinstance(term, str):
            if self.sorts.get(term) != "String":
                raise UnsupportedConstraint("unknown string symbol %r" % term)
            return (StrVar(term),)
        head = term[0]
        if head == "str.++":
            out = []
            for t in term[1:]:
                out.extend(self._str_term(t))
            return tuple(out)
        if head == "str.at":
            variable = self._varify(self._str_term(term[1]))
            result, _ = self.builder.at_total(variable,
                                              self._int_term(term[2]))
            return (result,)
        if head in ("str.replace", "str.replace_all"):
            variable = self._varify(self._str_term(term[1]))
            needle = self._expand(term[2])
            replacement = self._expand(term[3])
            if not isinstance(needle, StringLiteral) \
                    or not isinstance(replacement, StringLiteral):
                raise UnsupportedConstraint(
                    "%s needs a literal needle and replacement" % head)
            if head == "str.replace":
                result, _ = self.builder.replace(
                    variable, needle.value, replacement.value)
            else:
                result, _ = self.builder.replace_all(
                    variable, needle.value, replacement.value)
            return (result,)
        if head == "str.from_code":
            name = self._int_name(self._int_term(term[1]))
            return (self.builder.from_code(name),)
        if head == "str.substr":
            variable = self._varify(self._str_term(term[1]))
            return (self.builder.substr(variable, self._int_term(term[2]),
                                        self._int_term(term[3])),)
        if head in _FROM_INT:
            inner = self._int_term(term[1])
            name = self._int_name(inner)
            return (self.builder.to_str(name),)
        raise UnsupportedConstraint("string operator %r" % head)

    def _tonum_binding(self, lhs, rhs):
        """``(= n (str.to_int x))`` with *n* a declared Int symbol (either
        order) binds *n* directly as the conversion's result.  Without
        this, every parse would mint a fresh result variable plus a
        linking equality, so print -> parse would grow the problem."""
        lhs, rhs = self._expand(lhs), self._expand(rhs)
        for name, conversion in ((lhs, rhs), (rhs, lhs)):
            if not (isinstance(name, str) and self.sorts.get(name) == "Int"
                    and isinstance(conversion, list) and conversion):
                continue
            head = conversion[0]
            semantics = self._head_semantics(head)
            if head in _TO_INT:
                variable = self._varify(self._str_term(conversion[1]))
                self.builder.to_num(variable, result=name)
                return True
            if semantics is not None:
                variable = self._varify(self._str_term(conversion[1]))
                self.builder.to_num_sem(variable, semantics, result=name)
                return True
            if head == "str.to_code.partial":
                # Dialect head for the partial char-code relation the
                # printer emits for CharCode (sat only when the subject
                # is a single character).  Parsing it back as total
                # str.to_code would re-desugar into a fresh disjunction
                # on every round trip.
                from repro.strings.ast import CharCode
                variable = self._varify(self._str_term(conversion[1]))
                self.builder.require(CharCode(name, variable))
                return True
        return False

    def _capture(self, thunk):
        """Run *thunk* with the builder writing to a scratch problem and
        return the constraints it produced (the main problem untouched).
        Used to materialize disjunct branches: fresh variables minted by
        a branch's desugarings stay scoped to that branch."""
        from repro.strings.ast import StringProblem
        saved = self.builder.problem
        self.builder.problem = StringProblem()
        try:
            thunk()
            return list(self.builder.problem)
        finally:
            self.builder.problem = saved

    def _int_name(self, expr):
        """An integer variable equal to *expr* (fresh if needed)."""
        if len(expr.coeffs) == 1 and expr.constant == 0:
            (name, c), = expr.coeffs.items()
            if c == 1:
                return name
        fresh = self.builder.fresh_int("_fi")
        self.builder.require_int(eq(int_var(fresh), expr))
        return fresh

    def _varify(self, term):
        """A variable denoting *term* (fresh + equality if composite)."""
        if len(term) == 1 and isinstance(term[0], StrVar):
            return term[0]
        fresh = self.builder.fresh_str("_v")
        self.builder.equal((fresh,), term)
        return fresh

    # -- regexes ----------------------------------------------------------------------------

    def _regex(self, term):
        term = self._expand(term)
        if isinstance(term, str):
            if term == "re.allchar":
                return NFA.from_symbols(sorted(self.alphabet.codes()))
            if term == "re.all":
                return NFA.from_symbols(
                    sorted(self.alphabet.codes())).star()
            if term == "re.none":
                return NFA.empty()
            raise UnsupportedConstraint("regex symbol %r" % term)
        head = term[0]
        if head == "str.to_re" or head == "str.to.re":
            return NFA.from_word(
                self.alphabet.encode_word(term[1].value))
        if head == "re.++":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.concat(self._regex(t))
            return out
        if head == "re.union":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.union(self._regex(t))
            return out
        if head == "re.inter":
            out = self._regex(term[1])
            for t in term[2:]:
                out = out.intersect(self._regex(t))
            return out
        if head == "re.*":
            return self._regex(term[1]).star()
        if head == "re.+":
            return self._regex(term[1]).plus()
        if head == "re.opt":
            return self._regex(term[1]).optional()
        if head == "re.range":
            low = term[1].value
            high = term[2].value
            codes = [self.alphabet.code(chr(o))
                     for o in range(ord(low), ord(high) + 1)
                     if chr(o) in self.alphabet]
            return NFA.from_symbols(codes)
        if isinstance(head, list) and len(head) >= 2 \
                and head[0] == "_" and head[1] == "re.loop":
            low, high = head[2], head[3]
            return self._regex(term[1]).repeat(low, high)
        raise UnsupportedConstraint("regex operator %r" % (head,))

    def _regex_source(self, term):
        """*term* re-rendered in the solver's compact regex syntax, or
        None when it has no such rendering.  Recording a source keeps
        parsed memberships printable, so print -> parse -> print is
        stable."""
        term = self._expand(term)
        if isinstance(term, str):
            if term == "re.allchar":
                return "."
            if term == "re.all":
                return ".*"
            return None
        head = term[0]
        if head in ("str.to_re", "str.to.re"):
            return "".join("\\" + c if c in _REGEX_META else c
                           for c in term[1].value) or "()"
        if head == "re.++":
            parts = [self._regex_source(t) for t in term[1:]]
            if None in parts:
                return None
            return "".join("(%s)" % p for p in parts)
        if head == "re.union":
            parts = [self._regex_source(t) for t in term[1:]]
            if None in parts:
                return None
            return "(%s)" % "|".join(parts)
        if head in ("re.*", "re.+", "re.opt"):
            inner = self._regex_source(term[1])
            if inner is None:
                return None
            return "(%s)%s" % (inner, {"re.*": "*", "re.+": "+",
                                       "re.opt": "?"}[head])
        if head == "re.range":
            def cls(c):
                return "\\" + c if c in "]^\\-" else c
            return "[%s-%s]" % (cls(term[1].value), cls(term[2].value))
        if isinstance(head, list) and len(head) >= 2 \
                and head[0] == "_" and head[1] == "re.loop":
            inner = self._regex_source(term[1])
            if inner is None:
                return None
            return "(%s){%d,%d}" % (inner, head[2], head[3])
        return None

    def _compact(self, nfa):
        """Shrink a Thompson-constructed automaton.

        ``re.union`` chains of single characters produce epsilon-heavy
        NFAs whose parallel paths defeat the flattener's class grouping;
        minimizing small automata restores the compact form.
        """
        base = nfa.without_epsilon().trim()
        if 0 < base.num_states <= 60:
            try:
                minimized = base.minimize(self.alphabet.codes())
                if minimized.num_states <= base.num_states:
                    return minimized
            except Exception:
                pass
        return base

    def _expand(self, term):
        if isinstance(term, str) and term in self.macros:
            return self._expand(self.macros[term])
        return term


def script_to_problem(sexprs, alphabet=DEFAULT_ALPHABET):
    """Convert parsed commands; returns an :class:`SmtScript`."""
    return _Converter(alphabet).run(sexprs)


def load_problem(text, alphabet=DEFAULT_ALPHABET):
    """Parse SMT-LIB *text* into an :class:`SmtScript`."""
    return script_to_problem(parse_sexprs(text), alphabet)
