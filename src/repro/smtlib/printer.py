"""Serialize string problems back to SMT-LIB 2.6 text.

Used to export generated benchmark suites as ``.smt2`` files and to
round-trip problems in tests.  Regular constraints print through their
source regex when one is recorded; otherwise the NFA is rendered as a
(possibly large) ``re.union`` of its words when finite, or rejected.
"""

from repro.alphabet import DEFAULT_ALPHABET
from repro.errors import UnsupportedConstraint
from repro.logic.formula import And, Atom, BoolConst, Not, Or
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint,
    StrVar, ToNum, WordEquation,
)
from repro.automata.regex import (
    parse_regex, RConcat, REmpty, REps, RRepeat, RSym, RUnion,
)


def _escape(text):
    """*text* as the body of an SMT-LIB 2.6 string literal.

    Quotes double; backslashes and non-printable characters go through
    ``\\u{..}`` escapes (a bare backslash would be re-read as the start
    of an escape sequence, breaking print -> parse round-trips).
    """
    out = []
    for ch in text:
        if ch == '"':
            out.append('""')
        elif ch == "\\":
            out.append("\\u{5c}")
        elif " " <= ch <= "~":
            out.append(ch)
        else:
            out.append("\\u{%x}" % ord(ch))
    return "".join(out)


def _term(term):
    parts = []
    for element in term:
        if isinstance(element, StrVar):
            parts.append(element.name)
        else:
            parts.append('"%s"' % _escape(element))
    if not parts:
        return '""'
    if len(parts) == 1:
        return parts[0]
    return "(str.++ %s)" % " ".join(parts)


def _symbol(name):
    if any(c in name for c in " ()|\""):
        return "|%s|" % name
    return name


def _expr(expr):
    terms = []
    for v, c in sorted(expr.coeffs.items()):
        name = _length_or_symbol(v)
        if c == 1:
            terms.append(name)
        else:
            terms.append("(* %d %s)" % (c, name))
    if expr.constant or not terms:
        terms.append(str(expr.constant))
    if len(terms) == 1:
        return terms[0]
    return "(+ %s)" % " ".join(terms)


def _length_or_symbol(name):
    if name.startswith("|") and name.endswith("|") and len(name) > 2:
        return "(str.len %s)" % _symbol(name[1:-1])
    return _symbol(name)


def _formula(formula):
    if isinstance(formula, BoolConst):
        return "true" if formula.value else "false"
    if isinstance(formula, Atom):
        return "(<= %s 0)" % _expr(formula.expr)
    if isinstance(formula, Not):
        return "(not %s)" % _formula(formula.arg)
    if isinstance(formula, And):
        return "(and %s)" % " ".join(_formula(a) for a in formula.args)
    if isinstance(formula, Or):
        return "(or %s)" % " ".join(_formula(a) for a in formula.args)
    raise UnsupportedConstraint("cannot print %r" % (formula,))


def _regex_node(node, alphabet):
    if isinstance(node, REmpty):
        return "re.none"
    if isinstance(node, REps):
        return '(str.to_re "")'
    if isinstance(node, RSym):
        codes = sorted(node.codes)
        if len(codes) == len(alphabet):
            return "re.allchar"
        # Contiguous character runs render as re.range, keeping classes
        # like [a-z] compact instead of a 26-way union.
        ords = sorted(ord(alphabet.char(c)) for c in codes)
        runs = []
        for o in ords:
            if runs and o == runs[-1][1] + 1:
                runs[-1][1] = o
            else:
                runs.append([o, o])
        parts = []
        for low, high in runs:
            if high - low >= 2:
                parts.append('(re.range "%s" "%s")'
                             % (_escape(chr(low)), _escape(chr(high))))
            else:
                parts.extend('(str.to_re "%s")' % _escape(chr(o))
                             for o in range(low, high + 1))
        if len(parts) == 1:
            return parts[0]
        return "(re.union %s)" % " ".join(parts)
    if isinstance(node, RConcat):
        return "(re.++ %s)" % " ".join(
            _regex_node(p, alphabet) for p in node.parts)
    if isinstance(node, RUnion):
        return "(re.union %s)" % " ".join(
            _regex_node(p, alphabet) for p in node.parts)
    if isinstance(node, RRepeat):
        inner = _regex_node(node.inner, alphabet)
        if (node.low, node.high) == (0, None):
            return "(re.* %s)" % inner
        if (node.low, node.high) == (1, None):
            return "(re.+ %s)" % inner
        if (node.low, node.high) == (0, 1):
            return "(re.opt %s)" % inner
        if node.high is None:
            return "(re.++ %s (re.* %s))" % (
                " ".join([inner] * node.low), inner)
        return "((_ re.loop %d %d) %s)" % (node.low, node.high, inner)
    raise UnsupportedConstraint("cannot print regex node %r" % (node,))


def _membership(constraint, alphabet):
    source = constraint.source
    if source is None:
        words = None
        if constraint.nfa.trim().num_states <= 60:
            words = constraint.nfa.enumerate_words(12, max_words=200)
        if words is None:
            raise UnsupportedConstraint(
                "regular constraint without printable source")
        parts = ['(str.to_re "%s")' % _escape(alphabet.decode_word(w))
                 for w in words]
        regex = "(re.union %s)" % " ".join(parts) if len(parts) != 1 \
            else parts[0]
        return "(str.in_re %s %s)" % (_symbol(constraint.var.name), regex)
    if source.startswith("!(") and source.endswith(")"):
        node = parse_regex(source[2:-1], alphabet)
        return "(not (str.in_re %s %s))" % (
            _symbol(constraint.var.name), _regex_node(node, alphabet))
    node = parse_regex(source, alphabet)
    return "(str.in_re %s %s)" % (_symbol(constraint.var.name),
                                  _regex_node(node, alphabet))


def problem_to_smtlib(problem, alphabet=DEFAULT_ALPHABET, logic="QF_SLIA",
                      expected=None):
    """Render *problem* as a complete ``.smt2`` script."""
    lines = ["(set-logic %s)" % logic]
    if expected:
        lines.append("(set-info :status %s)" % expected)
    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        lines.append("(declare-fun %s () String)" % _symbol(v.name))
    for name in sorted(problem.int_vars()):
        lines.append("(declare-fun %s () Int)" % _symbol(name))
    for constraint in problem:
        lines.append("(assert %s)" % _constraint(constraint, alphabet))
    lines.append("(check-sat)")
    return "\n".join(lines) + "\n"


def _constraint(constraint, alphabet):
    if isinstance(constraint, WordEquation):
        return "(= %s %s)" % (_term(constraint.lhs), _term(constraint.rhs))
    if isinstance(constraint, RegularConstraint):
        return _membership(constraint, alphabet)
    if isinstance(constraint, IntConstraint):
        return _formula(constraint.formula)
    if isinstance(constraint, ToNum):
        head = "str.to_int" if constraint.semantics is None \
            else "str.to_int.%s" % constraint.semantics.name
        return "(= %s (%s %s))" % (_symbol(constraint.result), head,
                                   _symbol(constraint.var.name))
    if isinstance(constraint, CharNeq):
        # Dialect head: CharNeq restricts both sides to at most one
        # character on top of the disequality.  Printing a generic
        # (not (= a b)) would re-desugar through diseq() on every parse,
        # growing the problem instead of reaching a round-trip fixpoint.
        return "(str.diseq.char %s %s)" % (_symbol(constraint.left.name),
                                           _symbol(constraint.right.name))
    if isinstance(constraint, CharCode):
        # The dialect head keeps the partial relation (|var| = 1 and
        # result = code) distinct from total str.to_code, so the parser
        # reconstructs CharCode instead of re-desugaring a disjunction.
        return "(= %s (str.to_code.partial %s))" % (
            _symbol(constraint.result), _symbol(constraint.var.name))
    if isinstance(constraint, Disjunction):
        branches = []
        for branch in constraint.branches:
            parts = [_constraint(c, alphabet) for c in branch]
            branches.append(parts[0] if len(parts) == 1
                            else "(and %s)" % " ".join(parts))
        if len(branches) == 1:
            return branches[0]
        return "(or %s)" % " ".join(branches)
    raise UnsupportedConstraint("cannot print %r" % (constraint,))
