"""Spawn-based supervised worker process pool.

The process-supervision logic every long-running consumer needs — hard
deadlines, crash detection, worker recycling — extracted from the bench
runner's private ``_spawn``/hard-kill bookkeeping and generalized so the
benchmark grid, the :class:`~repro.serve.service.SolverService`, and any
future batch front-end share exactly one implementation.

Model
-----

A :class:`WorkerPool` keeps ``jobs`` long-lived **spawn** worker
processes (spawn, not fork: a wedged or corrupted parent heap is never
inherited, matching how SMT-COMP-style portfolio runners sandbox
queries).  Each worker boots by calling a picklable *initializer* once to
build its handler, sends a ``ready`` handshake, then serves requests off
a duplex pipe.  The parent is purely event-driven:

* :meth:`WorkerPool.submit` queues a payload and returns an integer
  ticket; pending work is dispatched to *ready* idle workers only, so a
  request's hard deadline never includes interpreter boot time.
* :meth:`WorkerPool.poll` drives dispatch and supervision and returns
  :class:`PoolEvent` records — ``result`` (the handler's return value),
  ``died`` (the worker process exited before replying; carries the exit
  code), or ``killed`` (the request outlived its deadline and the worker
  was hard-killed: SIGTERM, one second of grace, then SIGKILL).
* A worker that dies or is killed is replaced immediately, so the pool
  always holds ``jobs`` workers; a worker that dies *before* its ready
  handshake counts toward a consecutive-boot-failure cap so a broken
  environment fails fast instead of spawn-looping.

Retry policy deliberately lives in the caller: the bench runner requeues
once and classifies, the service retries with backoff and quarantines.

Health & hygiene
----------------

Workers are recycled (quit + fresh spawn) after ``max_requests`` served
or once their resident set exceeds ``max_rss`` bytes (read from
``/proc``; the check degrades to a no-op where that is unavailable), so
an interpreter that slowly leaks cannot grow without bound.
:meth:`WorkerPool.healthcheck` sweeps idle workers and replaces any that
died silently.  :meth:`WorkerPool.shutdown` always reaps: quits idle
workers, hard-kills busy ones, and joins everything.

Telemetry
---------

With ``telemetry=True`` each request runs inside a fresh
:mod:`repro.obs` scope in the worker and its delta (counters,
histograms, per-phase durations, bounded span records) is shipped in the
result envelope (surfaced as :attr:`PoolEvent.telemetry`); periodic
worker-lifetime flushes go to ``telemetry_sink(delta, pid)``.  See
:mod:`repro.obs.pipeline` for the protocol contract.

Fault injection
---------------

The worker loop plants the ``serve.worker.request`` and
``serve.worker.result`` seams from :data:`repro.faults.CATALOG` and arms
``REPRO_INJECT_FAULT`` in every worker, so chaos tests can hang, crash,
or corrupt a worker *from the inside*.  Per-request specs travel with
:meth:`WorkerPool.submit` and are armed only around that request.
"""

import collections
import multiprocessing
import os
import time
from multiprocessing import connection as _mpconn

from repro import faults as _faults

_BOOT_FAILURE_CAP = 3

try:
    _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):
    _PAGE_SIZE = 4096


def rss_bytes(pid):
    """Resident set size of *pid* in bytes, or None where unknowable."""
    try:
        with open("/proc/%d/statm" % pid) as handle:
            return int(handle.read().split()[1]) * _PAGE_SIZE
    except (OSError, ValueError, IndexError):
        return None


class PoolEvent:
    """One supervision outcome surfaced by :meth:`WorkerPool.poll`.

    With pool telemetry on, ``result`` events additionally carry the
    worker's per-request telemetry delta (see
    :mod:`repro.obs.pipeline`) and the worker pid that produced it.
    """

    __slots__ = ("kind", "ticket", "value", "exitcode", "telemetry",
                 "worker")

    RESULT = "result"
    DIED = "died"
    KILLED = "killed"

    def __init__(self, kind, ticket, value=None, exitcode=None,
                 telemetry=None, worker=None):
        self.kind = kind
        self.ticket = ticket
        self.value = value
        self.exitcode = exitcode
        self.telemetry = telemetry
        self.worker = worker

    def __repr__(self):
        return "PoolEvent(%s, ticket=%d)" % (self.kind, self.ticket)


class _Worker:
    """One pool process: its pipe, serve count, and in-flight state."""

    __slots__ = ("process", "conn", "ready", "served", "ticket", "deadline")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.ready = False
        self.served = 0
        self.ticket = None      # in-flight ticket, None when idle
        self.deadline = None    # monotonic hard-kill time for the ticket


class _Pending:
    """One queued request."""

    __slots__ = ("ticket", "payload", "timeout", "specs")

    def __init__(self, ticket, payload, timeout, specs):
        self.ticket = ticket
        self.payload = payload
        self.timeout = timeout
        self.specs = specs


class WorkerPool:
    """A fixed-size pool of supervised spawn workers.

    *initializer* is a picklable callable run once inside each fresh
    worker with *init_args*; it returns the request handler
    (``handler(payload) -> result``).  *corrupter* is an optional
    picklable mutator used by the ``serve.worker.result`` corrupt seam.
    *timeout* on :meth:`submit` is the hard-kill deadline in seconds,
    measured from dispatch to a ready worker; callers fold their grace
    period in.
    """

    def __init__(self, initializer, init_args=(), jobs=2, grace=5.0,
                 max_requests=None, max_rss=None, corrupter=None,
                 worker_fault_specs=(), telemetry=False,
                 telemetry_sink=None, telemetry_flush_every=16):
        self._initializer = initializer
        self._init_args = tuple(init_args)
        self.jobs = max(1, int(jobs))
        self.grace = float(grace)
        self.max_requests = max_requests
        self.max_rss = max_rss
        self._corrupter = corrupter
        self._worker_fault_specs = tuple(worker_fault_specs)
        self.telemetry = bool(telemetry)
        self._telemetry_sink = telemetry_sink
        self._telemetry_flush_every = max(1, int(telemetry_flush_every))
        self._ctx = multiprocessing.get_context("spawn")
        self._workers = []
        self._pending = collections.deque()
        self._inflight = {}          # ticket -> _Worker
        self._next_ticket = 0
        self._boot_failures = 0
        self._closed = False
        self.counters = {"spawned": 0, "recycled": 0, "hard_kills": 0,
                         "deaths": 0, "cancelled": 0}
        for _ in range(self.jobs):
            self._workers.append(self._spawn_worker())

    # -- introspection ------------------------------------------------------

    @property
    def pending_count(self):
        return len(self._pending)

    @property
    def inflight_count(self):
        return len(self._inflight)

    @property
    def worker_count(self):
        return len(self._workers)

    def is_pending(self, ticket):
        """True while *ticket* is queued and not yet on a worker."""
        return any(item.ticket == ticket for item in self._pending)

    def is_inflight(self, ticket):
        return ticket in self._inflight

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_worker(self):
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self._initializer, self._init_args,
                  self._corrupter, self._worker_fault_specs,
                  self.telemetry, self._telemetry_flush_every),
            daemon=True)
        process.start()
        child_conn.close()
        self.counters["spawned"] += 1
        return _Worker(process, parent_conn)

    def _replace(self, worker):
        """Swap a dead/killed/retired worker for a fresh one."""
        try:
            worker.conn.close()
        except OSError:
            pass
        fresh = self._spawn_worker()
        self._workers[self._workers.index(worker)] = fresh
        return fresh

    def _hard_kill(self, process):
        """Terminate, then SIGKILL if it ignores that; always join."""
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join()

    def _retire(self, worker):
        """Graceful quit of an idle worker, then replace it."""
        try:
            worker.conn.send(("quit",))
        except (OSError, ValueError):
            pass
        worker.process.join(1.0)
        if worker.process.is_alive():
            self._hard_kill(worker.process)
        self._replace(worker)

    def _maybe_recycle(self, worker):
        """Retire *worker* when its request count or RSS crossed the
        recycling ceilings (idle workers only)."""
        over_count = (self.max_requests is not None
                      and worker.served >= self.max_requests)
        over_rss = False
        if not over_count and self.max_rss is not None:
            rss = rss_bytes(worker.process.pid)
            over_rss = rss is not None and rss > self.max_rss
        if over_count or over_rss:
            self.counters["recycled"] += 1
            self._retire(worker)

    def healthcheck(self):
        """Replace idle workers that died silently; returns the number of
        live workers after the sweep."""
        for worker in list(self._workers):
            if worker.ticket is None and not worker.process.is_alive():
                self._note_boot_failure(worker)
                self.counters["deaths"] += 1
                self._replace(worker)
        return sum(1 for w in self._workers if w.process.is_alive())

    def _note_boot_failure(self, worker):
        if worker.ready:
            self._boot_failures = 0
            return
        self._boot_failures += 1
        if self._boot_failures >= _BOOT_FAILURE_CAP:
            self.shutdown()
            raise RuntimeError(
                "worker pool: %d consecutive workers died before their "
                "ready handshake (exit code %s); refusing to spawn-loop"
                % (self._boot_failures, worker.process.exitcode))

    # -- submission & supervision -------------------------------------------

    def submit(self, payload, timeout, fault_specs=(), front=False):
        """Queue *payload*; returns the ticket.  The request is
        hard-killed *timeout* seconds after dispatch to a worker."""
        if self._closed:
            raise RuntimeError("worker pool is shut down")
        ticket = self._next_ticket
        self._next_ticket += 1
        item = _Pending(ticket, payload, float(timeout), tuple(fault_specs))
        if front:
            self._pending.appendleft(item)
        else:
            self._pending.append(item)
        self._dispatch()
        return ticket

    def cancel(self, ticket):
        """Abandon *ticket*: dequeue it, or hard-kill the worker running
        it (the worker is replaced).  True if there was anything to
        cancel; no event is ever emitted for a cancelled ticket."""
        for item in self._pending:
            if item.ticket == ticket:
                self._pending.remove(item)
                self.counters["cancelled"] += 1
                return True
        worker = self._inflight.pop(ticket, None)
        if worker is not None:
            self._hard_kill(worker.process)
            self.counters["cancelled"] += 1
            self._replace(worker)
            return True
        return False

    def _dispatch(self):
        for worker in self._workers:
            if not self._pending:
                break
            if worker.ticket is not None or not worker.ready:
                continue
            item = self._pending[0]
            try:
                worker.conn.send(("req", item.ticket, item.payload,
                                  item.specs))
            except (OSError, ValueError):
                # Died since we last looked; poll() will reap it.
                continue
            self._pending.popleft()
            worker.ticket = item.ticket
            worker.deadline = time.monotonic() + item.timeout
            self._inflight[item.ticket] = worker

    def _wait_timeout(self, block):
        deadlines = [w.deadline for w in self._workers
                     if w.ticket is not None]
        timeout = max(0.0, float(block))
        if deadlines:
            timeout = min(timeout,
                          max(0.0, min(deadlines) - time.monotonic()))
        return timeout

    def poll(self, block=0.0):
        """Dispatch pending work, wait up to *block* seconds for worker
        traffic, enforce deadlines; returns a list of :class:`PoolEvent`.
        """
        self._dispatch()
        events = []
        conns = {w.conn: w for w in self._workers}
        ready = _mpconn.wait(list(conns), self._wait_timeout(block)) \
            if conns else []
        for conn in ready:
            worker = conns[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._on_death(worker, events)
                continue
            kind = message[0]
            if kind == "ready":
                worker.ready = True
                self._boot_failures = 0
            elif kind == "tel":
                # Periodic worker-lifetime flush; never an event.
                if self._telemetry_sink is not None:
                    self._telemetry_sink(message[1], worker.process.pid)
            elif kind == "res":
                ticket, value = message[1], message[2]
                delta = message[3] if len(message) > 3 else None
                if self._inflight.get(ticket) is worker:
                    del self._inflight[ticket]
                    events.append(PoolEvent(PoolEvent.RESULT, ticket,
                                            value=value, telemetry=delta,
                                            worker=worker.process.pid))
                worker.ticket = None
                worker.deadline = None
                worker.served += 1
                self._maybe_recycle(worker)
        now = time.monotonic()
        for worker in list(self._workers):
            if worker.ticket is not None and worker.deadline <= now:
                ticket = worker.ticket
                self._inflight.pop(ticket, None)
                self._hard_kill(worker.process)
                self.counters["hard_kills"] += 1
                events.append(PoolEvent(PoolEvent.KILLED, ticket,
                                        exitcode=worker.process.exitcode))
                self._replace(worker)
        self._dispatch()
        return events

    def _on_death(self, worker, events):
        worker.process.join(self.grace)
        exitcode = worker.process.exitcode
        ticket = worker.ticket
        if ticket is not None:
            self._inflight.pop(ticket, None)
            self.counters["deaths"] += 1
            events.append(PoolEvent(PoolEvent.DIED, ticket,
                                    exitcode=exitcode))
            self._replace(worker)
        else:
            self.counters["deaths"] += 1
            self._note_boot_failure(worker)
            self._replace(worker)

    # -- teardown -----------------------------------------------------------

    def shutdown(self):
        """Reap everything: quit idle workers, hard-kill busy ones, join
        and close every pipe.  Pending work is dropped (callers drain
        first if they care).  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        self._inflight.clear()
        for worker in self._workers:
            if worker.ticket is None and worker.process.is_alive():
                try:
                    worker.conn.send(("quit",))
                except (OSError, ValueError):
                    pass
        for worker in self._workers:
            worker.process.join(1.0)
            if worker.process.is_alive():
                self._hard_kill(worker.process)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False


def _pool_worker_main(conn, initializer, init_args, corrupter, worker_specs,
                      telemetry=False, flush_every=16):
    """Child entry point: build the handler once, then serve requests.

    Handler exceptions are deliberately *not* caught: an escape kills the
    process and the parent classifies it as a worker death — which is
    exactly how the ``serve.worker.request`` raise seam models a crash.

    With *telemetry* on, each request runs under a **fresh** tracer and
    metrics registry (installed as the ambient obs scope so the handler
    and everything below it report into it) and the resulting delta rides
    fourth in the ``res`` message; worker-lifetime stats (request count,
    RSS, uptime) are flushed as ``tel`` messages every *flush_every*
    requests and reset, keeping every shipped delta disjoint.
    """
    _faults.arm_from_env()
    for spec in worker_specs:
        _faults.arm(_faults.parse_spec(spec))
    if telemetry:
        from repro.obs.metrics import Metrics
        from repro.obs.pipeline import encode_metrics, telemetry_delta
        from repro.obs.tracer import Tracer, scope
        life = Metrics()
        boot = time.monotonic()
    handler = initializer(*init_args)
    conn.send(("ready", os.getpid()))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "quit":
            break
        _, ticket, payload, specs = message
        if telemetry:
            tracer, metrics = Tracer(), Metrics()
            with _faults.injected(specs=specs):
                with scope(tracer, metrics):
                    if _faults.ARMED:
                        _faults.point("serve.worker.request")
                    result = handler(payload)
                    if _faults.ARMED:
                        _faults.point("serve.worker.result")
                        if corrupter is not None:
                            result = _faults.corrupt(
                                "serve.worker.result", result, corrupter)
            conn.send(("res", ticket, result,
                       telemetry_delta(tracer, metrics)))
            life.add("worker.requests")
            if life.counters["worker.requests"] >= flush_every:
                life.gauge("worker.uptime_s", time.monotonic() - boot)
                rss = rss_bytes(os.getpid())
                if rss is not None:
                    life.gauge("worker.rss_bytes", rss)
                conn.send(("tel", encode_metrics(life)))
                life = Metrics()
            continue
        with _faults.injected(specs=specs):
            if _faults.ARMED:
                _faults.point("serve.worker.request")
            result = handler(payload)
            if _faults.ARMED:
                _faults.point("serve.worker.result")
                if corrupter is not None:
                    result = _faults.corrupt("serve.worker.result", result,
                                             corrupter)
        conn.send(("res", ticket, result))
    if telemetry and life.counters:
        try:
            conn.send(("tel", encode_metrics(life)))
        except (OSError, ValueError):
            pass
    conn.close()
