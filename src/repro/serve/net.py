"""The asyncio network front door: sockets in, exactly-one-answer out.

``repro netserve`` puts the supervised solving stack (PR 4's
``SolverService`` shards, PR 8's shared persistent store) behind a TCP
listener.  Callers are assumed adversarial and bursty — CI fleets
re-asking the same query, scripts that hang up early, clients that never
set a deadline — so the door is built robustness-first, as an
**admission ladder** every request descends until something answers it:

1. **drain** — a server that received SIGTERM answers
   ``unknown(shutdown)`` at the door;
2. **auth** — with tenants configured, an unknown API key answers
   ``unknown(unauthorized)`` (HTTP 401);
3. **quota** — each tenant holds a token bucket; an empty bucket sheds
   with ``unknown(throttled)`` (HTTP 429) before any work is accepted;
4. **intake bound** — more than ``max_open_requests`` open solves shed
   with ``unknown(overloaded)`` (HTTP 503): reject, don't buffer;
5. **parse** — malformed SMT-LIB answers ``unknown(parse-error)``;
6. **router** — coalescing, the verdict cache, shard circuit breakers
   and reroutes (:mod:`repro.serve.router`);
7. **deadline** — the caller's ``deadline_s`` rides the wire, becomes
   the shard's solver budget and the worker's ``Budget`` wall clock, and
   bounds the response wait: a request whose caller is already dead is
   answered ``unknown(deadline)`` and no layer below keeps working past
   it.

Two wire protocols share one port, sniffed from the first bytes:

* **length-prefixed JSON** — 4-byte big-endian length, then a JSON
  object ``{"op": "solve", "id": 7, "smt2": "...", "deadline_s": 2.0,
  "api_key": "..."}``.  Frames are handled concurrently per connection
  and responses echo ``id``, so clients may pipeline.
* **HTTP/1.1** — ``POST /solve`` (body: SMT-LIB text, headers
  ``X-Api-Key`` / ``X-Deadline-S``), ``POST /validate``, ``POST
  /fuzz``, ``GET /metrics`` (the PR 6 Prometheus exposition — point
  ``repro top http://host:port/metrics`` at it), ``GET /healthz``, and
  the chaos/admin surface ``POST /admin/kill-shard`` / ``/admin/
  restart-shard`` / ``/admin/fault`` / ``GET /admin/state`` guarded by
  ``X-Admin-Key``.

Fault seams (:mod:`repro.faults`): ``net.accept`` fires per connection,
``net.read`` per request read, ``net.write`` per response write,
``net.route`` inside the router.  A raise at accept/read/write drops the
*connection* (the client retries); a raise at route is caught and
answered ``unknown(route-error)`` — no seam ever leaks a traceback to
the wire or kills the server.
"""

import asyncio
import json
import time

from repro import faults as _faults
from repro.config import NetConfig, SolverConfig
from repro.obs import TelemetryAggregator, render_prometheus, write_snapshot
from repro.serve.router import ShardRouter
from repro.serve.service import SolverService
from repro.smtlib import load_problem
from repro.strings import check_model

MAX_FUZZ_N = 64
_HTTP_METHODS = (b"GET ", b"POST", b"PUT ", b"HEAD", b"DELE", b"OPTI",
                 b"PATC")


class TokenBucket:
    """A per-tenant token bucket: *rate* tokens/second up to *burst*."""

    __slots__ = ("rate", "burst", "tokens", "updated")

    def __init__(self, rate, burst, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = float(burst)
        self.updated = clock()

    def take(self, now, cost=1.0):
        """Spend *cost* tokens; False when the bucket cannot cover it."""
        elapsed = max(0.0, now - self.updated)
        self.updated = now
        self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        if self.tokens < cost:
            return False
        self.tokens -= cost
        return True


def shed_response(reason, name=None, detail=None, retry_after=None):
    """A well-formed answer produced at the door, pre-solver."""
    payload = {"status": "unknown", "reason": reason,
               "answer": "unknown(%s)" % reason}
    if name is not None:
        payload["name"] = name
    if detail is not None:
        payload["detail"] = detail
    if retry_after is not None:
        payload["retry_after_s"] = retry_after
    return payload


def result_payload(result, ticket=None):
    """JSON shape of a :class:`~repro.serve.service.ServeResult`."""
    payload = {"name": result.name, "status": result.status,
               "reason": result.reason, "answer": result.answer,
               "seconds": round(result.seconds, 6),
               "winner": result.winner, "retries": result.retries}
    if result.model is not None:
        payload["model"] = dict(result.model)
    for key in ("degraded_to", "stopped_by", "budget_tripped",
                "served_from"):
        if result.stats.get(key):
            payload[key] = result.stats[key]
    if ticket is not None:
        payload["shard"] = ticket.shard
        payload["coalesced"] = ticket.coalesced
        payload["reroutes"] = ticket.reroutes
    return payload


class NetServer:
    """The front door: admission, deadline propagation, shard routing.

    Construction wires the whole stack: one shared
    :class:`TelemetryAggregator` receives worker deltas from every
    shard plus the door's own ``net.*`` counters (what ``/metrics``
    serves), and every shard's workers mount the same persistent store
    at *store_path*, so a restarted shard warm-starts from its
    predecessors' verdicts.
    """

    def __init__(self, solver_config=None, net_config=None, grace=2.0,
                 store_path=None, portfolio=False, aggregator=None,
                 flight_dir=None, slo_seconds=None, metrics_out=None,
                 metrics_interval=2.0, max_requests_per_worker=512,
                 pump_interval=0.004):
        self.config = net_config or NetConfig()
        self.solver_config = solver_config or SolverConfig()
        self.grace = float(grace)
        self.store_path = store_path
        self.portfolio = portfolio
        self.aggregator = aggregator or TelemetryAggregator()
        self.metrics = self.aggregator.metrics
        self.flight_dir = flight_dir
        self.slo_seconds = slo_seconds
        self.metrics_out = metrics_out
        self.metrics_interval = float(metrics_interval)
        self.max_requests_per_worker = max_requests_per_worker
        self.pump_interval = float(pump_interval)
        self.router = ShardRouter(
            self._shard_factory, shards=self.config.shards,
            coalesce=self.config.coalesce,
            cache_size=self.config.cache_size,
            breaker_threshold=self.config.breaker_threshold,
            breaker_cooldown=self.config.breaker_cooldown_s,
            restart_after=self.config.restart_after_s,
            metrics=self.metrics)
        self._buckets = {}          # tenant name -> TokenBucket
        self._waiters = []          # (ticket, asyncio.Future)
        self._open = 0              # admitted, unanswered solve requests
        self._connections = 0
        self._draining = False
        self._server = None
        self._stopped = None        # asyncio.Event once started
        self._tasks = []
        self._last_snapshot = 0.0
        self.started_at = time.monotonic()

    # -- wiring --------------------------------------------------------------

    def _shard_factory(self, index):
        """One shard: a full SolverService on the shared aggregator and
        persistent store.  Also the restart path after a kill."""
        portfolio = None
        if self.portfolio:
            from repro.serve.service import default_portfolio
            portfolio = default_portfolio()
        per_shard = max(8, self.config.max_open_requests
                        // max(1, self.config.shards))
        return SolverService(
            config=self.solver_config, portfolio=portfolio,
            jobs=self.config.jobs_per_shard,
            timeout=self.config.max_deadline_s, grace=self.grace,
            queue_limit=per_shard, aggregator=self.aggregator,
            flight_dir=self.flight_dir, slo_seconds=self.slo_seconds,
            store_path=self.store_path,
            max_requests_per_worker=self.max_requests_per_worker)

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the listener and start the pump task; returns the bound
        ``(host, port)`` (port resolves 0 to the kernel's pick)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port)
        self._tasks.append(asyncio.ensure_future(self._pump_loop()))
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        self.config.port = port
        return host, port

    async def serve_forever(self):
        """Run until :meth:`initiate_shutdown` completes the drain."""
        await self._stopped.wait()

    def initiate_shutdown(self):
        """SIGTERM path: stop accepting, answer queued work
        ``unknown(shutdown)``, let in-flight solves finish or die at
        their deadline, then reap every pool — without ever blocking
        the event loop.  Idempotent; safe from a signal handler."""
        if self._draining:
            return
        self._draining = True
        self.metrics.add("net.drains")
        if self._server is not None:
            self._server.close()
        self.router.begin_drain()
        self._tasks.append(asyncio.ensure_future(self._finish_drain()))

    async def _finish_drain(self):
        budget = self.config.max_deadline_s + self.grace + 2.0
        deadline = time.monotonic() + budget
        while (self.router.open_flights or self._open) \
                and time.monotonic() < deadline:
            await asyncio.sleep(self.pump_interval)
        # One beat for connection handlers to flush their last writes.
        await asyncio.sleep(self.pump_interval * 2)
        self.router.shutdown(drain=False)
        self._snapshot(force=True)
        if self._stopped is not None:
            self._stopped.set()

    async def close(self):
        """Hard teardown for tests: no drain courtesy."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in self._tasks:
            task.cancel()
        self.router.shutdown(drain=False)
        if self._stopped is not None:
            self._stopped.set()

    async def _pump_loop(self):
        """The heartbeat: drive the router, resolve finished waiters,
        keep door gauges fresh, snapshot ``--metrics-out``."""
        while not (self._stopped is not None and self._stopped.is_set()):
            try:
                self.router.pump(0.0)
            except Exception:
                # The router never raises in normal operation; a chaos
                # seam left armed process-wide must not kill the pump.
                self.metrics.add("net.pump_errors")
            if self._waiters:
                live = []
                for ticket, future in self._waiters:
                    if ticket.done:
                        if not future.done():
                            future.set_result(ticket.result)
                    elif not future.done():
                        live.append((ticket, future))
                self._waiters = live
            self.metrics.gauge("net.open_requests", self._open)
            self.metrics.gauge("net.connections", self._connections)
            self.metrics.gauge(
                "net.uptime_s", time.monotonic() - self.started_at)
            self._snapshot()
            await asyncio.sleep(self.pump_interval)

    def _snapshot(self, force=False):
        if not self.metrics_out:
            return
        now = time.monotonic()
        if force or now - self._last_snapshot >= self.metrics_interval:
            write_snapshot(self.metrics_out, self.aggregator)
            self._last_snapshot = now

    # -- admission -----------------------------------------------------------

    def _admit(self, key, cost=1.0):
        """Descend the door rungs; returns ``(tenant, shed_payload)`` —
        exactly one of the pair is None."""
        config = self.config
        if self._draining:
            self.metrics.add("net.shed")
            self.metrics.add("net.shutdown_answers")
            return None, shed_response("shutdown")
        tenant = config.tenant_for(key or "")
        if tenant is None:
            self.metrics.add("net.shed")
            self.metrics.add("net.unauthorized")
            return None, shed_response("unauthorized")
        self.metrics.add("net.tenant.%s.requests" % tenant.name)
        bucket = self._buckets.get(tenant.name)
        if bucket is None:
            bucket = TokenBucket(tenant.rps, tenant.burst)
            self._buckets[tenant.name] = bucket
        if not bucket.take(time.monotonic(), cost):
            self.metrics.add("net.shed")
            self.metrics.add("net.throttled")
            self.metrics.add("net.tenant.%s.shed" % tenant.name)
            return None, shed_response("throttled",
                                       retry_after=config.retry_after_s)
        # The intake bound counts *work* (open router flights), not
        # waiters: a coalesced follower or a verdict-cache hit costs the
        # solvers nothing and must not trip the shed.  Waiters are still
        # bounded — at a generous multiple, against pathological fan-in.
        if self.router.open_flights >= config.max_open_requests \
                or self._open >= 8 * config.max_open_requests:
            self.metrics.add("net.shed")
            self.metrics.add("net.overloaded")
            self.metrics.add("net.tenant.%s.shed" % tenant.name)
            return None, shed_response("overloaded",
                                       retry_after=config.retry_after_s)
        return tenant, None

    def _deadline(self, raw):
        """Clamp the caller's deadline into (0, max]; None means the
        caller's budget is already spent."""
        config = self.config
        if raw is None:
            return config.default_deadline_s
        try:
            seconds = float(raw)
        except (TypeError, ValueError):
            return config.default_deadline_s
        if seconds <= 0:
            return None
        return min(seconds, config.max_deadline_s)

    # -- request handling ----------------------------------------------------

    async def handle_request(self, obj):
        """One logical request (already decoded); returns the response
        payload dict.  Shared by both wire protocols."""
        op = obj.get("op", "solve")
        key = obj.get("api_key")
        if op == "health":
            return self._health()
        if op == "metrics":
            return {"metrics": self.render_metrics()}
        if op.startswith("admin."):
            return self._admin(op[len("admin."):], obj)
        if op == "validate":
            tenant, shed = self._admit(key)
            if shed is not None:
                return shed
            return self._validate(obj)
        if op == "fuzz":
            n = min(int(obj.get("n") or 8), MAX_FUZZ_N)
            tenant, shed = self._admit(key, cost=float(max(1, n)))
            if shed is not None:
                return shed
            return await self._fuzz(obj, n)
        if op == "solve":
            tenant, shed = self._admit(key)
            if shed is not None:
                return shed
            return await self._solve(obj, tenant)
        self.metrics.add("net.bad_requests")
        return shed_response("bad-request", detail="unknown op %r" % op)

    async def _solve(self, obj, tenant):
        name = str(obj.get("name") or "wire")
        smt2 = obj.get("smt2")
        if not isinstance(smt2, str) or not smt2.strip():
            self.metrics.add("net.bad_requests")
            return shed_response("bad-request", name=name,
                                 detail="missing smt2 text")
        deadline_s = self._deadline(obj.get("deadline_s"))
        if deadline_s is None:
            self.metrics.add("net.deadline_expired")
            return shed_response("deadline", name=name,
                                 detail="deadline spent before admission")
        try:
            script = load_problem(smt2)
        except Exception as exc:
            self.metrics.add("net.parse_errors")
            return shed_response("parse-error", name=name,
                                 detail=str(exc)[:200])
        self._open += 1
        try:
            try:
                ticket = self.router.submit(script.problem, name=name,
                                            timeout=deadline_s)
            except Exception:
                # The net.route seam (or a genuine router bug): answer,
                # never crash the connection.
                self.metrics.add("net.route_errors")
                return shed_response("route-error", name=name)
            result = await self._await_ticket(ticket, deadline_s)
            if result is None:
                self.metrics.add("net.deadline_expired")
                return shed_response("deadline", name=name,
                                     detail="no answer within %.3fs"
                                     % deadline_s)
            self.metrics.add("net.tenant.%s.answers" % tenant.name)
            payload = result_payload(result, ticket)
            if script.expected in ("sat", "unsat"):
                payload["expected"] = script.expected
            return payload
        finally:
            self._open -= 1

    async def _await_ticket(self, ticket, deadline_s):
        """The response-side deadline: give the router until the
        caller's deadline (plus kill grace), then stop waiting — the
        caller is gone, nobody downstream should keep serving it."""
        if ticket.done:
            return ticket.result
        future = asyncio.get_running_loop().create_future()
        self._waiters.append((ticket, future))
        try:
            return await asyncio.wait_for(future,
                                          deadline_s + self.grace + 0.5)
        except asyncio.TimeoutError:
            return None

    def _validate(self, obj):
        smt2, model = obj.get("smt2"), obj.get("model")
        if not isinstance(smt2, str) or not isinstance(model, dict):
            self.metrics.add("net.bad_requests")
            return shed_response("bad-request",
                                 detail="validate wants smt2 + model")
        try:
            script = load_problem(smt2)
        except Exception as exc:
            self.metrics.add("net.parse_errors")
            return shed_response("parse-error", detail=str(exc)[:200])
        try:
            ok = bool(check_model(script.problem, model))
        except Exception:
            ok = False
        self.metrics.add("net.validations")
        return {"valid": ok}

    async def _fuzz(self, obj, n):
        """Serve-side traffic synthesis: *n* seeded generator problems
        routed like any other request, certified witnesses cross-checked
        against the verdicts (a wrong answer here is a soundness bug)."""
        import random

        from repro.diff.generator import GenConfig, generate

        seed = int(obj.get("seed") or 0)
        max_len = min(int(obj.get("max_len") or 3), 6)
        deadline_s = self._deadline(obj.get("deadline_s"))
        if deadline_s is None:
            self.metrics.add("net.deadline_expired")
            return shed_response("deadline")
        rng = random.Random(seed)
        config = GenConfig(max_len=max_len)
        jobs = []
        self._open += n
        try:
            for index in range(n):
                generated = generate(rng, config, seed_index=index)
                try:
                    ticket = self.router.submit(
                        generated.problem, name="fuzz-%d-%d" % (seed, index),
                        timeout=deadline_s)
                except Exception:
                    self.metrics.add("net.route_errors")
                    jobs.append((generated, None))
                    continue
                jobs.append((generated, ticket))
            counts = {}
            wrong = 0
            for generated, ticket in jobs:
                if ticket is None:
                    counts["unknown(route-error)"] = \
                        counts.get("unknown(route-error)", 0) + 1
                    continue
                result = await self._await_ticket(ticket, deadline_s)
                answer = "unknown(deadline)" if result is None \
                    else result.answer
                counts[answer] = counts.get(answer, 0) + 1
                if result is not None and generated.certified \
                        and result.status == "unsat":
                    wrong += 1
        finally:
            self._open -= n
        self.metrics.add("net.fuzz_problems", n)
        if wrong:
            self.metrics.add("net.fuzz_wrong", wrong)
        return {"n": n, "seed": seed, "answers": counts, "wrong": wrong,
                "certified": sum(1 for g, _ in jobs if g.certified)}

    def _health(self):
        return {"ok": not self._draining,
                "draining": self._draining,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "open_requests": self._open,
                "shards": self.router.shard_states()}

    def render_metrics(self):
        return render_prometheus(self.aggregator)

    # -- admin / chaos surface ----------------------------------------------

    def _admin(self, action, obj):
        admin_key = self.config.admin_key
        if admin_key is not None and obj.get("admin_key") != admin_key:
            self.metrics.add("net.unauthorized")
            return shed_response("unauthorized")
        if action == "state":
            return {"shards": self.router.shard_states(),
                    "counters": dict(self.router.counters),
                    "open_requests": self._open,
                    "draining": self._draining}
        if action == "kill-shard":
            index = int(obj.get("shard") or 0)
            if not 0 <= index < self.router.shard_count:
                return shed_response("bad-request", detail="no such shard")
            return {"killed": self.router.kill_shard(index),
                    "shard": index}
        if action == "restart-shard":
            index = int(obj.get("shard") or 0)
            if not 0 <= index < self.router.shard_count:
                return shed_response("bad-request", detail="no such shard")
            return {"restarted": self.router.restart_shard(index),
                    "shard": index}
        if action == "fault":
            spec = obj.get("spec")
            try:
                fault = _faults.arm(_faults.parse_spec(spec))
            except (TypeError, ValueError) as exc:
                return shed_response("bad-request", detail=str(exc)[:200])
            self.metrics.add("net.faults_armed")
            return {"armed": repr(fault)}
        if action == "disarm":
            _faults.disarm(obj.get("point"))
            return {"disarmed": True}
        if action == "drain":
            self.initiate_shutdown()
            return {"draining": True}
        return shed_response("bad-request",
                             detail="unknown admin action %r" % action)

    # -- connection handling -------------------------------------------------

    async def _on_connection(self, reader, writer):
        self._connections += 1
        self.metrics.add("net.accepts")
        try:
            if _faults.ARMED:
                _faults.point("net.accept")
            head = await reader.readexactly(4)
            if head in _HTTP_METHODS:
                await self._serve_http(head, reader, writer)
            else:
                await self._serve_frames(head, reader, writer)
        except Exception:
            # An armed net.* seam, a torn read, a client hangup: the
            # connection is dropped, counted, and never a traceback.
            self.metrics.add("net.dropped_connections")
        finally:
            self._connections -= 1
            try:
                writer.close()
            except Exception:
                pass

    # -- length-prefixed JSON ------------------------------------------------

    async def _serve_frames(self, head, reader, writer):
        """The LPJ loop: frames dispatch concurrently, responses echo
        ``id`` and serialize through one writer lock."""
        lock = asyncio.Lock()
        pending = set()
        length = int.from_bytes(head, "big")
        try:
            while True:
                if length > self.config.max_frame_bytes:
                    await self._send_frame(
                        writer, lock,
                        shed_response("too-large",
                                      detail="%d byte frame" % length))
                    break
                if _faults.ARMED:
                    _faults.point("net.read")
                body = await reader.readexactly(length)
                try:
                    obj = json.loads(body.decode("utf-8"))
                    if not isinstance(obj, dict):
                        raise ValueError("frame is not an object")
                except (ValueError, UnicodeDecodeError) as exc:
                    self.metrics.add("net.bad_requests")
                    await self._send_frame(
                        writer, lock,
                        shed_response("bad-request",
                                      detail=str(exc)[:200]))
                    # A desynchronized stream cannot be re-framed.
                    break
                task = asyncio.ensure_future(
                    self._frame_task(obj, writer, lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
                head = await reader.readexactly(4)
                length = int.from_bytes(head, "big")
        except asyncio.IncompleteReadError:
            pass                     # client hung up between frames
        finally:
            if pending:
                await asyncio.wait(pending,
                                   timeout=self.config.max_deadline_s
                                   + self.grace + 1.0)

    async def _frame_task(self, obj, writer, lock):
        rid = obj.get("id")
        try:
            payload = await self.handle_request(obj)
        except Exception as exc:
            # Belt and braces: no handler bug may drop a response.
            self.metrics.add("net.internal_errors")
            payload = shed_response("internal-error",
                                    detail=type(exc).__name__)
        if rid is not None:
            payload = dict(payload, id=rid)
        try:
            await self._send_frame(writer, lock, payload)
        except (ConnectionError, OSError, RuntimeError):
            self.metrics.add("net.dropped_connections")

    async def _send_frame(self, writer, lock, payload):
        data = json.dumps(payload, default=str).encode("utf-8")
        async with lock:
            if _faults.ARMED:
                _faults.point("net.write")
            writer.write(len(data).to_bytes(4, "big") + data)
            await writer.drain()

    # -- HTTP/1.1 ------------------------------------------------------------

    async def _serve_http(self, head, reader, writer):
        keep_alive = True
        first = head
        while keep_alive:
            request = await self._read_http(first, reader)
            if request is None:
                return
            first = None
            method, path, version, headers, body = request
            status, payload, content_type = await self._dispatch_http(
                method, path, headers, body)
            keep_alive = (version == "HTTP/1.1"
                          and headers.get("connection", "") != "close"
                          and not self._draining)
            await self._send_http(writer, status, payload, content_type,
                                  keep_alive)

    async def _read_http(self, first, reader):
        """One request head + body; *first* carries the 4 sniffed bytes
        of the first request on the connection."""
        try:
            if _faults.ARMED:
                _faults.point("net.read")
            head = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if first is not None:
            head = first + head
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) < 3:
            return None
        method, path, version = parts[0], parts[1], parts[2]
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                key, value = line.split(":", 1)
                headers[key.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > self.config.max_frame_bytes:
            return method, path, version, headers, None
        body = await reader.readexactly(length) if length else b""
        return method, path, version, headers, body

    async def _dispatch_http(self, method, path, headers, body):
        """(status, payload-or-text, content type) for one request."""
        if body is None:
            self.metrics.add("net.bad_requests")
            return 413, shed_response("too-large"), "application/json"
        key = headers.get("x-api-key")
        deadline_raw = headers.get("x-deadline-s")
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/metrics":
            return 200, self.render_metrics(), "text/plain; version=0.0.4"
        if method == "GET" and path in ("/healthz", "/health"):
            payload = self._health()
            return (200 if payload["ok"] else 503), payload, \
                "application/json"
        if method == "GET" and path == "/admin/state":
            payload = self._admin("state",
                                  {"admin_key": headers.get("x-admin-key")})
            return self._admin_status(payload), payload, "application/json"
        if method == "POST" and path.startswith("/admin/"):
            obj = self._json_body(body)
            obj["admin_key"] = headers.get("x-admin-key")
            payload = self._admin(path[len("/admin/"):], obj)
            return self._admin_status(payload), payload, "application/json"
        if method == "POST" and path == "/solve":
            content = headers.get("content-type", "")
            if "json" in content:
                obj = self._json_body(body)
            else:
                obj = {"smt2": body.decode("utf-8", "replace")}
            obj.setdefault("op", "solve")
            obj.setdefault("api_key", key)
            if deadline_raw is not None:
                obj.setdefault("deadline_s", deadline_raw)
            payload = await self.handle_request(obj)
            return self._solve_status(payload), payload, "application/json"
        if method == "POST" and path in ("/validate", "/fuzz"):
            obj = self._json_body(body)
            obj["op"] = path[1:]
            obj.setdefault("api_key", key)
            if deadline_raw is not None:
                obj.setdefault("deadline_s", deadline_raw)
            payload = await self.handle_request(obj)
            return self._solve_status(payload), payload, "application/json"
        self.metrics.add("net.bad_requests")
        return 404, shed_response("bad-request",
                                  detail="no route %s %s" % (method, path)), \
            "application/json"

    @staticmethod
    def _json_body(body):
        try:
            obj = json.loads(body.decode("utf-8")) if body else {}
            return obj if isinstance(obj, dict) else {}
        except (ValueError, UnicodeDecodeError):
            return {}

    @staticmethod
    def _solve_status(payload):
        reason = payload.get("reason")
        if reason == "unauthorized":
            return 401
        if reason == "throttled":
            return 429
        if reason in ("overloaded", "shutdown", "unavailable"):
            return 503
        if reason in ("bad-request", "too-large"):
            return 400
        return 200

    @staticmethod
    def _admin_status(payload):
        if payload.get("reason") == "unauthorized":
            return 401
        if payload.get("reason") == "bad-request":
            return 400
        return 200

    _REASONS = {200: "OK", 400: "Bad Request", 401: "Unauthorized",
                404: "Not Found", 413: "Payload Too Large",
                429: "Too Many Requests", 503: "Service Unavailable"}

    async def _send_http(self, writer, status, payload, content_type,
                         keep_alive):
        if isinstance(payload, str):
            body = payload.encode("utf-8")
        else:
            body = json.dumps(payload, default=str).encode("utf-8")
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: %s\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n"
                % (status, self._REASONS.get(status, "OK"), content_type,
                   len(body), "keep-alive" if keep_alive else "close"))
        if isinstance(payload, dict) and payload.get("retry_after_s"):
            head += "Retry-After: %d\r\n" \
                % max(1, int(payload["retry_after_s"]))
        if _faults.ARMED:
            _faults.point("net.write")
        writer.write(head.encode("latin-1") + b"\r\n" + body)
        await writer.drain()


async def serve(server, install_signals=True):
    """Start *server*, optionally wire SIGTERM/SIGINT to the graceful
    drain, and run until drained.  Returns the bound (host, port)."""
    import signal
    host, port = await server.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.initiate_shutdown)
            except (NotImplementedError, RuntimeError):
                pass
    await server.serve_forever()
    return host, port
