"""SolverService — a supervised, backpressured solving front-end.

PR 3 made one solve resilient (degradation ladder, budgets, fault
drills); this layer makes *many concurrent solves* resilient.  String
logic with string-number conversion is undecidable in general, so hangs
and UNKNOWNs are a permanent fact of the workload — the service's job is
to guarantee that, whatever a single instance does, **every submitted
request gets exactly one answer** and no instance can starve or take
down the rest.

The moving parts, on top of :class:`~repro.serve.pool.WorkerPool`:

* **Bounded intake** — at most ``queue_limit`` requests may be open at
  once; :meth:`SolverService.submit` answers ``unknown(overloaded)``
  immediately beyond that, so the queue can never grow without bound
  (reject, don't buffer: the caller owns its retry policy).
* **Retry with backoff** — a worker *death* (crash, OOM kill) retries
  the attempt up to ``max_retries`` times with exponential backoff plus
  deterministic jitter.  A *hang* (hard-killed at deadline) is not
  retried: the deadline already cost its full budget once.
* **Poison-pill quarantine** — each death or hang strikes the request's
  problem *fingerprint* (a hash of its canonical SMT-LIB rendering).  At
  ``quarantine_threshold`` strikes the fingerprint is quarantined:
  every open and future request for it answers ``unknown(poison)``
  without burning another worker — the circuit breaker that stops one
  pathological instance from chewing through the pool.
* **Portfolio mode** — each request races one attempt per
  :class:`PortfolioEntry` (e.g. the incremental pipeline vs. the
  one-shot no-cache rung).  A SAT answer only wins after its model
  re-validates concretely (``strings/eval``); because SAT carries that
  certificate, a validated SAT finalizes immediately and cancels the
  losers.  UNSAT carries no certificate, so it waits for the remaining
  attempts: if a validated SAT then lands, the SAT-vs-UNSAT
  disagreement is logged, the fingerprint quarantined, and the request
  answered ``unknown(disagreement)`` — never a possibly-wrong verdict.
* **Graceful drain** — :meth:`SolverService.shutdown` stops intake,
  answers queued (not-yet-dispatched) requests ``unknown(shutdown)``,
  lets in-flight attempts finish or die at their deadline, and always
  reaps the pool.

Observability: queue-depth/inflight gauges, per-request spans
(``serve.request``), and counters for retries, quarantines, hard kills,
worker deaths, recycles and disagreements flow into the ambient
:mod:`repro.obs` scope — or, when the service is built with an
``aggregator`` (a :class:`~repro.obs.pipeline.TelemetryAggregator`),
into its central registry alongside the per-request deltas shipped back
from the workers, so one snapshot holds the whole story.  ``flight_dir``
/ ``slo_seconds`` arm the :mod:`repro.obs.flight` recorder: workers dump
on degradation or a blown SLO, the service dumps on hard kills and
quarantines.
"""

import random
import time

from repro import cache as _cache
from repro.config import SolverConfig
from repro.core.solver import SolveResult, TrauSolver
from repro.obs import current_metrics, current_tracer
from repro.obs.flight import FlightRecorder, request_entry
from repro.serve.pool import PoolEvent, WorkerPool
from repro.strings.eval import check_model

_TERMINAL = ("done", "failed", "timeout", "cancelled")


class PortfolioEntry:
    """One configuration racing in portfolio mode."""

    __slots__ = ("label", "config", "fault_specs")

    def __init__(self, label, config=None, fault_specs=()):
        self.label = label
        self.config = config or SolverConfig()
        self.fault_specs = tuple(fault_specs)

    def __repr__(self):
        return "PortfolioEntry(%s)" % self.label


def default_portfolio():
    """The stock race: the full incremental pipeline against the
    one-shot no-cache rung (diverse failure modes, same semantics)."""
    from dataclasses import replace
    base = SolverConfig()
    return (PortfolioEntry("incremental", base),
            PortfolioEntry("oneshot", replace(base, use_incremental=False,
                                              use_caches=False)))


def problem_fingerprint(problem):
    """A stable identity for quarantine bookkeeping: the hash of the
    problem's canonical SMT-LIB rendering (pickle bytes as fallback)."""
    return _cache.problem_fingerprint(problem)


class ServeResult:
    """The one answer a request gets.

    ``status`` is an SMT verdict (``sat``/``unsat``/``unknown``);
    ``reason`` qualifies service-level unknowns (``overloaded``,
    ``poison``, ``shutdown``, ``disagreement``, ``timeout``,
    ``worker-death``) and :attr:`answer` renders the pair the way the
    issue tracker talks about it: ``unknown(poison)``.
    """

    __slots__ = ("name", "status", "reason", "model", "seconds", "stats",
                 "winner", "fingerprint", "retries", "worker_exits")

    def __init__(self, name, status, reason=None, model=None, seconds=0.0,
                 stats=None, winner=None, fingerprint=None, retries=0,
                 worker_exits=()):
        self.name = name
        self.status = status
        self.reason = reason
        self.model = model
        self.seconds = seconds
        self.stats = stats or {}
        self.winner = winner
        self.fingerprint = fingerprint
        self.retries = retries
        self.worker_exits = list(worker_exits)

    @property
    def answer(self):
        if self.reason:
            return "%s(%s)" % (self.status, self.reason)
        return self.status

    def copy(self, name=None):
        """A shallow duplicate, optionally renamed — how the router
        answers coalesced followers and cache hits from one solve."""
        return ServeResult(
            self.name if name is None else name, self.status,
            reason=self.reason, model=self.model, seconds=self.seconds,
            stats=dict(self.stats), winner=self.winner,
            fingerprint=self.fingerprint, retries=self.retries,
            worker_exits=list(self.worker_exits))

    def as_dict(self):
        row = {"name": self.name, "answer": self.answer,
               "status": self.status, "reason": self.reason,
               "seconds": self.seconds, "winner": self.winner,
               "fingerprint": self.fingerprint, "retries": self.retries,
               "worker_exits": list(self.worker_exits)}
        # Failure-analysis stats earn top-level columns: before this the
        # worker's degradation story survived only inside the stats blob
        # and the batch reports never showed it.
        for key in ("degraded_to", "stopped_by", "budget_tripped",
                    "degradations"):
            if key in self.stats:
                row[key] = self.stats[key]
        if self.stats:
            row["stats"] = dict(self.stats)
        return row

    def __repr__(self):
        return "ServeResult(%s, %s)" % (self.name, self.answer)


class _Attempt:
    """One portfolio arm of one request."""

    __slots__ = ("entry", "ticket", "state", "result", "retries", "exits",
                 "not_before", "specs")

    def __init__(self, entry, specs):
        self.entry = entry
        self.specs = specs
        self.ticket = None
        self.state = "queued"    # queued|inflight|backoff|done|failed|
        self.result = None       # timeout|cancelled
        self.retries = 0
        self.exits = []


class _Request:
    """Service-side bookkeeping for one submitted problem.

    This object doubles as the public handle: callers read ``name``,
    ``done`` and ``result``.
    """

    __slots__ = ("rid", "name", "problem", "fingerprint", "attempts",
                 "result", "started", "timeout")

    def __init__(self, rid, name, problem, fingerprint, attempts,
                 timeout=None):
        self.rid = rid
        self.name = name
        self.problem = problem
        self.fingerprint = fingerprint
        self.attempts = attempts
        self.result = None
        self.started = time.monotonic()
        self.timeout = timeout

    @property
    def done(self):
        return self.result is not None


def _service_worker_init(flight_dir=None, slo_seconds=None, store_path=None):
    """Worker-side handler: one fresh TrauSolver per request (the
    process-wide memoization caches still persist across requests).

    *store_path* installs the shared persistent store as the worker's
    process default at boot, so every solve — and every recycled
    successor of this worker — reads and extends the same on-disk state.

    When a flight directory or SLO is configured the handler also keeps
    a :class:`FlightRecorder` ring and dumps it on the worker-side
    triggers — a degraded solve or a blown latency SLO.  (The
    parent-side triggers, hard-kill and quarantine, live in the service:
    a hung worker cannot write its own black box.)
    """
    if store_path:
        from repro import store as _store
        _store.set_default_path(store_path)
    recorder = None
    if flight_dir is not None or slo_seconds is not None:
        recorder = FlightRecorder(flight_dir, source="worker")

    def handler(payload):
        problem, config, timeout, name, fingerprint = payload
        started = time.monotonic()
        result = TrauSolver(config=config).solve(problem, timeout=timeout)
        if recorder is not None:
            elapsed = time.monotonic() - started
            tracer = current_tracer()
            spans = None
            if tracer.enabled:
                from repro.obs.pipeline import span_records
                spans = span_records(tracer)
            recorder.push(request_entry(
                name, fingerprint=fingerprint, verdict=result.status,
                elapsed=elapsed, stats=result.stats, spans=spans))
            if result.stats.get("degraded_to"):
                recorder.dump(
                    "degraded",
                    detail="degraded to %s" % result.stats["degraded_to"])
            elif slo_seconds is not None and elapsed > slo_seconds:
                recorder.dump(
                    "slo",
                    detail="%.3fs over the %.3fs latency SLO"
                    % (elapsed, slo_seconds))
        return result
    return handler


def flip_verdict(result):
    """Corrupter for the ``serve.worker.result`` seam: fabricate the
    opposite verdict, modelling a wrong-but-plausible solver bug."""
    if result.status == "sat":
        return SolveResult("unsat", stats=dict(result.stats,
                                               fabricated=True))
    if result.status == "unsat":
        return SolveResult("sat", model={},
                           stats=dict(result.stats, fabricated=True))
    return result


class SolverService:
    """Supervised solving over a worker pool; see the module docstring.

    Single-config by default; pass ``portfolio`` (a sequence of
    :class:`PortfolioEntry`) to race variants per request.  The service
    is driven cooperatively: :meth:`submit` then :meth:`pump` until the
    handles are done, or use :meth:`run_batch` / :meth:`wait`.
    """

    def __init__(self, config=None, portfolio=None, jobs=2, timeout=10.0,
                 grace=2.0, queue_limit=64, max_retries=2,
                 quarantine_threshold=3, backoff_base=0.05, backoff_cap=1.0,
                 validate_models=True, max_requests_per_worker=64,
                 max_worker_rss=None, worker_fault_specs=(),
                 aggregator=None, flight_dir=None, slo_seconds=None,
                 store_path=None):
        if portfolio:
            self.entries = tuple(portfolio)
        else:
            self.entries = (PortfolioEntry("solo", config or SolverConfig()),)
        self.timeout = float(timeout)
        self.grace = float(grace)
        self.queue_limit = int(queue_limit)
        self.max_retries = int(max_retries)
        self.quarantine_threshold = int(quarantine_threshold)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.validate_models = validate_models
        self._rng = random.Random(0xC0FFEE)   # deterministic jitter
        self._draining = False
        self._requests = {}        # rid -> _Request (open only)
        self._by_ticket = {}       # pool ticket -> (request, attempt)
        self._backoff = []         # [(request, attempt), ...] waiting
        self._strikes = {}         # fingerprint -> kill/hang count
        self._quarantined = {}     # fingerprint -> reason
        self._next_rid = 0
        self.answered = 0
        self.submitted = 0
        self.aggregator = aggregator
        self.slo_seconds = slo_seconds
        # Worker telemetry is on whenever anything consumes it: an
        # aggregator to ship deltas to, or flight/SLO triggers that need
        # the per-request span trees.
        telemetry = (aggregator is not None or flight_dir is not None
                     or slo_seconds is not None)
        self._flight = FlightRecorder(flight_dir, source="service") \
            if flight_dir is not None else None
        sink = None
        if aggregator is not None:
            def sink(delta, pid):
                aggregator.ingest(delta, worker=pid)
        self.store_path = store_path
        self.pool = WorkerPool(_service_worker_init,
                               init_args=(flight_dir, slo_seconds,
                                          store_path),
                               jobs=jobs, grace=grace,
                               max_requests=max_requests_per_worker,
                               max_rss=max_worker_rss,
                               corrupter=flip_verdict,
                               worker_fault_specs=worker_fault_specs,
                               telemetry=telemetry, telemetry_sink=sink)

    def _metrics(self):
        """Where serve.* instruments go: the aggregator's central
        registry when one is attached (so ``--metrics-out`` snapshots
        and ``repro top`` see them), else the ambient scope."""
        if self.aggregator is not None:
            return self.aggregator.metrics
        return current_metrics()

    # -- intake -------------------------------------------------------------

    @property
    def open_requests(self):
        return len(self._requests)

    def quarantined(self, problem=None, fingerprint=None):
        """The quarantine reason for *problem* (or raw fingerprint), or
        None when it is clean."""
        if fingerprint is None:
            fingerprint = problem_fingerprint(problem)
        return self._quarantined.get(fingerprint)

    def submit(self, problem, name=None, fault_specs=(),
               entry_fault_specs=None, timeout=None, fingerprint=None):
        """Enqueue *problem*; always returns a request handle that will
        carry exactly one :class:`ServeResult`.

        Overload, quarantine and drain answer immediately (the handle
        comes back already ``done``).  *fault_specs* arm serve-layer
        fault points around every attempt of this request;
        *entry_fault_specs* (``{label: specs}``) target one portfolio
        arm — both are chaos-testing instruments.  *timeout* overrides
        the service-wide solver budget for this request only — the
        deadline-propagation hook: the network front door passes each
        caller's remaining deadline here, the worker receives it as its
        solve budget, and retries are capped by what is left of it.
        """
        metrics = self._metrics()
        metrics.add("serve.requests")
        self.submitted += 1
        rid = self._next_rid
        self._next_rid += 1
        name = name or ("req-%d" % rid)
        if fingerprint is None:
            fingerprint = problem_fingerprint(problem)
        if self._draining:
            return self._instant(rid, name, fingerprint, "shutdown",
                                 "serve.shutdown_answers")
        if fingerprint in self._quarantined:
            metrics.add("serve.poisoned")
            return self._instant(rid, name, fingerprint,
                                 self._quarantined[fingerprint],
                                 "serve.poisoned_answers")
        if len(self._requests) >= self.queue_limit:
            metrics.add("serve.rejected")
            return self._instant(rid, name, fingerprint, "overloaded",
                                 "serve.overloaded_answers")
        entry_specs = entry_fault_specs or {}
        attempts = [
            _Attempt(entry, tuple(entry.fault_specs) + tuple(fault_specs)
                     + tuple(entry_specs.get(entry.label, ())))
            for entry in self.entries
        ]
        budget = self.timeout if timeout is None \
            else max(0.001, min(float(timeout), self.timeout))
        request = _Request(rid, name, problem, fingerprint, attempts,
                           timeout=budget)
        self._requests[rid] = request
        for attempt in attempts:
            self._launch(request, attempt)
        return request

    def _instant(self, rid, name, fingerprint, reason, counter):
        """A request answered at the door (reject/poison/shutdown)."""
        self._metrics().add(counter)
        request = _Request(rid, name, None, fingerprint, [])
        self._finalize(request, "unknown", reason=reason)
        return request

    def _launch(self, request, attempt):
        budget = request.timeout if request.timeout is not None \
            else self.timeout
        payload = (request.problem, attempt.entry.config, budget,
                   request.name, request.fingerprint)
        attempt.ticket = self.pool.submit(
            payload, timeout=budget + self.grace,
            fault_specs=attempt.specs)
        attempt.state = "inflight"
        self._by_ticket[attempt.ticket] = (request, attempt)

    # -- event loop ---------------------------------------------------------

    def pump(self, block=0.0):
        """Release due retries, drive the pool, process events, refresh
        gauges.  Returns the number of requests finalized this call."""
        now = time.monotonic()
        due = [pair for pair in self._backoff if pair[1].not_before <= now]
        if due:
            self._backoff = [p for p in self._backoff if p not in due]
            for request, attempt in due:
                if request.done:
                    continue
                self._launch(request, attempt)
        finalized = 0
        for event in self.pool.poll(block):
            # Ingest even for tickets no request is waiting on (late
            # results of cancelled attempts): the work happened, and the
            # aggregator's contract is one ingestion per shipped delta.
            if self.aggregator is not None and event.telemetry:
                self.aggregator.ingest(event.telemetry, worker=event.worker)
            mapped = self._by_ticket.pop(event.ticket, None)
            if mapped is None:
                continue
            request, attempt = mapped
            if request.done:
                continue
            if event.kind == PoolEvent.RESULT:
                self._on_result(request, attempt, event.value)
            elif event.kind == PoolEvent.DIED:
                self._on_death(request, attempt, event.exitcode)
            else:
                self._on_hard_kill(request, attempt)
            if request.done:
                finalized += 1
        metrics = self._metrics()
        if metrics.enabled:
            metrics.gauge("serve.queue_depth", self.pool.pending_count)
            metrics.gauge("serve.inflight", self.pool.inflight_count)
            metrics.gauge("serve.open_requests", len(self._requests))
            for key, value in self.pool.counters.items():
                metrics.gauge("serve.pool.%s" % key, value)
        return finalized

    def _on_result(self, request, attempt, result):
        attempt.state = "done"
        if (result.status == "sat" and self.validate_models):
            model = result.model
            if model is None or not check_model(request.problem, model):
                self._metrics().add("serve.invalid_models")
                current_tracer().event("serve.invalid_model",
                                       request=request.name,
                                       entry=attempt.entry.label)
                result = SolveResult("unknown",
                                     stats=dict(result.stats,
                                                stopped_by="invalid-model"))
        attempt.result = result
        self._advance(request)

    def _on_death(self, request, attempt, exitcode):
        attempt.exits.append(exitcode)
        self._metrics().add("serve.worker_deaths")
        if self._strike(request):
            return
        # A retry only makes sense while the request still has budget: a
        # backoff longer than what remains of timeout+grace would sleep
        # through the whole deadline and fail anyway, later.
        budget = request.timeout if request.timeout is not None \
            else self.timeout
        remaining = (request.started + budget + self.grace
                     - time.monotonic())
        if self._draining or attempt.retries >= self.max_retries \
                or remaining <= 0:
            attempt.state = "failed"
            self._advance(request)
            return
        attempt.retries += 1
        self._metrics().add("serve.retries")
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (attempt.retries - 1)))
        delay *= 0.5 + self._rng.random()          # jitter in [0.5, 1.5)
        delay = min(delay, remaining)
        attempt.state = "backoff"
        attempt.not_before = time.monotonic() + delay
        self._backoff.append((request, attempt))

    def _on_hard_kill(self, request, attempt):
        attempt.exits.append("hard-killed")
        self._metrics().add("serve.hard_kills")
        if self._flight is not None:
            self._flight.dump(
                "hard-killed",
                detail="attempt %s exceeded its %.1fs deadline"
                % (attempt.entry.label, self.timeout + self.grace),
                entry=request_entry(
                    request.name, fingerprint=request.fingerprint,
                    verdict="hard-killed",
                    elapsed=time.monotonic() - request.started))
        if self._strike(request):
            return
        attempt.state = "timeout"
        self._advance(request)

    # -- quarantine ---------------------------------------------------------

    def _strike(self, request):
        """Charge a kill/hang to the request's fingerprint; True when the
        strike tripped the circuit breaker (requests finalized)."""
        fingerprint = request.fingerprint
        count = self._strikes.get(fingerprint, 0) + 1
        self._strikes[fingerprint] = count
        if count < self.quarantine_threshold:
            return False
        self._quarantine(fingerprint, "poison")
        return True

    def _quarantine(self, fingerprint, reason):
        if fingerprint not in self._quarantined:
            self._quarantined[fingerprint] = reason
            self._metrics().add("serve.quarantined")
            current_tracer().event("serve.quarantine",
                                   fingerprint=fingerprint, reason=reason)
            if self._flight is not None:
                self._flight.dump(
                    "quarantined",
                    detail="fingerprint %s: %s" % (fingerprint, reason))
        # Fail every open request for the poisoned fingerprint without
        # burning another worker.
        for request in [r for r in self._requests.values()
                        if r.fingerprint == fingerprint]:
            self._cancel_attempts(request)
            self._finalize(request, "unknown", reason=reason)

    def _cancel_attempts(self, request):
        for attempt in request.attempts:
            if attempt.state == "inflight":
                self.pool.cancel(attempt.ticket)
                self._by_ticket.pop(attempt.ticket, None)
                attempt.state = "cancelled"
            elif attempt.state in ("queued", "backoff"):
                attempt.state = "cancelled"
        self._backoff = [(r, a) for r, a in self._backoff
                         if r is not request]

    # -- verdict assembly ---------------------------------------------------

    def _advance(self, request):
        """Re-derive the request's verdict from its attempt states.

        A validated SAT finalizes immediately (it carries a concrete
        witness) and cancels the losers; UNSAT has no certificate, so it
        waits for every attempt before it is trusted; SAT-vs-UNSAT is a
        disagreement and never yields a verdict.
        """
        if request.done:
            return
        sats = [a for a in request.attempts
                if a.state == "done" and a.result.status == "sat"]
        unsats = [a for a in request.attempts
                  if a.state == "done" and a.result.status == "unsat"]
        if sats and unsats:
            self._disagreement(request, sats[0], unsats[0])
            return
        if sats:
            winner = sats[0]
            self._cancel_attempts(request)
            self._finalize(request, "sat", model=winner.result.model,
                           stats=winner.result.stats,
                           winner=winner.entry.label)
            return
        if any(a.state not in _TERMINAL for a in request.attempts):
            return
        if unsats:
            winner = unsats[0]
            self._finalize(request, "unsat", stats=winner.result.stats,
                           winner=winner.entry.label)
            return
        reason = None
        stats = {}
        if any(a.state == "timeout" for a in request.attempts):
            reason = "timeout"
        elif any(a.state == "failed" for a in request.attempts):
            reason = "worker-death"
        for attempt in request.attempts:
            if attempt.state == "done":
                stats = attempt.result.stats
                reason = reason or stats.get("stopped_by")
                break
        self._finalize(request, "unknown", reason=reason, stats=stats)

    def _disagreement(self, request, sat_attempt, unsat_attempt):
        """A SAT-vs-UNSAT split between portfolio arms: one solver lied.
        Log it, quarantine the fingerprint, and refuse to pick a side."""
        metrics = self._metrics()
        metrics.add("serve.disagreements")
        current_tracer().event(
            "serve.disagreement", request=request.name,
            fingerprint=request.fingerprint,
            sat_entry=sat_attempt.entry.label,
            unsat_entry=unsat_attempt.entry.label)
        self._cancel_attempts(request)
        # _quarantine finalizes this request (and any open siblings)
        # with the quarantine reason.
        self._quarantine(request.fingerprint, "disagreement")

    def _finalize(self, request, status, reason=None, model=None,
                  stats=None, winner=None):
        if request.done:
            return
        retries = sum(a.retries for a in request.attempts)
        exits = [code for a in request.attempts for code in a.exits]
        seconds = time.monotonic() - request.started
        request.result = ServeResult(
            request.name, status, reason=reason, model=model,
            seconds=seconds, stats=dict(stats or {}), winner=winner,
            fingerprint=request.fingerprint, retries=retries,
            worker_exits=exits)
        self._requests.pop(request.rid, None)
        self.answered += 1
        if self._flight is not None:
            self._flight.push(request_entry(
                request.name, fingerprint=request.fingerprint,
                verdict=request.result.answer, elapsed=seconds,
                stats=request.result.stats))
        metrics = self._metrics()
        metrics.add("serve.answers")
        metrics.add("serve.answers.%s" % status)
        if self.aggregator is not None:
            metrics.observe("phase.serve.request_s", seconds)
        tracer = current_tracer()
        if tracer.enabled:
            tracer.record_span(
                "serve.request", request.started, time.monotonic(),
                request=request.name, status=status, reason=reason,
                winner=winner, retries=retries)

    # -- driving ------------------------------------------------------------

    def wait(self, handle, poll=0.05):
        """Pump until *handle* is answered; returns its ServeResult."""
        while not handle.done:
            self.pump(poll)
        return handle.result

    def drain(self, poll=0.05):
        """Pump until every open request is answered."""
        while self._requests:
            self.pump(poll)

    def run_batch(self, items, poll=0.05, should_stop=None):
        """Solve ``[(name, problem), ...]`` through the service; returns
        the aligned list of :class:`ServeResult`.

        Backpressure is honoured by waiting (pumping) for queue space
        rather than rejecting.  When *should_stop* returns True the
        service drains: already-running work finishes or dies at its
        deadline, everything else — including not-yet-submitted items —
        is answered ``unknown(shutdown)``.
        """
        handles = []
        stopped = False
        for name, problem in items:
            if should_stop is not None and should_stop():
                stopped = True
            if stopped:
                handles.append(ServeResult(name, "unknown",
                                           reason="shutdown"))
                continue
            while (len(self._requests) >= self.queue_limit
                   and not self._draining):
                self.pump(poll)
            handles.append(self.submit(problem, name=name))
            self.pump(0.0)
        if stopped:
            self.shutdown(drain=True, poll=poll)
        else:
            self.drain(poll)
        return [h.result if isinstance(h, _Request) else h for h in handles]

    # -- teardown -----------------------------------------------------------

    def begin_drain(self, keep_inflight=True):
        """Stop intake without blocking: requests with nothing running
        answer ``unknown(shutdown)`` now, queued/backoff attempts are
        cancelled, and (with *keep_inflight*) attempts already on a
        worker keep running — keep pumping and they finish or die at
        their deadline.  The async front door drains this way so its
        event loop never blocks.  Idempotent.
        """
        self._draining = True
        metrics = self._metrics()
        for request in list(self._requests.values()):
            running = any(a.state == "inflight"
                          and self.pool.is_inflight(a.ticket)
                          for a in request.attempts)
            if keep_inflight and running:
                # Give up on the arms that have not started; keep the
                # running ones (they finish or die at their deadline).
                for attempt in request.attempts:
                    if attempt.state in ("queued", "backoff"):
                        attempt.state = "cancelled"
                    elif (attempt.state == "inflight"
                          and self.pool.is_pending(attempt.ticket)):
                        self.pool.cancel(attempt.ticket)
                        self._by_ticket.pop(attempt.ticket, None)
                        attempt.state = "cancelled"
                self._backoff = [(r, a) for r, a in self._backoff
                                 if r is not request]
                self._advance(request)
            else:
                self._cancel_attempts(request)
                metrics.add("serve.shutdown_answers")
                self._finalize(request, "unknown", reason="shutdown")

    def shutdown(self, drain=True, poll=0.05):
        """Stop intake and reap the pool.

        With *drain* (the default), queued-but-not-dispatched requests
        answer ``unknown(shutdown)`` immediately, in-flight attempts run
        to completion or to their hard deadline, and only then is the
        pool torn down.  Without it everything open answers
        ``unknown(shutdown)`` and the pool is reaped at once.  Either
        way no request is ever left unanswered and no child process
        survives.  Idempotent.
        """
        self.begin_drain(keep_inflight=drain)
        if drain:
            self.drain(poll)
        self.pool.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown(drain=exc_type is None)
        return False
