"""Multi-shard request router with circuit breakers and coalescing.

The network front door (:mod:`repro.serve.net`) terminates sockets; this
module owns everything between the wire and the
:class:`~repro.serve.service.SolverService` shards:

* **Sharding** — problems hash by fingerprint across N shards, each a
  full ``SolverService`` (its own supervised worker pool), so one
  pathological instance saturates one shard's workers, not the fleet,
  and shard state (poison quarantine, strikes) stays bounded.
* **Request coalescing** — identical-fingerprint requests in flight
  share a single solve: the first becomes the *leader*, later arrivals
  attach as *followers* and are answered from the leader's result.  For
  CI-style traffic (the same query from a hundred jobs) this is the
  single biggest capacity lever.
* **Front-door verdict cache** — finished ``sat``/``unsat`` verdicts are
  kept in a bounded LRU so repeats are answered without touching a
  worker at all.  Only definite verdicts are cached; service-level
  unknowns (``overloaded``, ``timeout``...) always re-solve.
* **Circuit breakers** — each shard carries a breaker that trips after
  ``breaker_threshold`` *consecutive* infrastructure failures
  (worker deaths / hard-kill timeouts — never solver UNKNOWNs, which
  are a legitimate answer for this workload).  An open breaker routes
  around the shard; after ``breaker_cooldown`` seconds one half-open
  probe is let through and its outcome closes or re-opens the breaker.
* **Kill / restart** — :meth:`ShardRouter.kill_shard` tears a shard down
  the hard way (chaos instrument and admin endpoint): its open requests
  are answered ``unknown(shutdown)`` by the service drain, and the
  router *reroutes* each one once to a healthy shard when the caller's
  deadline still has budget.  :meth:`ShardRouter.restart_shard` (or the
  ``restart_after`` timer) brings a fresh shard up on the same slot —
  with a shared persistent store it warm-starts from disk.

The router is deliberately synchronous (drive it with :meth:`pump`, as
the service is driven): the asyncio front door owns the event loop and
the tests own a deterministic clock.  The ``net.route`` fault seam fires
inside :meth:`submit`, so chaos tests can fail routing itself.
"""

import time
import zlib
from collections import OrderedDict

from repro import faults as _faults
from repro.serve.service import ServeResult, problem_fingerprint

_INFRA_REASONS = ("timeout", "worker-death")


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probes.

    States: ``closed`` (healthy), ``open`` (tripped, routed around until
    *cooldown* elapses), ``half-open`` (one probe admitted; its outcome
    decides).  Deterministic given a clock, so tests inject their own.
    """

    __slots__ = ("threshold", "cooldown", "failures", "opened_at",
                 "probing", "trips", "_clock")

    def __init__(self, threshold=3, cooldown=2.0, clock=time.monotonic):
        self.threshold = max(1, int(threshold))
        self.cooldown = float(cooldown)
        self.failures = 0          # consecutive
        self.opened_at = None      # monotonic trip time, None when closed
        self.probing = False       # a half-open probe is in flight
        self.trips = 0
        self._clock = clock

    @property
    def state(self):
        if self.opened_at is None:
            return "closed"
        if self._clock() - self.opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self):
        """May a request be routed through?  A half-open breaker admits
        exactly one probe at a time."""
        state = self.state
        if state == "closed":
            return True
        if state == "half-open" and not self.probing:
            self.probing = True
            return True
        return False

    def record_success(self):
        self.failures = 0
        self.opened_at = None
        self.probing = False

    def record_failure(self):
        self.failures += 1
        self.probing = False
        if self.opened_at is not None or self.failures >= self.threshold:
            # Re-arm the cooldown (a failed probe re-opens the breaker).
            if self.opened_at is None:
                self.trips += 1
            self.opened_at = self._clock()

    def __repr__(self):
        return "CircuitBreaker(%s, failures=%d)" % (self.state,
                                                    self.failures)


class RouterTicket:
    """The router-side handle for one submitted request."""

    __slots__ = ("name", "fingerprint", "shard", "result", "deadline_at",
                 "coalesced", "reroutes", "submitted")

    def __init__(self, name, fingerprint, shard=None, deadline_at=None):
        self.name = name
        self.fingerprint = fingerprint
        self.shard = shard          # home shard index, None pre-route
        self.result = None
        self.deadline_at = deadline_at
        self.coalesced = False
        self.reroutes = 0
        self.submitted = time.monotonic()

    @property
    def done(self):
        return self.result is not None


class _Flight:
    """One in-flight solve: the service handle plus everyone waiting."""

    __slots__ = ("handle", "shard", "leader", "followers", "timeout")

    def __init__(self, handle, shard, leader, timeout):
        self.handle = handle
        self.shard = shard
        self.leader = leader
        self.followers = []
        self.timeout = timeout


class _Shard:
    """One slot of the ring: a service, its breaker, and liveness."""

    __slots__ = ("index", "service", "breaker", "alive", "killed_at")

    def __init__(self, index, service, breaker):
        self.index = index
        self.service = service
        self.breaker = breaker
        self.alive = True
        self.killed_at = None


class ShardRouter:
    """Route problems across N :class:`SolverService` shards.

    *shard_factory* is ``factory(index) -> SolverService``; the router
    owns the services it builds (and rebuilds on restart).  *metrics*
    is where ``net.*`` routing counters go (the front door passes its
    aggregator's registry); the default is a silent no-op.
    """

    def __init__(self, shard_factory, shards=2, coalesce=True,
                 cache_size=1024, breaker_threshold=3, breaker_cooldown=2.0,
                 restart_after=None, metrics=None, clock=time.monotonic):
        self._factory = shard_factory
        self.coalesce = bool(coalesce)
        self.cache_size = int(cache_size)
        self.restart_after = restart_after
        self._clock = clock
        self._breaker_args = (breaker_threshold, breaker_cooldown)
        self._metrics = metrics
        self._shards = [
            _Shard(i, shard_factory(i),
                   CircuitBreaker(breaker_threshold, breaker_cooldown,
                                  clock=clock))
            for i in range(max(1, int(shards)))
        ]
        self._flights = {}         # fingerprint -> _Flight
        self._cache = OrderedDict()  # fingerprint -> ServeResult template
        self.counters = {
            "routed": 0, "coalesced": 0, "cache_hits": 0, "rerouted": 0,
            "unavailable": 0, "shard_kills": 0, "shard_restarts": 0,
            "breaker_trips": 0,
        }
        self._draining = False

    # -- introspection -------------------------------------------------------

    @property
    def shard_count(self):
        return len(self._shards)

    @property
    def open_flights(self):
        return len(self._flights)

    def shard_states(self):
        """``[{shard, alive, breaker, open_requests}, ...]`` for the
        admin endpoint and the tests."""
        return [{"shard": s.index, "alive": s.alive,
                 "breaker": s.breaker.state,
                 "open_requests": s.service.open_requests if s.alive else 0}
                for s in self._shards]

    def _count(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value
        if self._metrics is not None:
            self._metrics.add("net.%s" % name, value)

    # -- submission ----------------------------------------------------------

    def route(self, fingerprint):
        """The shard for *fingerprint*: its hash-home when healthy, else
        the next healthy slot on the ring, else None (no capacity)."""
        if _faults.ARMED:
            _faults.point("net.route")
        n = len(self._shards)
        home = zlib.crc32(fingerprint.encode("utf-8", "replace")) % n
        for step in range(n):
            shard = self._shards[(home + step) % n]
            if shard.alive and shard.breaker.allow():
                if step:
                    self._count("rerouted")
                return shard
        return None

    def submit(self, problem, name=None, timeout=None, fingerprint=None):
        """Admit one problem; always returns a :class:`RouterTicket`
        that will carry exactly one :class:`ServeResult`.

        *timeout* is the caller's **remaining deadline** in seconds; it
        becomes the shard's per-request solver budget and bounds any
        reroute after a shard death.
        """
        if fingerprint is None:
            fingerprint = problem_fingerprint(problem)
        name = name or "req"
        deadline_at = None if timeout is None else self._clock() + timeout
        ticket = RouterTicket(name, fingerprint, deadline_at=deadline_at)
        if self._draining:
            self._finish(ticket, self._instant(name, "shutdown"))
            return ticket
        cached = self._cache_get(fingerprint)
        if cached is not None:
            self._count("cache_hits")
            self._finish(ticket, cached.copy(name=name))
            return ticket
        flight = self._flights.get(fingerprint)
        if flight is not None and self.coalesce:
            ticket.coalesced = True
            ticket.shard = flight.shard.index
            flight.followers.append(ticket)
            self._count("coalesced")
            return ticket
        self._launch(ticket, problem, timeout)
        return ticket

    def _launch(self, ticket, problem, timeout):
        shard = self.route(ticket.fingerprint)
        if shard is None:
            self._count("unavailable")
            self._finish(ticket, self._instant(ticket.name, "unavailable"))
            return
        ticket.shard = shard.index
        handle = shard.service.submit(problem, name=ticket.name,
                                      timeout=timeout,
                                      fingerprint=ticket.fingerprint)
        self._count("routed")
        if handle.done:
            # Answered at the service door (overload/quarantine/drain):
            # not an infrastructure failure, no flight to track.
            self._finish(ticket, handle.result)
            return
        self._flights[ticket.fingerprint] = _Flight(handle, shard, ticket,
                                                    timeout)

    def _instant(self, name, reason):
        return ServeResult(name, "unknown", reason=reason)

    # -- driving -------------------------------------------------------------

    def pump(self, block=0.0):
        """Drive every live shard, settle finished flights, run breaker
        and restart bookkeeping.  Returns tickets finalized this call."""
        finalized = 0
        per_shard = block / max(1, len(self._shards))
        for shard in self._shards:
            if shard.alive:
                shard.service.pump(per_shard)
        for fingerprint in list(self._flights):
            flight = self._flights[fingerprint]
            if not flight.handle.done:
                continue
            del self._flights[fingerprint]
            finalized += self._settle_flight(flight)
        self._maybe_restart()
        self._export_gauges()
        return finalized

    def _settle_flight(self, flight):
        result = flight.handle.result
        shard = flight.shard
        count = 0
        tickets = [flight.leader] + flight.followers
        if (result.reason == "shutdown" and not shard.alive
                and not self._draining):
            # The shard died under this request; give each waiter one
            # reroute to a healthy shard, inside what is left of its
            # deadline.  (The problem object still lives on the handle.)
            problem = getattr(flight.handle, "problem", None)
            for ticket in tickets:
                if problem is not None and self._reroute(ticket, problem):
                    continue
                self._finish(ticket, result.copy(name=ticket.name))
                count += 1
            return count
        for ticket in tickets:
            self._finish(ticket, result if result.name == ticket.name
                         else result.copy(name=ticket.name))
            count += 1
        # One breaker judgement per flight, not per waiter.
        self._judge(shard, result)
        return count

    def _reroute(self, ticket, problem):
        """Resubmit *ticket* once after a shard death; False when its
        deadline is spent or it was already rerouted."""
        if ticket.reroutes >= 1:
            return False
        remaining = None
        if ticket.deadline_at is not None:
            remaining = ticket.deadline_at - self._clock()
            if remaining <= 0.005:
                return False
        ticket.reroutes += 1
        self._count("rerouted")
        cached = self._cache_get(ticket.fingerprint)
        if cached is not None:
            self._count("cache_hits")
            self._finish(ticket, cached.copy(name=ticket.name))
            return True
        flight = self._flights.get(ticket.fingerprint)
        if flight is not None and self.coalesce:
            ticket.coalesced = True
            flight.followers.append(ticket)
            self._count("coalesced")
            return True
        self._launch(ticket, problem, remaining)
        return True

    def _judge(self, shard, result):
        """Breaker bookkeeping: infra failures count, verdicts clear."""
        if result.reason in _INFRA_REASONS:
            before = shard.breaker.state
            shard.breaker.record_failure()
            if before != "open" and shard.breaker.state == "open":
                self._count("breaker_trips")
        elif result.status in ("sat", "unsat") or result.reason is None \
                or result.reason == "disagreement":
            shard.breaker.record_success()
        else:
            # Service-door answers (overloaded, poison, shutdown) and
            # solver unknowns: neutral for the probe, but they do end it.
            shard.breaker.probing = False

    def _finish(self, ticket, result):
        if ticket.result is not None:
            return
        ticket.result = result
        if result.status in ("sat", "unsat"):
            self._cache_put(ticket.fingerprint, result)

    # -- verdict cache -------------------------------------------------------

    def _cache_get(self, fingerprint):
        if self.cache_size <= 0:
            return None
        result = self._cache.get(fingerprint)
        if result is not None:
            self._cache.move_to_end(fingerprint)
        return result

    def _cache_put(self, fingerprint, result):
        if self.cache_size <= 0 or result.reason is not None:
            return
        template = result.copy()
        template.stats = dict(template.stats, served_from="router-cache")
        template.seconds = 0.0
        self._cache[fingerprint] = template
        if len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)

    # -- chaos & lifecycle ---------------------------------------------------

    def kill_shard(self, index):
        """Hard-stop shard *index*: its open requests answer
        ``unknown(shutdown)`` (then get one reroute each), its workers
        are reaped, and the slot stays dark until restarted."""
        shard = self._shards[index]
        if not shard.alive:
            return False
        shard.alive = False
        shard.killed_at = self._clock()
        self._count("shard_kills")
        shard.service.shutdown(drain=False)
        # Settle the dead shard's flights now so waiters reroute
        # immediately instead of on the next pump.
        for fingerprint in list(self._flights):
            flight = self._flights[fingerprint]
            if flight.shard is shard and flight.handle.done:
                del self._flights[fingerprint]
                self._settle_flight(flight)
        self._export_gauges()
        return True

    def restart_shard(self, index):
        """Bring a fresh service up on slot *index* (no-op when live)."""
        shard = self._shards[index]
        if shard.alive:
            return False
        shard.service = self._factory(index)
        shard.breaker = CircuitBreaker(self._breaker_args[0],
                                       self._breaker_args[1],
                                       clock=self._clock)
        shard.alive = True
        shard.killed_at = None
        self._count("shard_restarts")
        self._export_gauges()
        return True

    def _maybe_restart(self):
        if self.restart_after is None:
            return
        now = self._clock()
        for shard in self._shards:
            if (not shard.alive and shard.killed_at is not None
                    and now - shard.killed_at >= self.restart_after):
                self.restart_shard(shard.index)

    def _export_gauges(self):
        if self._metrics is None:
            return
        self._metrics.gauge("net.shards_alive",
                            sum(1 for s in self._shards if s.alive))
        self._metrics.gauge("net.shards_total", len(self._shards))
        self._metrics.gauge("net.breakers_open",
                            sum(1 for s in self._shards
                                if s.alive and s.breaker.state != "closed"))
        self._metrics.gauge("net.open_flights", len(self._flights))

    def wait(self, ticket, poll=0.02):
        """Pump until *ticket* is answered; returns its ServeResult."""
        while not ticket.done:
            self.pump(poll)
        return ticket.result

    def begin_drain(self):
        """Non-blocking graceful drain: stop intake everywhere (new
        submissions answer ``unknown(shutdown)``), cancel queued work,
        keep in-flight attempts running.  Keep pumping until
        :attr:`open_flights` reaches zero, then call :meth:`shutdown`
        to reap the pools — the async front door's SIGTERM path."""
        self._draining = True
        for shard in self._shards:
            if shard.alive:
                shard.service.begin_drain()

    def shutdown(self, drain=True, poll=0.02):
        """Stop intake and tear every shard down; every outstanding
        ticket is answered (a drained shard finishes in-flight work
        first).  Idempotent."""
        self._draining = True
        for shard in self._shards:
            if shard.alive:
                shard.service.shutdown(drain=drain, poll=poll)
        for fingerprint in list(self._flights):
            flight = self._flights.pop(fingerprint)
            result = flight.handle.result or \
                self._instant(flight.leader.name, "shutdown")
            for ticket in [flight.leader] + flight.followers:
                self._finish(ticket, result.copy(name=ticket.name))
        for shard in self._shards:
            shard.alive = False
        self._export_gauges()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown(drain=exc_type is None)
        return False
