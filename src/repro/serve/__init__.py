"""repro.serve — supervised solver service over a worker process pool.

The resilience layer *across* many concurrent solves (PR 3's ladder and
budgets protect a single solve): per-query process isolation with hard
deadlines, bounded-queue backpressure, poison-pill quarantine, and a
cross-checked portfolio mode.

* :class:`~repro.serve.pool.WorkerPool` — spawn-based supervised worker
  pool (deadlines + hard kill, crash detection, health checks, recycling
  by request count or RSS); also the engine under the parallel benchmark
  runner, so the supervision logic exists exactly once.
* :class:`~repro.serve.service.SolverService` — the solving front-end:
  every submitted request gets exactly one answer, whatever the
  instance does to its workers.
* :class:`~repro.serve.router.ShardRouter` — hashes problem
  fingerprints across N services, coalesces identical in-flight solves,
  answers repeat verdicts from a front-door cache, and routes around
  dead or circuit-broken shards.
* :class:`~repro.serve.net.NetServer` — the asyncio network front door
  (``python -m repro netserve``): admission control, deadline
  propagation, and the chaos/admin surface.
* ``python -m repro serve-batch DIR`` — CLI over a corpus of SMT-LIB
  files, with ``--metrics-out`` Prometheus snapshots (watch them live
  with ``python -m repro top``) and ``--flight-dir`` black-box dumps.

All layers speak the :mod:`repro.obs.pipeline` delta protocol when
telemetry is enabled, so worker-side spans and counters survive the
process boundary.
"""

from repro.serve.pool import PoolEvent, WorkerPool
from repro.serve.router import CircuitBreaker, RouterTicket, ShardRouter
from repro.serve.service import (
    PortfolioEntry, ServeResult, SolverService, default_portfolio,
    problem_fingerprint,
)

__all__ = [
    "WorkerPool", "PoolEvent",
    "SolverService", "ServeResult", "PortfolioEntry",
    "default_portfolio", "problem_fingerprint",
    "ShardRouter", "CircuitBreaker", "RouterTicket",
]
