"""Crash-safe persistent solve store (DESIGN.md Section 14).

The in-process caches — the :mod:`repro.cache` LRUs, learned clauses,
flattener fragments, the fingerprint-keyed outcome memos — die with the
worker process, and pool recycling throws them away exactly when load is
highest.  This module persists the valuable subset on disk, shared by
every worker of a pool, with one non-negotiable rule: **a stored entry
is a claim, not a fact**.  Nothing read from disk is trusted until it
passes its integrity framing and its kind-specific validator, and a
failed check routes the entry into quarantine (tombstoned, counted,
flight-dumped) instead of ever surfacing a wrong answer.

Layout of a store directory::

    meta.json          format-version / solver-revision stamp
    lock               advisory flock serializing index rotation
    seg-<pid>-<id>.log append-only record segments, one writer each
    index.bin          framed index snapshot (atomic tmp+fsync+rename)
    stale-<ns>/        segments invalidated by a stamp skew
    quarantine/        flight-recorder dumps for quarantined entries

Record framing is ``MAGIC | u32 payload length | sha256(payload) |
payload`` where the payload is a pickled dict.  A torn write (crash or
``kill -9`` mid-append) leaves a half frame at the tail of one segment;
scanning stops cleanly at the first bad frame, so a torn tail can hide
records but never poison them.  Each process appends to its *own*
segment, so record writes need no lock; only index rotation and the
stamp check take the advisory ``flock``.

Integrity is layered:

* the sha256 framing catches torn writes and disk bit rot;
* the format-version / solver-revision stamp invalidates whole
  generations on skew (old segments move to ``stale-<ns>/``);
* validate-on-read re-reads the record bytes from disk on **every**
  ``get``, re-verifies the checksum, and runs the caller's validator on
  the value — SAT verdicts re-check their model against the concrete
  evaluator, UNSAT verdicts must carry the budget-independence marker,
  warm-start lemmas are re-proved by a bounded LIA check before they are
  believed (those validators live at the call sites).

Every entry point swallows its own failures: a broken store degrades to
a miss (or a dropped write), never an exception in the solver.  The
``store.read`` / ``store.write`` / ``store.lock`` / ``store.validate``
fault seams (:mod:`repro.faults`) let the chaos suite bit-flip records,
tear writes and force certificate rejections deterministically.
"""

import atexit
import hashlib
import json
import os
import pickle
import struct
import time
import uuid

try:
    import fcntl
except ImportError:                      # non-POSIX: no advisory locking
    fcntl = None

from repro import cache as _cache
from repro import faults as _faults
from repro.errors import StoreError
from repro.obs import current_metrics
from repro.obs.flight import FlightRecorder

MISSING = _cache.MISSING
"""Sentinel returned by :meth:`Store.get` on any miss (clean or quarantined)."""

MAGIC = b"RST1"
_HEADER = struct.Struct("<4sI32s")       # magic, payload length, sha256
MAX_RECORD = 64 * 1024 * 1024
FORMAT_VERSION = 1

SOLVER_REVISION = "pr8"
"""Bumped whenever a change invalidates persisted payloads (pickle
layouts, fragment semantics, certificate formats).  A store written
under another revision is moved aside wholesale, never reinterpreted."""


# -- keys --------------------------------------------------------------------


def canonicalize(obj):
    """A deterministic, hash-seed-independent rendering of a cache key.

    Frozensets (NFA fingerprints contain them) pickle and ``repr`` in
    hash order, which varies across processes with ``PYTHONHASHSEED`` —
    so sets and dicts are sorted into tuples before the key is digested.
    """
    if isinstance(obj, (frozenset, set)):
        return ("set",) + tuple(sorted((canonicalize(x) for x in obj),
                                       key=repr))
    if isinstance(obj, dict):
        return ("dict",) + tuple(sorted(((k, canonicalize(v))
                                         for k, v in obj.items()), key=repr))
    if isinstance(obj, (tuple, list)):
        return tuple(canonicalize(x) for x in obj)
    if isinstance(obj, (str, bytes, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def key_digest(kind, key):
    """The stable index key: sha256 over the canonical (kind, key)."""
    rendered = repr((kind, canonicalize(key))).encode("utf-8")
    return hashlib.sha256(rendered).hexdigest()


# -- framing -----------------------------------------------------------------


def encode_record(record):
    """One framed record: header + pickled payload."""
    payload = pickle.dumps(record, protocol=4)
    if len(payload) > MAX_RECORD:
        raise StoreError("record exceeds the %d-byte frame cap" % MAX_RECORD)
    return _HEADER.pack(MAGIC, len(payload),
                        hashlib.sha256(payload).digest()) + payload


def scan_segment(path, start=0):
    """Parse framed records from *start*; returns ``(records, offset)``.

    *records* is ``[(offset, total_length, dict), ...]``; *offset* is the
    position after the last good frame.  Scanning stops cleanly at the
    first torn or corrupt frame — exactly the shape a crash mid-append
    leaves — so a bad tail hides records but never poisons a reader.
    """
    records = []
    offset = start
    try:
        with open(path, "rb") as handle:
            handle.seek(start)
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break
                magic, length, digest = _HEADER.unpack(header)
                if magic != MAGIC or length > MAX_RECORD:
                    break
                payload = handle.read(length)
                if len(payload) < length:
                    break
                if hashlib.sha256(payload).digest() != digest:
                    break
                try:
                    record = pickle.loads(payload)
                except Exception:
                    break
                if not isinstance(record, dict):
                    break
                total = _HEADER.size + length
                records.append((offset, total, record))
                offset += total
    except OSError:
        pass
    return records, offset


def _flip_byte(data):
    """Mutator for the ``store.read``/``store.write`` corrupt seams:
    bit-flip one payload byte, modelling silent corruption the framing
    (write seam) or the post-checksum path (read seam) must absorb."""
    if not data:
        return data
    middle = len(data) // 2
    return data[:middle] + bytes([data[middle] ^ 0xFF]) + data[middle + 1:]


# -- the store ---------------------------------------------------------------


_COUNTER_NAMES = ("hits", "misses", "writes", "write_errors", "quarantined",
                  "revalidation_failures", "errors", "invalidated")


class Store:
    """One disk-backed store directory; see the module docstring.

    Public entry points (:meth:`get`, :meth:`put`, :meth:`quarantine`,
    :meth:`refresh`, :meth:`save_index`) never raise for an internal
    failure — a broken store degrades to misses and dropped writes.
    """

    def __init__(self, root, revision=None, index_every=32):
        self.root = os.path.abspath(root)
        self.revision = revision or SOLVER_REVISION
        self.index_every = index_every
        self.counters = {name: 0 for name in _COUNTER_NAMES}
        self._index = {}          # digest -> (seq, segment, offset, len, tomb)
        self._scanned = {}        # segment basename -> scanned offset
        self._segment_name = None
        self._segment = None      # own append handle, opened lazily
        self._pending = 0
        self._last_seq = 0
        self._last_refresh = 0.0
        os.makedirs(self.root, exist_ok=True)
        if not os.path.isdir(self.root):
            raise StoreError("store root %r is not a directory" % self.root)
        self._flight = FlightRecorder(os.path.join(self.root, "quarantine"),
                                      source="store")
        self._check_stamp()
        self._load_index()
        self.refresh(force=True)
        atexit.register(self.save_index)

    # -- locking -------------------------------------------------------------

    class _locked:
        """Advisory exclusive lock on ``<root>/lock`` (a no-op where
        ``fcntl`` is unavailable)."""

        def __init__(self, store):
            self._path = os.path.join(store.root, "lock")
            self._handle = None

        def __enter__(self):
            if _faults.ARMED:
                _faults.point("store.lock")
            if fcntl is not None:
                self._handle = open(self._path, "a+")
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_EX)
            return self

        def __exit__(self, *exc):
            if self._handle is not None:
                try:
                    fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
                finally:
                    self._handle.close()
            return False

    # -- stamp ---------------------------------------------------------------

    def _check_stamp(self):
        """Verify the format/revision stamp; skew moves the previous
        generation's segments and index into ``stale-<ns>/``."""
        stamp = {"format": FORMAT_VERSION, "revision": self.revision}
        meta_path = os.path.join(self.root, "meta.json")
        with self._locked(self):
            current = None
            try:
                with open(meta_path) as handle:
                    current = json.load(handle)
            except Exception:
                current = None
            if current == stamp:
                return
            moved = self._segment_names() + (
                ["index.bin"] if os.path.exists(
                    os.path.join(self.root, "index.bin")) else [])
            if moved and (current is not None or True):
                # Unstamped segments are just as unreadable as skewed
                # ones: without a stamp their revision is unknown.
                stale = os.path.join(self.root, "stale-%d" % time.time_ns())
                os.makedirs(stale, exist_ok=True)
                for name in moved:
                    try:
                        os.replace(os.path.join(self.root, name),
                                   os.path.join(stale, name))
                    except OSError:
                        pass
                self.counters["invalidated"] += 1
                metrics = current_metrics()
                if metrics.enabled:
                    metrics.add("store.invalidated")
            tmp = meta_path + ".tmp.%d" % os.getpid()
            with open(tmp, "w") as handle:
                handle.write(json.dumps(stamp, sort_keys=True))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, meta_path)

    # -- index persistence ---------------------------------------------------

    def _load_index(self):
        """Restore the index snapshot; any corruption falls back to a
        full segment rescan (the snapshot is an accelerator, not truth)."""
        path = os.path.join(self.root, "index.bin")
        if not os.path.exists(path):
            return
        records, _ = scan_segment(path)
        if not records:
            return
        doc = records[0][2]
        if doc.get("format") != FORMAT_VERSION \
                or doc.get("revision") != self.revision:
            return
        try:
            for digest, seq, segment, offset, length, tomb \
                    in doc["entries"]:
                self._index[digest] = (seq, segment, offset, length, tomb)
            self._scanned = dict(doc["scanned"])
        except Exception:
            self._index.clear()
            self._scanned = {}

    def save_index(self):
        """Atomically rotate the index snapshot (tmp+fsync+rename under
        the advisory lock); a reader that loses the race just rescans."""
        try:
            if self._segment is not None:
                self._segment.flush()
                os.fsync(self._segment.fileno())
            doc = {"format": FORMAT_VERSION, "revision": self.revision,
                   "scanned": dict(self._scanned),
                   "entries": [(digest,) + tuple(entry)
                               for digest, entry in self._index.items()]}
            data = encode_record(doc)
            with self._locked(self):
                tmp = os.path.join(self.root,
                                   ".index.tmp.%d" % os.getpid())
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, os.path.join(self.root, "index.bin"))
            self._pending = 0
            return True
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.counters["write_errors"] += 1
            return False

    # -- scanning ------------------------------------------------------------

    def _segment_names(self):
        try:
            return sorted(name for name in os.listdir(self.root)
                          if name.startswith("seg-")
                          and name.endswith(".log"))
        except OSError:
            return []

    def refresh(self, force=False):
        """Scan segment tails for records appended by other processes.

        Throttled (unless *force*): callers hit this on every index miss,
        and a directory listing per lookup would not be free.  A segment
        that *shrank* (external truncation) is dropped from the index and
        rescanned from the top — its surviving prefix is still good.
        """
        now = time.monotonic()
        if not force and now - self._last_refresh < 0.2:
            return
        self._last_refresh = now
        for name in self._segment_names():
            start = self._scanned.get(name, 0)
            path = os.path.join(self.root, name)
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size < start:
                self._drop_segment(name)
                start = 0
            if size == start:
                continue
            records, good = scan_segment(path, start)
            for offset, total, record in records:
                self._apply(record, name, offset, total)
            self._scanned[name] = good

    def _drop_segment(self, name):
        for digest in [d for d, e in self._index.items() if e[1] == name]:
            del self._index[digest]
        self._scanned.pop(name, None)

    def _apply(self, record, segment, offset, total):
        digest = record.get("key")
        if not isinstance(digest, str):
            return
        seq = record.get("seq", 0)
        current = self._index.get(digest)
        if current is not None and current[0] >= seq:
            return
        self._index[digest] = (seq, segment, offset, total,
                               bool(record.get("tomb")))

    # -- appending -----------------------------------------------------------

    def _next_seq(self):
        seq = max(time.time_ns(), self._last_seq + 1)
        self._last_seq = seq
        return seq

    def _segment_handle(self):
        if self._segment is None:
            self._segment_name = "seg-%d-%s.log" % (os.getpid(),
                                                    uuid.uuid4().hex[:8])
            self._segment = open(os.path.join(self.root,
                                              self._segment_name), "ab")
        return self._segment

    def _append(self, data):
        handle = self._segment_handle()
        offset = handle.tell()
        handle.write(data)
        handle.flush()
        # Own records need no rescan; remember the tail we wrote.
        self._scanned[self._segment_name] = offset + len(data)
        return offset, len(data)

    # -- public API ----------------------------------------------------------

    def get(self, kind, key, validator=None):
        """The stored value for ``(kind, key)``, or :data:`MISSING`.

        Validate-on-read: the record bytes are re-read from disk and the
        checksum re-verified on every call, then *validator(value, meta)*
        must accept the payload.  Any failure tombstones the entry,
        bumps ``store.quarantined``, dumps a flight artifact, and
        reports a miss — a corrupt entry costs a recompute, never a
        wrong answer.  Never raises.
        """
        metrics = current_metrics()
        try:
            if _faults.ARMED:
                _faults.point("store.read")
            digest = key_digest(kind, key)
            entry = self._index.get(digest)
            if entry is None:
                self.refresh()
                entry = self._index.get(digest)
            if entry is None or entry[4]:
                self.counters["misses"] += 1
                if metrics.enabled:
                    metrics.add("store.misses")
                return MISSING
            _seq, segment, offset, total, _tomb = entry
            payload = self._read_payload(segment, offset, total)
            if payload is None:
                self._quarantine_entry(kind, digest, "checksum", segment,
                                       offset)
                return MISSING
            if _faults.ARMED:
                payload = _faults.corrupt("store.read", payload, _flip_byte)
            value, meta, ok = None, {}, False
            try:
                record = pickle.loads(payload)
                value = record.get("value")
                meta = record.get("meta") or {}
                ok = (record.get("kind") == kind
                      and record.get("key") == digest
                      and not record.get("tomb"))
            except Exception:
                ok = False
            if ok and validator is not None:
                try:
                    ok = bool(validator(value, meta))
                except Exception:
                    ok = False
            if _faults.ARMED:
                _faults.point("store.validate")
                ok = _faults.corrupt("store.validate", ok, lambda _: False)
            if not ok:
                self.counters["revalidation_failures"] += 1
                if metrics.enabled:
                    metrics.add("store.revalidation_failures")
                self._quarantine_entry(kind, digest, "validate", segment,
                                       offset)
                return MISSING
            self.counters["hits"] += 1
            if metrics.enabled:
                metrics.add("store.hits")
            return value
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.counters["errors"] += 1
            if metrics.enabled:
                metrics.add("store.errors")
            return MISSING

    def _read_payload(self, segment, offset, total):
        """Re-read one frame from disk, verifying header and checksum."""
        try:
            with open(os.path.join(self.root, segment), "rb") as handle:
                handle.seek(offset)
                blob = handle.read(total)
        except OSError:
            return None
        if len(blob) != total or total < _HEADER.size:
            return None
        magic, length, digest = _HEADER.unpack_from(blob)
        payload = blob[_HEADER.size:]
        if magic != MAGIC or len(payload) != length:
            return None
        if hashlib.sha256(payload).digest() != digest:
            return None
        return payload

    def put(self, kind, key, value, meta=None, replace=False):
        """Append ``(kind, key) -> value``; returns True when written.

        First write wins by default (*replace=False*): deterministic
        caches re-derive identical values, so re-appending them would
        only grow the log.  Never raises; a failed write is dropped and
        counted (``store.write_errors``).
        """
        metrics = current_metrics()
        try:
            if _faults.ARMED:
                _faults.point("store.write")
            digest = key_digest(kind, key)
            entry = self._index.get(digest)
            if entry is not None and not entry[4] and not replace:
                return False
            record = {"kind": kind, "key": digest, "value": value,
                      "meta": dict(meta or {}), "seq": self._next_seq(),
                      "tomb": False}
            data = encode_record(record)
            if _faults.ARMED:
                data = _faults.corrupt("store.write", data, _flip_byte)
            offset, total = self._append(data)
            self._index[digest] = (record["seq"], self._segment_name,
                                   offset, total, False)
            self.counters["writes"] += 1
            if metrics.enabled:
                metrics.add("store.writes")
            self._pending += 1
            if self._pending >= self.index_every:
                self.save_index()
            return True
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.counters["write_errors"] += 1
            if metrics.enabled:
                metrics.add("store.write_errors")
            return False

    def quarantine(self, kind, key, reason):
        """Tombstone ``(kind, key)`` for a failure detected downstream
        (e.g. a warm-start certificate that failed its re-proof after
        the shape validator passed).  Never raises."""
        try:
            self._quarantine_entry(kind, key_digest(kind, key), reason)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self.counters["errors"] += 1

    def _quarantine_entry(self, kind, digest, reason, segment=None,
                          offset=None):
        self.counters["quarantined"] += 1
        metrics = current_metrics()
        if metrics.enabled:
            metrics.add("store.quarantined")
        try:
            record = {"kind": kind, "key": digest, "value": None,
                      "meta": {"reason": reason}, "seq": self._next_seq(),
                      "tomb": True}
            off, total = self._append(encode_record(record))
            self._index[digest] = (record["seq"], self._segment_name, off,
                                   total, True)
        except Exception:
            # Even un-tombstonable (e.g. read-only disk), the entry is
            # still rejected on every future read by the same check.
            self.counters["write_errors"] += 1
        try:
            self._flight.dump(
                "store-quarantined",
                detail="%s %s: %s" % (kind, digest[:12], reason),
                entry={"name": digest, "kind": kind, "reason": reason,
                       "segment": segment, "offset": offset})
        except Exception:
            pass

    def stats(self):
        return {"entries": sum(1 for e in self._index.values() if not e[4]),
                "tombstones": sum(1 for e in self._index.values() if e[4]),
                "segments": len(self._segment_names()),
                **self.counters}

    def close(self):
        self.save_index()
        if self._segment is not None:
            try:
                self._segment.close()
            except OSError:
                pass
            self._segment = None

    def __repr__(self):
        return "Store(%s, entries=%d, hits=%d, misses=%d)" % (
            self.root, len(self._index), self.counters["hits"],
            self.counters["misses"])


# -- resolution --------------------------------------------------------------


_STORES = {}
_DEFAULT_PATH = None


def get_store(path, revision=None):
    """The process-wide :class:`Store` for *path* (one instance per
    directory), or None when it cannot be opened."""
    key = os.path.abspath(path)
    store = _STORES.get(key)
    if store is None:
        try:
            store = Store(key, revision=revision)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            return None
        _STORES[key] = store
    return store


def set_default_path(path):
    """Install the process default store path (worker boot, CLI flags);
    returns the previous default."""
    global _DEFAULT_PATH
    previous = _DEFAULT_PATH
    _DEFAULT_PATH = path
    return previous


def default_path():
    """The ambient store path: module default, else ``$REPRO_STORE``."""
    return _DEFAULT_PATH or os.environ.get("REPRO_STORE") or None


def active_store(config=None):
    """The store the current solve should use, or None.

    Resolution: ``config.store_path`` -> the process default (set at
    worker boot or by ``--store``) -> the ``REPRO_STORE`` environment
    variable.  Returns None whenever caching is disabled — the
    ``--no-cache`` contract covers persistence too.
    """
    if not _cache.enabled():
        return None
    if config is not None and not getattr(config, "use_caches", True):
        return None
    path = getattr(config, "store_path", None) if config is not None else None
    path = path or default_path()
    if not path:
        return None
    return get_store(path)


def reset():
    """Close and forget every open store (tests simulating a fresh
    worker boot; the on-disk state is untouched)."""
    for store in _STORES.values():
        try:
            store.close()
        except Exception:
            pass
    _STORES.clear()
