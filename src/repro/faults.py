"""Deterministic fault injection at the solver's internal seams.

Production solvers earn their robustness claims by *testing* them: every
"no input escapes as a traceback" guarantee in DESIGN.md Section 7 is
backed by a chaos test that arms one of the fault points below and
asserts the degradation ladder recovers.  This module is that machinery.

Design constraints:

* **off means free** — a planted point costs one module-attribute load
  and a falsy check (``if _faults.ARMED:``) when nothing is armed, so
  the points live in hot paths (cache lookups, simplex pivots)
  permanently;
* **deterministic** — a fault fires on a fixed schedule (skip the first
  ``after`` hits, then fire up to ``times`` times), never on a clock or
  an RNG, so every chaos-test failure replays;
* **catalogued** — only names in :data:`CATALOG` may be armed, and the
  chaos suite iterates the catalog, so a point cannot be planted (or
  bit-rot away) without test coverage.

Three fault modes:

``raise``
    Raise an exception at the point.  The default exception is
    :class:`~repro.errors.FaultInjected` (a :class:`SolverError`), which
    travels the internal-failure recovery path; ``exc=runtime`` raises a
    bare ``RuntimeError`` to model a genuinely unexpected crash.

``delay``
    Sleep ``seconds`` at the point, modelling a stall; with a wall-clock
    budget armed this exercises the attributable-deadline path.

``corrupt``
    Hand the point's return value to a site-supplied mutator, modelling
    a wrong-but-plausible result (a stale cache entry, a bogus model).
    Only seams whose corruption is *detectable* downstream participate
    — model-producing seams (validation catches the lie), cache
    lookups (corruption degrades to a miss, worst case a recompute), and
    the serve-layer result envelope (the portfolio cross-check in
    :mod:`repro.serve.service` catches the fabricated verdict).

Arming: the CLI flag ``--inject-fault SPEC`` (repeatable), the
environment variable ``REPRO_INJECT_FAULT`` (``;``-separated specs), the
``SolverConfig.fault_specs`` tuple, or the :class:`injected` context
manager in tests.  Spec syntax::

    point[:mode[:key=value,key=value...]]

e.g. ``cache.lookup:raise:after=2,times=1`` or ``lia.pivot:delay:seconds=0.1``.
"""

import os
import time

from repro.errors import FaultInjected, ResourceLimit

CATALOG = {
    "cache.lookup": "LRUCache.get — memoization lookup (any cache)",
    "cache.store": "LRUCache.put — memoization insert (any cache)",
    "smt.session.solve": "IncrementalSmtSession.solve — cross-round query",
    "smt.solve": "solve_formula — one-shot DPLL(T) query",
    "sat.solve": "SatSolver.solve — CDCL search entry",
    "automata.determinize": "NFA.determinize — subset construction",
    "automata.intersect": "NFA.intersect — product construction",
    "lia.pivot": "Simplex._pivot — tableau pivot",
    "lia.check": "IntegerSolver.check — branch-and-bound entry",
    "flatten.fragment": "Flattener.fragments — per-fragment flattening",
    "strategy.restrict": "build_restriction — PFA selection",
    "solver.decode": "TrauSolver._decode — LIA model to strings",
    "serve.worker.request": "pool worker request intake — a raise escapes "
                            "the worker loop and kills the process, a "
                            "delay models a hang",
    "serve.worker.result": "pool worker result envelope — corrupt "
                           "fabricates a wrong verdict, a raise kills the "
                           "worker after the work is done",
    "store.read": "Store.get — persistent-store read; a raise degrades to "
                  "a miss, corrupt bit-flips the payload *after* the "
                  "checksum so validate-on-read must catch it",
    "store.write": "Store.put — persistent-store append; corrupt writes a "
                   "record whose checksum cannot verify (a torn write)",
    "store.lock": "Store._locked — advisory-lock acquisition; delay "
                  "models a stalled holder, raise a lock failure",
    "store.validate": "Store.get validator outcome — corrupt forces a "
                      "certificate rejection, driving the quarantine path",
    "net.accept": "NetServer connection accept — a raise drops the "
                  "connection before any request is read (the client "
                  "retries), a delay models a slow accept path",
    "net.read": "NetServer request read — a raise closes the connection "
                "mid-read, modelling a torn or malformed request",
    "net.write": "NetServer response write — a raise loses the response "
                 "after the work is done (the client retries; coalescing "
                 "and the store make the retry cheap)",
    "net.route": "ShardRouter.submit — a raise models a routing failure; "
                 "the front door answers unknown(route-error) instead of "
                 "crashing the connection",
}
"""Every plantable seam: name -> where it lives.  The chaos suite
(`tests/test_faults.py`) arms each of these in turn."""

_EXCEPTIONS = {
    "solver": FaultInjected,
    "runtime": RuntimeError,
    "resource": ResourceLimit,
}

ARMED = {}
"""Armed faults by point name.  Mutated in place, never rebound, so the
``if _faults.ARMED:`` guard at every planted site stays valid.  Empty
means injection is off and every point is free."""


class Fault:
    """One armed fault: a point name, a mode, and a firing schedule."""

    __slots__ = ("point", "mode", "after", "times", "seconds", "exc",
                 "hits", "fired")

    def __init__(self, point, mode="raise", after=0, times=None,
                 seconds=0.01, exc="solver"):
        if point not in CATALOG:
            raise ValueError("unknown fault point %r (catalog: %s)"
                             % (point, ", ".join(sorted(CATALOG))))
        if mode not in ("raise", "delay", "corrupt"):
            raise ValueError("unknown fault mode %r" % mode)
        if exc not in _EXCEPTIONS:
            raise ValueError("unknown fault exception kind %r" % exc)
        self.point = point
        self.mode = mode
        self.after = int(after)
        self.times = None if times is None else int(times)
        self.seconds = float(seconds)
        self.exc = exc
        self.hits = 0          # times the point was reached
        self.fired = 0         # times the fault actually acted

    def _due(self):
        """Advance the schedule; True when this hit should fire."""
        self.hits += 1
        if self.hits <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        self.fired += 1
        return True

    def trigger(self):
        """Act at a plain (non-returning) point: raise or stall."""
        if self.mode == "corrupt" or not self._due():
            return
        if self.mode == "delay":
            time.sleep(self.seconds)
            return
        exc_class = _EXCEPTIONS[self.exc]
        if exc_class is FaultInjected:
            raise FaultInjected("injected fault at %s" % self.point,
                                point=self.point)
        if exc_class is ResourceLimit:
            raise ResourceLimit("injected resource fault at %s" % self.point,
                                reason="deadline")
        raise exc_class("injected fault at %s" % self.point)

    def __repr__(self):
        return "Fault(%s:%s, hits=%d, fired=%d)" % (
            self.point, self.mode, self.hits, self.fired)


def point(name):
    """A planted seam.  Call sites guard with ``if _faults.ARMED:`` so
    this function only runs when at least one fault is armed."""
    fault = ARMED.get(name)
    if fault is not None:
        fault.trigger()


def corrupt(name, value, mutator):
    """A planted value-returning seam: pass *value* through, or through
    *mutator* when a corrupt-mode fault at *name* is due."""
    fault = ARMED.get(name)
    if fault is None or fault.mode != "corrupt":
        return value
    if not fault._due():
        return value
    return mutator(value)


# -- arming ------------------------------------------------------------------


def arm(fault):
    """Install *fault* (replacing any armed fault at the same point)."""
    ARMED[fault.point] = fault
    return fault


def disarm(name=None):
    """Remove the fault at *name*, or every armed fault when None."""
    if name is None:
        ARMED.clear()
    else:
        ARMED.pop(name, None)


def parse_spec(spec):
    """``point[:mode[:k=v,...]]`` -> :class:`Fault` (not yet armed)."""
    parts = spec.split(":", 2)
    name = parts[0].strip()
    mode = parts[1].strip() if len(parts) > 1 and parts[1].strip() \
        else "raise"
    kwargs = {}
    if len(parts) > 2 and parts[2].strip():
        for item in parts[2].split(","):
            if not item.strip():
                continue
            if "=" not in item:
                raise ValueError("malformed fault option %r in %r"
                                 % (item, spec))
            key, value = item.split("=", 1)
            kwargs[key.strip()] = value.strip()
    allowed = {"after", "times", "seconds", "exc"}
    unknown = set(kwargs) - allowed
    if unknown:
        raise ValueError("unknown fault option(s) %s in %r"
                         % (", ".join(sorted(unknown)), spec))
    return Fault(name, mode=mode, **kwargs)


class injected:
    """Context manager arming one fault (or several specs) for a block.

    ``with faults.injected("cache.lookup", mode="raise", times=1) as f:``
    or ``with faults.injected(specs=["lia.pivot:delay:seconds=0.2"]):``.
    Restores the previous armed set on exit, so tests compose.
    """

    def __init__(self, name=None, specs=None, **kwargs):
        self._faults = []
        if name is not None:
            self._faults.append(Fault(name, **kwargs))
        for spec in specs or ():
            self._faults.append(spec if isinstance(spec, Fault)
                                else parse_spec(spec))
        self._saved = None

    def __enter__(self):
        self._saved = dict(ARMED)
        for fault in self._faults:
            arm(fault)
        return self._faults[0] if len(self._faults) == 1 else self._faults

    def __exit__(self, *exc):
        ARMED.clear()
        ARMED.update(self._saved)
        return False


def arm_from_env(environ=None):
    """Arm the ``;``-separated specs in ``REPRO_INJECT_FAULT``, if set."""
    environ = os.environ if environ is None else environ
    raw = environ.get("REPRO_INJECT_FAULT", "")
    armed = []
    for spec in raw.split(";"):
        if spec.strip():
            armed.append(arm(parse_spec(spec)))
    return armed
