"""Packed numeric kernels behind a runtime backend selector.

The three dominant inner loops of the solver — CDCL unit propagation,
simplex pivoting, and the automata product/subset constructions — exist
in two interchangeable implementations:

* ``pure`` — the original object-graph code (``repro.sat.solver``,
  ``repro.lia.simplex``, the dict/frozenset loops in
  ``repro.automata.nfa`` and ``repro.core.sync``).  Always available;
  the reference implementation every packed kernel is differentially
  tested against.
* ``packed`` — flat-array rewrites in this package
  (:mod:`repro.kernels.sat`, :mod:`repro.kernels.simplex`,
  :mod:`repro.kernels.automata`): clause literals live in one int arena
  with index-array watch lists, tableau rows are dense integer vectors
  with a per-row denominator, and determinization runs over int
  bitmasks.  Answers are bit-identical to ``pure`` (the automata
  kernels even produce structurally identical NFAs, so the memoization
  caches are shared between backends).

Selection, most specific wins:

1. ``SolverConfig.backend`` (``"pure"`` / ``"packed"`` / ``"auto"``) —
   :class:`~repro.core.solver.TrauSolver` activates it for the whole
   solve, so spawned serve workers follow their pickled config;
2. the ``REPRO_BACKEND`` environment variable (same values);
3. ``auto`` — ``packed`` when importable, ``pure`` otherwise.

The pure backend can never be unavailable, so resolution always
succeeds; a broken packed import degrades to ``pure`` (and the
degradation ladder's ``minimal`` rung pins ``pure`` explicitly, so a
packed-kernel bug on one rung cannot poison the retries).
"""

import os
from contextlib import contextmanager

PURE = "pure"
PACKED = "packed"
AUTO = "auto"
BACKENDS = (PURE, PACKED)

_ENV_VAR = "REPRO_BACKEND"
_packed_ok = None       # tri-state import probe: None = not yet probed
_stack = []             # active-backend stack (use_backend)


def packed_available():
    """Can the packed kernels be imported on this interpreter?"""
    global _packed_ok
    if _packed_ok is None:
        try:
            from repro.kernels import sat, simplex, automata  # noqa: F401
            _packed_ok = True
        except ImportError:
            _packed_ok = False
    return _packed_ok


def resolve(name=None):
    """Resolve a backend request to a concrete backend name.

    ``None``/``"auto"``/``""`` consult :data:`_ENV_VAR` and fall back to
    auto-detection; ``"packed"`` degrades to ``"pure"`` when the packed
    kernels cannot be imported; anything else raises ``ValueError``.
    """
    if not name or name == AUTO:
        name = os.environ.get(_ENV_VAR, "").strip().lower() or AUTO
        if name not in BACKENDS:
            name = PACKED if packed_available() else PURE
    if name not in BACKENDS:
        raise ValueError("unknown kernel backend %r (want %s or %r)"
                         % (name, "/".join(BACKENDS), AUTO))
    if name == PACKED and not packed_available():
        return PURE
    return name


def active():
    """The backend in effect right now (innermost :func:`use_backend`)."""
    if _stack:
        return _stack[-1]
    return resolve(None)


@contextmanager
def use_backend(name):
    """Activate backend *name* (resolved) for the dynamic extent."""
    _stack.append(resolve(name))
    try:
        yield _stack[-1]
    finally:
        _stack.pop()


# -- factories ---------------------------------------------------------------


def _pick(backend):
    """Concrete backend for a factory request: an explicit "pure"/
    "packed" wins; None/"auto" defer to the ambient active backend."""
    if backend and backend != AUTO:
        return resolve(backend)
    return active()


def sat_solver(backend=None):
    """A fresh SAT solver for *backend* (default: the active one)."""
    if _pick(backend) == PACKED:
        from repro.kernels.sat import PackedSatSolver
        return PackedSatSolver()
    from repro.sat.solver import SatSolver
    return SatSolver()


def simplex_solver(backend=None):
    """A fresh simplex tableau for *backend* (default: the active one).

    (Not named ``simplex``: importing the :mod:`repro.kernels.simplex`
    submodule would rebind that package attribute to the module.)
    """
    if _pick(backend) == PACKED:
        from repro.kernels.simplex import PackedSimplex
        return PackedSimplex()
    from repro.lia.simplex import Simplex
    return Simplex()
