"""Flat-indexed integer simplex (the ``packed`` backend).

Same Dutertre–de Moura bound-form tableau and Bland's-rule pivoting as
:class:`repro.lia.simplex.Simplex`, restructured for speed:

* **interned variables** — names are mapped to dense ints at
  ``add_variable`` time, so the interned index *is* Bland's insertion
  order and every per-variable lookup (value, bounds, columns) is a
  list indexing instead of a string-keyed dict probe;
* **integer rows** — a row is stored as integer numerators plus one
  positive per-row denominator (``coeff = num/den``), so pivot
  substitution is pure ``int`` multiply/add with a lazy gcd reduction,
  never :class:`~fractions.Fraction` arithmetic (the pure tableau pays
  Fraction boxing whenever a pivot leaves a non-integral coefficient);
* **min-scan selection** — the pure ``check()`` re-sorts the basic set
  and the pivot row *every iteration* to apply Bland's rule; here both
  the violated row and the entering variable are single-pass minimum
  scans over interned indices, which selects the identical pivot.

Exact-rational semantics are unchanged: variable values are plain ints
with :class:`~fractions.Fraction` fallback (callers branch on
``value.denominator``), bound asserts/conflicts/explanations mirror the
pure code path for path, and ``check`` answers "sat"/"unsat" with the
same tag sets.  A per-row denominator also sidesteps fixed-width
overflow entirely — ``toNum`` rows carry coefficients like ``10**39``,
which is why an int64/numpy fast path was measured and rejected.
"""

from fractions import Fraction
from math import gcd

from repro import faults as _faults
from repro.errors import ResourceLimit, SolverError
from repro.lia.simplex import _exact_div, _norm


class PackedSimplex:
    """Feasibility of conjunctions of bounds over linear rows."""

    def __init__(self):
        self._order = {}        # var name -> interned index (Bland order)
        self._names = []        # index -> var name
        self._val = []          # index -> int | Fraction
        self._low = []          # index -> (value, tag) or None
        self._upp = []          # index -> (value, tag) or None
        self._cols = []         # index -> set of basic indices using it
        self._rows = {}         # basic index -> {var index: int numerator}
        self._dens = {}         # basic index -> positive int denominator
        self._trail = []        # (index, is_lower, old bound tuple or None)
        self._marks = []
        self.conflict = None    # list of tags after an unsat check
        self.pivots = 0         # lifetime pivot count (repro.obs reads it)

    # -- setup ----------------------------------------------------------------

    def add_variable(self, var):
        if var in self._order:
            return
        self._order[var] = len(self._names)
        self._names.append(var)
        self._val.append(0)
        self._low.append(None)
        self._upp.append(None)
        self._cols.append(set())

    def define(self, slack, coeffs):
        """Introduce ``slack = sum coeffs[x] * x`` as a basic variable."""
        if slack in self._order:
            raise SolverError("variable %r already exists" % (slack,))
        self.add_variable(slack)
        acc = {}
        for x, c in coeffs.items():
            if c == 0:
                continue
            if x not in self._order:
                self.add_variable(x)
            xi = self._order[x]
            if xi in self._rows:
                # x is already basic: substitute its row.
                den = self._dens[xi]
                for yi, num in self._rows[xi].items():
                    acc[yi] = _norm(acc.get(yi, 0) + _exact_div(c * num, den))
            else:
                acc[xi] = _norm(acc.get(xi, 0) + c)
        acc = {xi: v for xi, v in acc.items() if v != 0}
        # Clear denominators: one positive denominator per row.
        den = 1
        for v in acc.values():
            if v.__class__ is Fraction:
                d = v.denominator
                den = den // gcd(den, d) * d
        row = {}
        for xi, v in acc.items():
            num = v * den
            row[xi] = num if num.__class__ is int else num.numerator
        si = self._order[slack]
        self._rows[si] = row
        self._dens[si] = den
        for xi in row:
            self._cols[xi].add(si)
        self._val[si] = _norm(sum(
            v * self._val[xi] for xi, v in acc.items()))

    # -- bound assertion ---------------------------------------------------------

    def push(self):
        self._marks.append(len(self._trail))

    def pop(self):
        mark = self._marks.pop()
        trail = self._trail
        low = self._low
        upp = self._upp
        while len(trail) > mark:
            vi, is_lower, old = trail.pop()
            if is_lower:
                low[vi] = old
            else:
                upp[vi] = old

    def assert_lower(self, var, value, tag):
        """Assert ``var >= value``; returns None or a conflict tag list."""
        if not isinstance(value, int):
            value = _norm(Fraction(value))
        vi = self._order[var]
        old = self._low[vi]
        if old is not None and value <= old[0]:
            return None
        up = self._upp[vi]
        if up is not None and value > up[0]:
            return [t for t in (tag, up[1]) if t is not None]
        self._trail.append((vi, True, old))
        self._low[vi] = (value, tag)
        if vi not in self._rows and self._val[vi] < value:
            self._update(vi, value)
        return None

    def assert_upper(self, var, value, tag):
        """Assert ``var <= value``; returns None or a conflict tag list."""
        if not isinstance(value, int):
            value = _norm(Fraction(value))
        vi = self._order[var]
        old = self._upp[vi]
        if old is not None and value >= old[0]:
            return None
        low = self._low[vi]
        if low is not None and value < low[0]:
            return [t for t in (tag, low[1]) if t is not None]
        self._trail.append((vi, False, old))
        self._upp[vi] = (value, tag)
        if vi not in self._rows and self._val[vi] > value:
            self._update(vi, value)
        return None

    # -- tableau operations ---------------------------------------------------

    def _update(self, vi, value):
        val = self._val
        delta = value - val[vi]
        dens = self._dens
        rows = self._rows
        for bi in self._cols[vi]:
            val[bi] = _norm(
                val[bi] + _exact_div(rows[bi][vi] * delta, dens[bi]))
        val[vi] = value

    def _pivot_and_update(self, bi, ni, value):
        val = self._val
        num = self._rows[bi][ni]
        theta = _exact_div((value - val[bi]) * self._dens[bi], num)
        val[bi] = value
        val[ni] = _norm(val[ni] + theta)
        rows = self._rows
        dens = self._dens
        for oi in self._cols[ni]:
            if oi != bi:
                val[oi] = _norm(
                    val[oi] + _exact_div(rows[oi][ni] * theta, dens[oi]))
        self._pivot(bi, ni)

    def _pivot(self, bi, ni):
        if _faults.ARMED:
            _faults.point("lia.pivot")
        self.pivots += 1
        cols = self._cols
        row = self._rows.pop(bi)
        den = self._dens.pop(bi)
        a = row.pop(ni)
        for xi in row:
            cols[xi].discard(bi)
        cols[ni].discard(bi)
        # ni = (den*bi - sum row)/a, kept as integer numerators over a
        # positive denominator.
        if a < 0:
            new_row = {bi: -den}
            for xi, c in row.items():
                new_row[xi] = c
            new_den = -a
        else:
            new_row = {bi: den}
            for xi, c in row.items():
                new_row[xi] = -c
            new_den = a
        g = new_den
        for c in new_row.values():
            g = gcd(g, c)
            if g == 1:
                break
        if g > 1:
            new_den //= g
            for xi in new_row:
                new_row[xi] //= g
        # Substitute into every other row that used `ni`:
        # orow/oden + (f/oden)*new_row/new_den
        #   = (orow*new_den + f*new_row) / (oden*new_den)
        for oi in list(cols[ni]):
            orow = self._rows[oi]
            f = orow.pop(ni)
            cols[ni].discard(oi)
            oden = self._dens[oi]
            if new_den != 1:
                for xi in orow:
                    orow[xi] *= new_den
                oden *= new_den
            for xi, c in new_row.items():
                nc = orow.get(xi, 0) + f * c
                if nc == 0:
                    if xi in orow:
                        del orow[xi]
                        cols[xi].discard(oi)
                else:
                    if xi not in orow:
                        cols[xi].add(oi)
                    orow[xi] = nc
            if oden != 1:
                g = oden
                for c in orow.values():
                    g = gcd(g, c)
                    if g == 1:
                        break
                if g > 1:
                    oden //= g
                    for xi in orow:
                        orow[xi] //= g
            self._dens[oi] = oden
        self._rows[ni] = new_row
        self._dens[ni] = new_den
        for xi in new_row:
            cols[xi].add(ni)

    # -- feasibility --------------------------------------------------------------

    def check(self, deadline=None):
        """Restore feasibility; "sat" or "unsat" (with ``self.conflict``)."""
        self.conflict = None
        steps = 0
        val = self._val
        low_arr = self._low
        upp_arr = self._upp
        rows = self._rows
        while True:
            steps += 1
            if deadline is not None and steps % 256 == 0 \
                    and deadline.expired():
                raise ResourceLimit("simplex deadline expired",
                                    reason="deadline")
            # Bland's rule, without the per-iteration sort the pure
            # solver pays: a single min-scan over interned indices
            # picks the identical (first-in-order) violated row.
            violated = None
            below = False
            for bi in rows:
                if violated is not None and bi > violated:
                    continue
                v = val[bi]
                b = low_arr[bi]
                if b is not None and v < b[0]:
                    violated, below = bi, True
                    continue
                b = upp_arr[bi]
                if b is not None and v > b[0]:
                    violated, below = bi, False
            if violated is None:
                return "sat"
            row = rows[violated]
            entering = None
            for xi, c in row.items():
                if entering is not None and xi > entering:
                    continue
                if below:
                    ok = (c > 0 and self._at_upper_slack(xi)) or \
                         (c < 0 and self._at_lower_slack(xi))
                else:
                    ok = (c > 0 and self._at_lower_slack(xi)) or \
                         (c < 0 and self._at_upper_slack(xi))
                if ok:
                    entering = xi
            if entering is None:
                self.conflict = self._explain(violated, below)
                return "unsat"
            target = (low_arr[violated] if below else upp_arr[violated])[0]
            self._pivot_and_update(violated, entering, target)

    def _at_upper_slack(self, vi):
        """Can value of *vi* still increase?"""
        up = self._upp[vi]
        return up is None or self._val[vi] < up[0]

    def _at_lower_slack(self, vi):
        """Can value of *vi* still decrease?"""
        low = self._low[vi]
        return low is None or self._val[vi] > low[0]

    def _explain(self, bi, below):
        row = self._rows[bi]
        tags = []
        own = self._low[bi] if below else self._upp[bi]
        if own[1] is not None:
            tags.append(own[1])
        for xi, c in row.items():
            if below:
                bound = self._upp[xi] if c > 0 else self._low[xi]
            else:
                bound = self._low[xi] if c > 0 else self._upp[xi]
            if bound is not None and bound[1] is not None:
                tags.append(bound[1])
        return tags

    # -- results --------------------------------------------------------------------

    def values(self):
        """Current variable valuation (meaningful after a "sat" check)."""
        val = self._val
        return {name: val[i] for i, name in enumerate(self._names)}

    def value(self, var):
        return self._val[self._order[var]]

    def bounds(self, var):
        vi = self._order[var]
        low = self._low[vi]
        up = self._upp[vi]
        return (None if low is None else low[0],
                None if up is None else up[0])
