"""Bitset automata constructions (the ``packed`` backend).

Drop-in inner loops for :meth:`repro.automata.nfa.NFA.determinize`,
:meth:`~repro.automata.nfa.NFA.intersect` and
:func:`repro.core.sync.asynchronous_product`:

* **determinize** — a subset of NFA states is one Python int bitmask
  instead of a ``frozenset``; the successor set under a symbol is an
  OR-fold of precomputed per-symbol successor masks over the set bits,
  so the inner loop is integer AND/OR/shift with no hashing of sets;
* **intersect / asynchronous product** — product states are single int
  pair codes (``p * n_right + q``) instead of tuples, symbols and labels
  are interned to small ints, and label-pair compatibility is evaluated
  once per *label* pair up front instead of once per *state* pair in the
  BFS (the pure product re-derives it millions of times).

Every function returns raw ``(num_states, transitions, finals)`` data —
the callers build the :class:`~repro.automata.nfa.NFA` — and traverses
in exactly the pure loop's discovery order, so the resulting automata
are structurally identical to the pure backend's (same state numbering,
same transition order).  That makes the shared fingerprint-keyed LRU
caches backend-agnostic: a result cached under one backend is the
*same* NFA the other would have built.

Budget semantics are preserved verbatim: the state-count guard is an
exact per-state compare, the wall-clock check fires every 64 expansions,
and the :class:`~repro.errors.ResourceLimit` reasons match the pure
messages.
"""

from collections import deque

from repro.errors import ResourceLimit


def determinize_packed(base, alphabet, deadline=None):
    """Subset construction over int bitmasks.

    *base* must be epsilon-free and *alphabet* already sorted (the
    caller normalizes both, exactly as for the pure construction).
    Returns ``(num_states, transitions, finals)``.
    """
    n = base.num_states
    sym_index = {sym: i for i, sym in enumerate(alphabet)}
    # succ[si][s] = bitmask of states reachable from s on alphabet[si].
    succ = [[0] * n for _ in alphabet]
    for s in range(n):
        for sym, t in base._adj[s]:
            si = sym_index.get(sym)
            if si is not None:
                succ[si][s] |= 1 << t
    final_mask = 0
    for f in base.finals:
        final_mask |= 1 << f

    start = 1 << base.initial
    index = {start: 0}
    order = [start]
    transitions = []
    finals = set()
    state_limit = None if deadline is None else deadline.automata_state_limit
    steps = 0
    head = 0
    while head < len(order):
        steps += 1
        if deadline is not None:
            if state_limit is not None and len(index) > state_limit:
                deadline.charge_states(len(index), op="determinization")
            if not steps & 63 and deadline.expired():
                raise ResourceLimit("determinization hit the deadline",
                                    reason="deadline")
        current = order[head]
        ci = head
        head += 1
        if current & final_mask:
            finals.add(ci)
        for si, sym in enumerate(alphabet):
            arr = succ[si]
            nxt = 0
            m = current
            while m:
                low = m & -m
                nxt |= arr[low.bit_length() - 1]
                m ^= low
            ni = index.get(nxt)
            if ni is None:
                ni = index[nxt] = len(index)
                order.append(nxt)
            transitions.append((ci, sym, ni))
    return len(index), transitions, finals


def intersect_packed(a, b, deadline=None):
    """Pair-BFS product over int pair codes with interned symbols.

    *a* and *b* must be epsilon-free.  Returns
    ``(num_states, transitions, finals)``; the initial state is 0.
    """
    nb = b.num_states
    # Intern symbols appearing in `a`; `b` symbols outside that set can
    # never fire in the product, so they are dropped up front.
    sym_ids = {}
    syms = []
    a_adj = []
    for p in range(a.num_states):
        row = []
        for sym, t in a._adj[p]:
            si = sym_ids.get(sym)
            if si is None:
                si = sym_ids[sym] = len(syms)
                syms.append(sym)
            row.append((si, t))
        a_adj.append(row)
    b_by = [None] * nb
    for q in range(nb):
        d = {}
        for sym, t in b._adj[q]:
            si = sym_ids.get(sym)
            if si is not None:
                d.setdefault(si, []).append(t)
        b_by[q] = d

    a_finals = a.finals
    b_finals = b.finals
    start_code = a.initial * nb + b.initial
    index = {start_code: 0}
    transitions = []
    finals = []
    worklist = deque([start_code])
    state_limit = None if deadline is None else deadline.automata_state_limit
    steps = 0
    while worklist:
        steps += 1
        if deadline is not None:
            if state_limit is not None and len(index) > state_limit:
                deadline.charge_states(len(index), op="product")
            if not steps & 63 and deadline.expired():
                raise ResourceLimit("product construction hit the deadline",
                                    reason="deadline")
        code = worklist.popleft()
        p, q = divmod(code, nb)
        src = index[code]
        if p in a_finals and q in b_finals:
            finals.append(src)
        bq = b_by[q]
        for si, pt in a_adj[p]:
            qts = bq.get(si)
            if qts:
                base_pt = pt * nb
                sym = syms[si]
                for qt in qts:
                    tcode = base_pt + qt
                    ti = index.get(tcode)
                    if ti is None:
                        ti = index[tcode] = len(index)
                        worklist.append(tcode)
                    transitions.append((src, sym, ti))
    return len(index), transitions, finals


def async_product_packed(pa_left, pa_right, compatible, idle, deadline=None):
    """Asynchronous product with label-pair compatibility precomputed.

    *compatible* is a ``(left_label, right_label) -> bool`` callable
    (label components may be *idle*); it depends only on the labels, so
    it is evaluated once per label pair here and the BFS reads a flat
    bool table.  Returns ``(num_states, transitions, finals)``.
    """
    left, right = pa_left.nfa, pa_right.nfa
    nr = right.num_states
    lids = {}
    llabels = []
    ledges = []
    for p in range(left.num_states):
        row = []
        for lv, pt in left.out_edges(p):
            li = lids.get(lv)
            if li is None:
                li = lids[lv] = len(llabels)
                llabels.append(lv)
            row.append((li, lv, pt))
        ledges.append(row)
    rids = {}
    rlabels = []
    redges = []
    for q in range(nr):
        row = []
        for rv, qt in right.out_edges(q):
            ri = rids.get(rv)
            if ri is None:
                ri = rids[rv] = len(rlabels)
                rlabels.append(rv)
            row.append((ri, rv, qt))
        redges.append(row)
    comp = [[compatible(lv, rv) for rv in rlabels] for lv in llabels]
    lidle = [compatible(lv, idle) for lv in llabels]
    ridle = [compatible(idle, rv) for rv in rlabels]

    start_code = left.initial * nr + pa_right.initial
    goal_code = pa_left.final * nr + pa_right.final
    index = {start_code: 0}
    transitions = []
    worklist = deque([start_code])
    state_limit = None if deadline is None else deadline.automata_state_limit
    steps = 0
    while worklist:
        steps += 1
        if deadline is not None:
            if state_limit is not None and len(index) > state_limit:
                deadline.charge_states(len(index), op="asynchronous product")
            if not steps & 63 and deadline.expired():
                raise ResourceLimit("asynchronous product hit the deadline",
                                    reason="deadline")
        code = worklist.popleft()
        p, q = divmod(code, nr)
        src = index[code]
        redgq = redges[q]
        for li, lv, pt in ledges[p]:
            crow = comp[li]
            base_pt = pt * nr
            for ri, rv, qt in redgq:
                if crow[ri]:
                    tcode = base_pt + qt
                    ti = index.get(tcode)
                    if ti is None:
                        ti = index[tcode] = len(index)
                        worklist.append(tcode)
                    transitions.append((src, (lv, rv), ti))
            if lidle[li]:
                tcode = base_pt + q
                ti = index.get(tcode)
                if ti is None:
                    ti = index[tcode] = len(index)
                    worklist.append(tcode)
                transitions.append((src, (lv, idle), ti))
        for ri, rv, qt in redgq:
            if ridle[ri]:
                tcode = p * nr + qt
                ti = index.get(tcode)
                if ti is None:
                    ti = index[tcode] = len(index)
                    worklist.append(tcode)
                transitions.append((src, (idle, rv), ti))
    finals = [index[goal_code]] if goal_code in index else []
    return len(index), transitions, finals
