"""Arena-packed CDCL SAT solver (the ``packed`` backend).

Same algorithm and same answers as :class:`repro.sat.solver.SatSolver`
(two-watched-literal propagation, first-UIP learning with minimization,
VSIDS, phase saving, Luby restarts, MiniSat-style assumptions), but the
hot-path data lives in flat index arrays instead of an object graph:

* **clause arena** — every clause is a length-prefixed slice of one flat
  int list; a clause reference is the index of its first literal, so the
  propagation loop reads literals with two list indexings and never
  touches a ``_Clause`` object or an attribute;
* **watch lists** — one list of clause-reference lists indexed by
  ``2*var + sign`` instead of a dict keyed by literals;
* **assignment / level / reason / activity / phase** — flat lists
  indexed by variable (``assign[v]`` is ``0`` unassigned, ``1`` true,
  ``-1`` false), so the inner loop replaces every ``dict.get`` with a
  list indexing.

The arrays are plain Python lists rather than ``array('i')``: CPython
boxes an ``array`` element into a fresh int object on *every* read,
which measures slower than list indexing on this workload — the win of
the packed layout is the flat indexed addressing, not the storage width.

Learnt-clause reduction marks dropped clauses dead in the watch lists
and, once dead slices exceed half the arena, compacts it — rewriting
clause references in the watch lists *and* in the reason array, so
conflict analysis never follows a stale reference.

Differential guarantee: for any clause/assumption sequence the verdicts
match the pure solver's, and SAT models satisfy the same clause set
(``tests/test_kernels.py`` property-checks this; model *values* may
differ, as for any two correct SAT solvers).
"""

from heapq import heapify, heappop, heappush

from repro import faults as _faults
from repro.config import Deadline
from repro.obs import current_metrics
from repro.sat.solver import SAT, UNSAT, UNKNOWN, _luby


class PackedSatSolver:
    """CDCL over integer literals, clause arena + flat index arrays."""

    def __init__(self):
        self._num_vars = 0
        # Clause arena: [0, len, l1..lk, len, l1..lk, ...].  A clause
        # reference points at its first literal; arena[ref-1] is its
        # length.  The leading 0 keeps every valid reference >= 2, so 0
        # can mean "no reason" in the reason array.
        self._arena = [0]
        self._clause_refs = []
        self._learnt_refs = []
        self._garbage = 0           # dead arena slots awaiting compaction
        self._watches = [[], []]    # index 2*v (lit v) / 2*v+1 (lit -v)
        self._assign = [0]          # var -> 0 unassigned / 1 true / -1 false
        self._levels = [0]          # var -> decision level (valid if assigned)
        self._reasons = [0]         # var -> implying clause ref (0 = none)
        self._trail = []
        self._trail_lim = []
        self._queue_head = 0
        self._activity = [0.0]
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase = [False]
        self._heap = []
        self._ok = True

    # -- construction -------------------------------------------------------

    def ensure_var(self, var):
        while self._num_vars < var:
            self._num_vars += 1
            v = self._num_vars
            self._assign.append(0)
            self._levels.append(0)
            self._reasons.append(0)
            self._activity.append(0.0)
            self._phase.append(False)
            self._watches.append([])    # literal  v -> index 2v
            self._watches.append([])    # literal -v -> index 2v+1
            heappush(self._heap, (0.0, v))

    def _push_clause(self, lits):
        arena = self._arena
        arena.append(len(lits))
        ref = len(arena)
        arena.extend(lits)
        return ref

    def _watch(self, ref):
        arena = self._arena
        l0 = arena[ref]
        l1 = arena[ref + 1]
        # A clause watching literal l sits in the watch list of -l (the
        # list scanned when -l's negation, i.e. l's falsifier, fires).
        self._watches[l0 + l0 + 1 if l0 > 0 else -l0 - l0].append(ref)
        self._watches[l1 + l1 + 1 if l1 > 0 else -l1 - l1].append(ref)

    def add_clause(self, lits):
        """Add a clause; returns False if the solver became trivially unsat."""
        if not self._ok:
            return False
        self._backtrack(0)
        seen = set()
        out = []
        assign = self._assign
        levels = self._levels
        for lit in lits:
            var = lit if lit > 0 else -lit
            if var > self._num_vars:
                self.ensure_var(var)
            if -lit in seen:
                return True     # tautology
            if lit in seen:
                continue
            v = assign[var]
            if v:
                value = (v > 0) == (lit > 0)
                if value and levels[var] == 0:
                    return True     # already satisfied at root
                if not value and levels[var] == 0:
                    continue        # falsified at root, drop literal
            seen.add(lit)
            out.append(lit)
        if not out:
            self._ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], 0):
                self._ok = False
                return False
            if self._propagate():
                self._ok = False
                return False
            return True
        ref = self._push_clause(out)
        self._clause_refs.append(ref)
        self._watch(ref)
        return True

    # -- assignment ---------------------------------------------------------

    def _value(self, lit):
        v = self._assign[lit if lit > 0 else -lit]
        if not v:
            return None
        return (v > 0) == (lit > 0)

    def _enqueue(self, lit, reason_ref):
        var = lit if lit > 0 else -lit
        v = self._assign[var]
        if v:
            return (v > 0) == (lit > 0)
        self._assign[var] = 1 if lit > 0 else -1
        self._levels[var] = len(self._trail_lim)
        self._reasons[var] = reason_ref
        self._trail.append(lit)
        return True

    def _propagate(self):
        """Unit propagation; returns a conflicting clause ref or 0.

        The hottest loop in the packed backend: every memory access is a
        list indexing into the arena or a per-variable array.
        """
        arena = self._arena
        assign = self._assign
        watches = self._watches
        trail = self._trail
        levels = self._levels
        reasons = self._reasons
        qhead = self._queue_head
        current_level = len(self._trail_lim)
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            wi = lit + lit if lit > 0 else 1 - lit - lit
            watchers = watches[wi]
            if not watchers:
                continue
            watches[wi] = []
            i = 0
            n = len(watchers)
            while i < n:
                ref = watchers[i]
                i += 1
                # Ensure the falsified literal is in slot 1.
                first = arena[ref]
                if first == -lit:
                    first = arena[ref + 1]
                    arena[ref + 1] = -lit
                    arena[ref] = first
                v = assign[first] if first > 0 else -assign[-first]
                if v > 0:
                    watches[wi].append(ref)
                    continue
                # Search slots 2.. for a non-false literal to watch.
                end = ref + arena[ref - 1]
                k = ref + 2
                moved = False
                while k < end:
                    lk = arena[k]
                    if (assign[lk] if lk > 0 else -assign[-lk]) >= 0:
                        arena[ref + 1] = lk
                        arena[k] = -lit
                        watches[lk + lk + 1 if lk > 0
                                else -lk - lk].append(ref)
                        moved = True
                        break
                    k += 1
                if moved:
                    continue
                # Clause is unit or conflicting.
                watches[wi].append(ref)
                if v < 0:
                    # Conflict: restore remaining watchers.
                    watches[wi].extend(watchers[i:])
                    self._queue_head = len(trail)
                    return ref
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                levels[var] = current_level
                reasons[var] = ref
                trail.append(first)
        self._queue_head = qhead
        return 0

    def _backtrack(self, level):
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        trail = self._trail
        assign = self._assign
        reasons = self._reasons
        phase = self._phase
        activity = self._activity
        heap = self._heap
        for idx in range(len(trail) - 1, limit - 1, -1):
            lit = trail[idx]
            var = lit if lit > 0 else -lit
            phase[var] = assign[var] > 0
            assign[var] = 0
            reasons[var] = 0
            heappush(heap, (-activity[var], var))
        del trail[limit:]
        del self._trail_lim[level:]
        self._queue_head = limit

    # -- conflict analysis --------------------------------------------------

    def _bump_var(self, var):
        activity = self._activity
        activity[var] += self._var_inc
        if not self._assign[var]:
            heappush(self._heap, (-activity[var], var))
        if activity[var] > 1e100:
            assign = self._assign
            for v in range(1, self._num_vars + 1):
                activity[v] *= 1e-100
            self._var_inc *= 1e-100
            self._heap = [(-activity[v], v)
                          for _, v in self._heap if not assign[v]]
            heapify(self._heap)

    def _analyze(self, conflict_ref):
        """First-UIP learning; returns (learnt_lits, backtrack_level)."""
        arena = self._arena
        levels = self._levels
        reasons = self._reasons
        trail = self._trail
        current_level = len(self._trail_lim)
        seen = set()
        learnt = [0]        # slot 0 for the asserting literal
        counter = 0
        lit = 0
        ref = conflict_ref
        index = len(trail)
        while True:
            for idx in range(ref, ref + arena[ref - 1]):
                q = arena[idx]
                if q == lit:
                    continue
                var = q if q > 0 else -q
                if var in seen or levels[var] == 0:
                    continue
                seen.add(var)
                self._bump_var(var)
                if levels[var] == current_level:
                    counter += 1
                else:
                    learnt.append(q)
            # Pick the next trail literal to resolve on.
            while True:
                index -= 1
                lit = trail[index]
                if (lit if lit > 0 else -lit) in seen:
                    break
            counter -= 1
            var = lit if lit > 0 else -lit
            seen.discard(var)
            if counter == 0:
                break
            ref = reasons[var]
        learnt[0] = -lit

        # Clause minimization: drop literals implied by the rest.
        marked = set(q if q > 0 else -q for q in learnt[1:])
        kept = [learnt[0]]
        for q in learnt[1:]:
            qv = q if q > 0 else -q
            ref = reasons[qv]
            if not ref:
                kept.append(q)
                continue
            redundant = True
            for idx in range(ref, ref + arena[ref - 1]):
                r = arena[idx]
                rv = r if r > 0 else -r
                if rv == qv:
                    continue
                if levels[rv] != 0 and rv not in marked and rv not in seen:
                    redundant = False
                    break
            if not redundant:
                kept.append(q)
        learnt = kept

        if len(learnt) == 1:
            return learnt, 0
        # Backtrack level: highest level among non-asserting literals.
        max_i = 1
        li = learnt[1]
        max_level = levels[li if li > 0 else -li]
        for i in range(2, len(learnt)):
            li = learnt[i]
            level = levels[li if li > 0 else -li]
            if level > max_level:
                max_i, max_level = i, level
        learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, max_level

    # -- decisions ----------------------------------------------------------

    def _decide(self):
        assign = self._assign
        heap = self._heap
        while heap:
            _, v = heappop(heap)
            if not assign[v]:
                return v if self._phase[v] else -v
        # The heap is lazy; fall back to a scan to be safe.
        for v in range(1, self._num_vars + 1):
            if not assign[v]:
                return v if self._phase[v] else -v
        return 0

    # -- main loop ----------------------------------------------------------

    def simplify(self):
        """Propagate at the root level; False if the instance is unsat."""
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate():
            self._ok = False
            return False
        return True

    def level0_literals(self):
        """Literals forced at decision level zero (call after simplify)."""
        if self._trail_lim:
            limit = self._trail_lim[0]
            return list(self._trail[:limit])
        return list(self._trail)

    def propagate_assumptions(self, assumptions):
        """Literals implied by unit propagation under *assumptions*.

        Same contract as the pure solver: returns the propagated trail,
        or ``None`` when propagation alone refutes the assumptions
        (with :attr:`_ok` still True) or the solver is globally unsat.
        """
        if not self._ok:
            return None
        self._backtrack(0)
        if self._propagate():
            self._ok = False
            return None
        for lit in assumptions:
            self.ensure_var(lit if lit > 0 else -lit)
            value = self._value(lit)
            if value is False:
                self._backtrack(0)
                return None
            self._trail_lim.append(len(self._trail))
            if value is None:
                self._enqueue(lit, 0)
                if self._propagate():
                    self._backtrack(0)
                    return None
        implied = list(self._trail)
        self._backtrack(0)
        return implied

    def solve(self, deadline=None, conflict_limit=None, assumptions=None):
        """Run the CDCL loop; returns SAT, UNSAT or UNKNOWN (budget).

        Assumption semantics match the pure solver: pseudo-decisions at
        levels ``1..k``, UNSAT means "inconsistent with the assumptions"
        and the solver stays usable (only a level-zero conflict marks it
        permanently unsat).
        """
        if _faults.ARMED:
            _faults.point("sat.solve")
        if deadline is None:
            deadline = Deadline.unbounded()
        assumptions = list(assumptions or ())
        if not self._ok:
            return UNSAT
        self._backtrack(0)
        for lit in assumptions:
            self.ensure_var(lit if lit > 0 else -lit)
        if self._propagate():
            self._ok = False
            return UNSAT

        conflicts_total = 0
        decisions = 0
        restarts = 0
        luby_index = 1
        restart_limit = 32 * _luby(luby_index)
        conflicts_since_restart = 0

        try:
            while True:
                conflict = self._propagate()
                if conflict:
                    conflicts_total += 1
                    conflicts_since_restart += 1
                    if conflict_limit is not None \
                            and conflicts_total > conflict_limit:
                        return UNKNOWN
                    if conflicts_total % 64 == 0 and deadline.expired():
                        return UNKNOWN
                    if not self._trail_lim:
                        self._ok = False
                        return UNSAT
                    learnt, back_level = self._analyze(conflict)
                    self._backtrack(back_level)
                    if len(learnt) == 1:
                        self._enqueue(learnt[0], 0)
                    else:
                        ref = self._push_clause(learnt)
                        self._learnt_refs.append(ref)
                        self._watch(ref)
                        self._enqueue(learnt[0], ref)
                    self._var_inc /= self._var_decay
                    if conflicts_since_restart >= restart_limit:
                        conflicts_since_restart = 0
                        restarts += 1
                        luby_index += 1
                        restart_limit = 32 * _luby(luby_index)
                        self._backtrack(0)
                    if len(self._learnt_refs) > 2000 \
                            + 4 * len(self._clause_refs):
                        self._reduce_learnts()
                else:
                    if len(self._trail_lim) < len(assumptions):
                        # Place the next assumption as a pseudo-decision
                        # (see the pure solver for the level bookkeeping).
                        lit = assumptions[len(self._trail_lim)]
                        value = self._value(lit)
                        if value is False:
                            self._backtrack(0)
                            return UNSAT
                        self._trail_lim.append(len(self._trail))
                        if value is None:
                            self._enqueue(lit, 0)
                        continue
                    lit = self._decide()
                    if lit == 0:
                        return SAT
                    decisions += 1
                    self._trail_lim.append(len(self._trail))
                    self._enqueue(lit, 0)
        finally:
            metrics = current_metrics()
            if metrics.enabled:
                metrics.add("sat.conflicts", conflicts_total)
                metrics.add("sat.decisions", decisions)
                metrics.add("sat.restarts", restarts)
                metrics.gauge("sat.learnts", len(self._learnt_refs))

    def _reduce_learnts(self):
        """Throw away half of the learnt clauses (longest first)."""
        arena = self._arena
        reasons = self._reasons
        locked = set()
        for lit in self._trail:
            ref = reasons[lit if lit > 0 else -lit]
            if ref:
                locked.add(ref)
        learnts = self._learnt_refs
        learnts.sort(key=lambda ref: arena[ref - 1])
        half = len(learnts) // 2
        keep = learnts[:half]
        dropped = set()
        for ref in learnts[half:]:
            if ref in locked or arena[ref - 1] <= 2:
                keep.append(ref)
            else:
                dropped.add(ref)
                self._garbage += arena[ref - 1] + 1
        self._learnt_refs = keep
        if not dropped:
            return
        watches = self._watches
        for wi in range(2, len(watches)):
            lst = watches[wi]
            if lst:
                watches[wi] = [ref for ref in lst if ref not in dropped]
        if self._garbage * 2 > len(arena):
            self._compact()

    def _compact(self):
        """Rebuild the arena without dead clauses, remapping every
        clause reference (clause lists, watch lists, reason array)."""
        old = self._arena
        new = [0]
        remap = {}
        for refs in (self._clause_refs, self._learnt_refs):
            for i, ref in enumerate(refs):
                size = old[ref - 1]
                new.append(size)
                nref = len(new)
                new.extend(old[ref:ref + size])
                remap[ref] = nref
                refs[i] = nref
        self._arena = new
        self._garbage = 0
        reasons = self._reasons
        for lit in self._trail:
            var = lit if lit > 0 else -lit
            if reasons[var]:
                reasons[var] = remap[reasons[var]]
        # Watched slots (0 and 1 of every clause) are preserved by the
        # copy, so re-deriving the watch lists keeps the invariant.
        watches = self._watches
        for wi in range(len(watches)):
            if watches[wi]:
                watches[wi] = []
        for refs in (self._clause_refs, self._learnt_refs):
            for ref in refs:
                self._watch(ref)

    # -- results ------------------------------------------------------------

    def model(self):
        """Variable -> bool map after a SAT answer (unassigned vars False)."""
        assign = self._assign
        return {v: assign[v] > 0 for v in range(1, self._num_vars + 1)}
