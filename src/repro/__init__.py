"""repro — a reproduction of *Efficient Handling of String-Number
Conversion* (PLDI 2020): a PFA-based string constraint solver.

Public API
----------

* :class:`~repro.strings.ops.ProblemBuilder` — construct string problems
  with high-level operations (concat equalities, regex membership,
  charAt/substr, toNum/toStr, disequalities, integer arithmetic).
* :class:`~repro.core.solver.TrauSolver` — the paper's two-phase decision
  procedure (over-approximation + PFA under-approximation).
* :mod:`repro.baselines` — comparison solvers.
* :mod:`repro.obs` — tracing/metrics: wrap a solve in
  ``scope(Tracer(), Metrics())`` to get per-phase spans and counters.
* :mod:`repro.smtlib` — SMT-LIB 2.x import/export.
* :mod:`repro.bench` — the table-regeneration harness.
* :mod:`repro.serve` — supervised serving: ``SolverService`` runs many
  concurrent solves on a worker pool with hard deadlines, retries,
  quarantine, and a cross-checked portfolio mode (CLI:
  ``python -m repro serve-batch``).

Quickstart::

    from repro import ProblemBuilder, TrauSolver, str_len
    from repro.logic import eq, var

    b = ProblemBuilder()
    x = b.str_var("x")
    n = b.to_num(x)
    b.require_int(eq(var(n), 42))
    b.require_int(eq(str_len(x), 5))
    print(TrauSolver().solve(b).model["x"])   # "00042"
"""

from repro.alphabet import Alphabet, DEFAULT_ALPHABET, EPSILON
from repro.config import SolverConfig, Deadline
from repro.core.solver import TrauSolver, SolveResult
from repro.obs import Metrics, Tracer, render_report, scope
from repro.strings.ast import (
    StrVar, StringProblem, WordEquation, RegularConstraint, IntConstraint,
    ToNum, CharNeq, str_len, length_var,
)
from repro.strings.eval import check_model, to_num_value
from repro.strings.ops import ProblemBuilder

__version__ = "1.0.0"

__all__ = [
    "Alphabet", "DEFAULT_ALPHABET", "EPSILON",
    "SolverConfig", "Deadline",
    "TrauSolver", "SolveResult",
    "StrVar", "StringProblem", "WordEquation", "RegularConstraint",
    "IntConstraint", "ToNum", "CharNeq", "str_len", "length_var",
    "check_model", "to_num_value",
    "ProblemBuilder",
    "Tracer", "Metrics", "scope", "render_report",
    "__version__",
]
