"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class EncodingError(ReproError):
    """A character or word cannot be (de)coded with the active alphabet."""


class ParseError(ReproError):
    """Malformed input to a parser (regex or SMT-LIB)."""

    def __init__(self, message, position=None):
        super().__init__(message if position is None
                         else "%s (at position %d)" % (message, position))
        self.position = position


class SolverError(ReproError):
    """Internal invariant violation inside a solver component."""


class ResourceLimit(ReproError):
    """A deadline or node budget was exhausted mid-search."""


class UnsupportedConstraint(ReproError):
    """A solver was given a constraint kind it does not handle."""
