"""Exception types shared across the library."""


class ReproError(Exception):
    """Base class for all library errors."""


class EncodingError(ReproError):
    """A character or word cannot be (de)coded with the active alphabet."""


class ParseError(ReproError):
    """Malformed input to a parser (regex or SMT-LIB)."""

    def __init__(self, message, position=None):
        super().__init__(message if position is None
                         else "%s (at position %d)" % (message, position))
        self.position = position


class SolverError(ReproError):
    """Internal invariant violation inside a solver component."""


class StoreError(ReproError):
    """Persistent-store framing or record violation.

    Internal to :mod:`repro.store`: every public store entry point
    degrades to a miss (or a dropped write) instead of letting this
    escape into a solve.
    """


class FaultInjected(SolverError):
    """An artificial failure raised by an armed :mod:`repro.faults` point.

    A subclass of :class:`SolverError` on purpose: injected faults must
    travel the exact recovery path a real internal failure would take
    (the degradation ladder of ``TrauSolver.solve``), so chaos tests
    exercise production behaviour, not a parallel code path.
    """

    def __init__(self, message, point=None):
        super().__init__(message)
        self.point = point


class ResourceLimit(ReproError):
    """A resource budget was exhausted mid-search.

    ``reason`` names *which* budget tripped — one of the
    :data:`BUDGET_REASONS` kinds — so an UNKNOWN answer is attributable
    (``stats["stopped_by"]``) instead of being blamed on the deadline
    unconditionally.
    """

    def __init__(self, message, reason="deadline"):
        super().__init__(message)
        self.reason = reason


BUDGET_REASONS = (
    "deadline",          # wall-clock budget (Budget.seconds)
    "bb-nodes",          # branch-and-bound node budget per LIA check
    "smt-iterations",    # DPLL(T) lazy-loop iteration budget
    "automata-states",   # determinize/product state-count guard
)
"""The budget kinds a :class:`ResourceLimit` can attribute itself to."""


class UnsupportedConstraint(ReproError):
    """A solver was given a constraint kind it does not handle."""
