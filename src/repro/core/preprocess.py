"""Input normalization ahead of flattening.

Section 7.2 assumes every variable occurs at most once per word equation
(counting both sides together); repeated occurrences are replaced by fresh
variables linked with auxiliary equations ``x = x'``.  This module performs
that expansion on a copy of the problem.
"""

from repro.strings.ast import StringProblem, StrVar, WordEquation


def expand_duplicates(problem, names):
    """Copy of *problem* where no word equation repeats a variable.

    Every repeated occurrence is replaced by a fresh variable, and a new
    two-variable equation ties the fresh variable back to the original.
    The auxiliary equations themselves satisfy the single-occurrence
    invariant by construction.
    """
    out = StringProblem()
    extra = []
    for constraint in problem:
        if not isinstance(constraint, WordEquation):
            out.add(constraint)
            continue
        seen = set()

        def rewrite(term):
            rewritten = []
            for element in term:
                if isinstance(element, StrVar):
                    if element in seen:
                        fresh = StrVar(names.fresh("dup." + element.name + "."))
                        extra.append(WordEquation((element,), (fresh,)))
                        element = fresh
                    else:
                        seen.add(element)
                rewritten.append(element)
            return tuple(rewritten)

        out.add(WordEquation(rewrite(constraint.lhs),
                             rewrite(constraint.rhs)))
    out.extend(extra)
    return out
