"""Input normalization ahead of flattening.

Section 7.2 assumes every variable occurs at most once per word equation
(counting both sides together); repeated occurrences are replaced by fresh
variables linked with auxiliary equations ``x = x'``.  This module performs
that expansion on a copy of the problem, including equations inside
disjunction branches.  The link equations always live at the top level:
``x = x'`` over a fresh ``x'`` never changes satisfiability, whether or
not the branch that mentions ``x'`` is taken.
"""

from repro.strings.ast import Disjunction, StringProblem, StrVar, WordEquation


def _rewrite_equation(constraint, names, extra):
    seen = set()

    def rewrite(term):
        rewritten = []
        for element in term:
            if isinstance(element, StrVar):
                if element in seen:
                    fresh = StrVar(names.fresh("dup." + element.name + "."))
                    extra.append(WordEquation((element,), (fresh,)))
                    element = fresh
                else:
                    seen.add(element)
            rewritten.append(element)
        return tuple(rewritten)

    return WordEquation(rewrite(constraint.lhs), rewrite(constraint.rhs))


def _rewrite_constraint(constraint, names, extra):
    if isinstance(constraint, WordEquation):
        return _rewrite_equation(constraint, names, extra)
    if isinstance(constraint, Disjunction):
        return Disjunction([
            [_rewrite_constraint(c, names, extra) for c in branch]
            for branch in constraint.branches])
    return constraint


def expand_duplicates(problem, names):
    """Copy of *problem* where no word equation repeats a variable.

    Every repeated occurrence is replaced by a fresh variable, and a new
    two-variable equation ties the fresh variable back to the original.
    The auxiliary equations themselves satisfy the single-occurrence
    invariant by construction.
    """
    out = StringProblem()
    extra = []
    for constraint in problem:
        out.add(_rewrite_constraint(constraint, names, extra))
    out.extend(extra)
    return out
