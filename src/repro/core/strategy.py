"""PFA selection strategy (Section 9).

The paper: numeric PFAs for variables under string-number conversion,
standard PFAs for the rest, with sizes (m, p, q) starting at (5, 2, q0)
— q0 from an internal static analysis — and growing per refinement round.

Our static analysis solves the length abstraction of the problem once and
reads off a plausible length for every string variable.  Variables whose
plausible length is small receive a straight-line PFA of that length (plus
a little slack that grows with the refinement round); this is the
workhorse for symbolic-execution constraints, where path conditions pin
lengths exactly.  The hints are only heuristics: a wrong hint shrinks the
under-approximation (still sound) and the next refinement round recovers.

Variables appearing in character disequalities always get one-transition
PFAs so the disequality flattens to a single linear atom.
"""

from math import inf

from repro import cache as _cache
from repro import faults as _faults
from repro.alphabet import DEFAULT_ALPHABET
from repro.core.overapprox import length_abstraction
from repro.core.pfa import (
    conversion_pfa, numeric_pfa, standard_pfa, straight_pfa,
)
from repro.logic.intervals import propagate_intervals, range_of
from repro.logic.presolve import presolve
from repro.obs import current_metrics
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, RegularConstraint, ToNum, length_var,
)

LENGTH_HINT_THRESHOLD = 40
"""Hints above this length are ignored (the variable is treated as
unbounded and covered by a loop-based PFA instead)."""


def _stored_hints_ok(value, _meta):
    """Validator for persisted length hints: every hint must be an int in
    the range the analysis itself can emit.  Hints are used as *sound*
    bounds (a straight PFA of the hinted length is marked complete), so a
    malformed entry is rejected rather than risked."""
    return (isinstance(value, dict)
            and all(isinstance(k, str) and type(v) is int
                    and 0 <= v <= LENGTH_HINT_THRESHOLD
                    for k, v in value.items()))


_HINTS_CACHE = _cache.LRUCache("strategy.hints", maxsize=256, persist=True,
                               validator=_stored_hints_ok)


def analyze_lengths(problem, alphabet=DEFAULT_ALPHABET, deadline=None,
                    config=None):
    """Sound length upper bounds: string var name -> max length.

    The length abstraction is presolved (variable elimination turns the
    per-position length chains of charAt/substr encodings into explicit
    definitions) and interval propagation — including the branch-hull rule
    over disjunctions — derives bounds every solution satisfies.
    Restricting a variable to the straight-line PFA of its bound therefore
    loses no solutions at all.

    The analysis is a pure function of (problem, alphabet) — interval
    propagation runs to its fixpoint without consulting any budget — so
    the hints are memoized by problem fingerprint unconditionally.
    """
    key = None
    if _cache.enabled():
        key = (_cache.problem_fingerprint(problem), alphabet.signature())
        hit = _HINTS_CACHE.get(key)
        if hit is not _cache.MISSING:
            current_metrics().gauge("strategy.length_hints", len(hit))
            return dict(hit)
    formula = length_abstraction(problem, alphabet)
    # Propagate over the presolved formula (definitions make charAt-style
    # length chains explicit) and over the original (whose direct bounds
    # the definitions may hide), and keep the tighter of the two.
    reduced, steps = presolve(formula)
    state = propagate_intervals(reduced)
    bounds = dict(state.bounds)
    for var, expr in reversed(steps):
        if var not in bounds:
            bounds[var] = range_of(expr, bounds)
    direct = propagate_intervals(formula)
    for var, (lo, hi) in direct.bounds.items():
        old_lo, old_hi = bounds.get(var, (lo, hi))
        bounds[var] = (max(lo, old_lo), min(hi, old_hi))
    hints = {}
    for v in problem.string_vars():
        _, hi = bounds.get(length_var(v.name), (-inf, inf))
        if hi is not inf and 0 <= hi <= LENGTH_HINT_THRESHOLD:
            hints[v.name] = int(hi)
    current_metrics().gauge("strategy.length_hints", len(hints))
    if key is not None:
        _HINTS_CACHE.put(key, dict(hints))
    return hints


def classify_variables(problem):
    """Partition string variables by the PFA shape they need.

    Returns ``(tonum, single_char)`` where *tonum* maps each variable
    under a conversion to its feature set — empty for base-only
    variables, otherwise a subset of ``{"sem", "ws", "sign"}`` unioned
    over every semantics applied to it (the conversion PFA must cover
    the prefix features of all of them).  Constraints inside
    :class:`Disjunction` branches count the same as top-level ones: the
    restriction is shared by every branch.
    """
    tonum = {}
    single_char = set()

    def scan(constraints):
        for c in constraints:
            if isinstance(c, ToNum):
                features = tonum.setdefault(c.var.name, set())
                if c.semantics is not None:
                    features.add("sem")
                    if c.semantics.whitespace:
                        features.add("ws")
                    if c.semantics.sign:
                        features.add("sign")
            elif isinstance(c, CharNeq):
                single_char.add(c.left.name)
                single_char.add(c.right.name)
            elif isinstance(c, CharCode):
                single_char.add(c.var.name)
            elif isinstance(c, Disjunction):
                for branch in c.branches:
                    scan(branch)

    scan(problem)
    return tonum, single_char


def loop_length_hint(problem, default):
    """q0 from static analysis: the longest short cycle among the
    constraint automata, as a proxy for the period of solution words."""
    best = default
    for constraint in problem.by_kind(RegularConstraint):
        cycle = _shortest_cycle_length(constraint.nfa)
        if cycle is not None:
            best = max(best, min(cycle, 6))
    return best


def _shortest_cycle_length(nfa):
    base = nfa.without_epsilon().trim()
    shortest = None
    for start in range(base.num_states):
        # BFS distance back to `start`.
        distance = {start: 0}
        queue = [start]
        while queue:
            state = queue.pop(0)
            for _, target in base.out_edges(state):
                if target == start:
                    length = distance[state] + 1
                    if shortest is None or length < shortest:
                        shortest = length
                    continue
                if target not in distance:
                    distance[target] = distance[state] + 1
                    queue.append(target)
    return shortest


def build_restriction(problem, step, names, alphabet=DEFAULT_ALPHABET,
                      length_hints=None, round_index=0, reuse=None):
    """The flat domain restriction R: string var name -> PFA.

    Returns ``(restriction, complete)``.  *complete* is True when every
    variable received a straight-line PFA whose length is a *sound* upper
    bound from the static analysis: the restriction then loses no
    solutions, so an unsatisfiable flattening proves the input UNSAT.

    *reuse*, when given, is a dict carried across refinement rounds mapping
    variable name to ``(shape, pfa)``.  A variable whose requested shape is
    unchanged since the previous round gets the *same* PFA object back, so
    its character variables — and everything flattened from them — stay
    identical and downstream caches (fragment reuse, incremental SMT) hit.
    """
    if _faults.ARMED:
        _faults.point("strategy.restrict")
    length_hints = length_hints or {}
    tonum_vars, single_char_vars = classify_variables(problem)
    restriction = {}
    complete = True
    reused = 0

    def pfa_for(name, shape):
        nonlocal reused
        if reuse is not None:
            cached = reuse.get(name)
            if cached is not None and cached[0] == shape:
                reused += 1
                return cached[1]
        namer = names.char_namer(name)
        kind = shape[0]
        if kind == "straight":
            pfa = straight_pfa(namer, shape[1])
        elif kind == "numeric":
            pfa = numeric_pfa(namer, shape[1])
        elif kind == "conversion":
            pfa = conversion_pfa(
                namer, shape[1],
                ws_code=alphabet.code(" ") if shape[2] else None,
                sign_codes=((alphabet.code("+"), alphabet.code("-"))
                            if shape[3] else None))
        else:
            pfa = standard_pfa(namer, shape[1], shape[2])
        if reuse is not None:
            reuse[name] = (shape, pfa)
        return pfa

    for v in sorted(problem.string_vars(), key=lambda s: s.name):
        name = v.name
        hint = length_hints.get(name)
        if name in single_char_vars:
            restriction[name] = pfa_for(name, ("straight", 1))
            if hint is None or hint > 1:
                complete = False
        elif name in tonum_vars:
            features = tonum_vars[name]
            if hint is not None:
                # A sound length bound makes the plain chain lossless even
                # for conversions (leading zeros are just digit values and
                # the semantics transducer reads prefixes in-chain), and
                # keeps the variable eligible for positional equations.
                restriction[name] = pfa_for(
                    name, ("straight", min(hint, LENGTH_HINT_THRESHOLD)))
            elif "sem" in features:
                restriction[name] = pfa_for(
                    name, ("conversion", step.numeric_m,
                           "ws" in features, "sign" in features))
                complete = False
            else:
                restriction[name] = pfa_for(name, ("numeric", step.numeric_m))
                complete = False
        elif hint is not None:
            restriction[name] = pfa_for(name, ("straight", hint))
        else:
            restriction[name] = pfa_for(
                name, ("standard", step.loops, step.loop_length))
            complete = False
    metrics = current_metrics()
    if metrics.enabled and reuse is not None:
        metrics.add("strategy.pfas_reused", reused)
    return restriction, complete
