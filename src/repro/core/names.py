"""Fresh-name generation shared by the core pipeline.

All internal variables carry a leading marker so they can never collide
with user-chosen string/integer variable names, and so model printers can
filter them out.
"""


class NameFactory:
    """Monotone counter-based fresh-name source."""

    def __init__(self, marker="$"):
        self._marker = marker
        self._counter = 0

    def fresh(self, kind):
        self._counter += 1
        return "%s%s%d" % (self._marker, kind, self._counter)

    def char_namer(self, string_var):
        """A nullary namer for the character variables of one string var."""
        def namer():
            self._counter += 1
            return "%sv.%s.%d" % (self._marker, string_var, self._counter)
        return namer

    def is_internal(self, name):
        return name.startswith(self._marker)

    def state(self):
        """Opaque counter snapshot.

        Persisted flattener fragments embed the fresh names that were
        live when they were built; the persistent store keys fragment
        entries by this snapshot so a reuse only happens when the
        current factory would have allocated the very same names.
        """
        return self._counter

    def restore(self, state):
        """Fast-forward past names a reused fragment set embeds.

        Only ever advances: rewinding could re-allocate names already
        baked into live formulas.
        """
        self._counter = max(self._counter, int(state))
