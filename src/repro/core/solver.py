"""The top-level decision procedure (Section 4 + Section 9 strategy).

``TrauSolver.solve`` runs the two-phase loop of the paper:

1. **Over-approximation** — a sound LIA relaxation; UNSAT here is UNSAT of
   the input.
2. **Under-approximation** — pick a flat domain restriction (PFA per string
   variable), flatten the whole problem to a linear formula, and hand it to
   the SMT core.  A model decodes to strings (Lemma 5.1) and is re-checked
   by the concrete evaluator before being returned.  No model means the
   restriction was too small: the next refinement round retries with larger
   PFAs, and after the schedule is exhausted the solver answers UNKNOWN.
"""

import time

from repro.alphabet import DEFAULT_ALPHABET
from repro.config import DEFAULT_CONFIG, Deadline
from repro.core.flatten import Flattener
from repro.core.names import NameFactory
from repro.core.normalize import normalize
from repro.core.overapprox import overapproximate
from repro.core.preprocess import expand_duplicates
from repro.core.strategy import (
    analyze_lengths, build_restriction, loop_length_hint,
)
from repro.errors import SolverError
from repro.smt import solve_formula
from repro.strings.ast import StringProblem
from repro.strings.eval import check_model, failing_constraints
from repro.strings.ops import ProblemBuilder


class SolveResult:
    """Outcome of a string-constraint query."""

    __slots__ = ("status", "model", "stats")

    def __init__(self, status, model=None, stats=None):
        self.status = status        # "sat" | "unsat" | "unknown"
        self.model = model          # var name -> str (strings) / int
        self.stats = stats or {}

    def __repr__(self):
        return "SolveResult(%s)" % self.status


class TrauSolver:
    """PFA-based string constraint solver (the paper's Z3-Trau)."""

    def __init__(self, config=None, alphabet=DEFAULT_ALPHABET,
                 validate=True):
        self.config = config or DEFAULT_CONFIG
        self.alphabet = alphabet
        self.validate = validate

    def solve(self, problem, timeout=None):
        """Decide a :class:`StringProblem` (or a builder holding one)."""
        if isinstance(problem, ProblemBuilder):
            problem = problem.problem
        if not isinstance(problem, StringProblem):
            raise SolverError("expected a StringProblem")
        deadline = Deadline(timeout)
        names = NameFactory()
        stats = {"rounds": 0, "started": time.monotonic()}

        normalized = normalize(problem, self.alphabet)
        if normalized.infeasible:
            stats["phase"] = "normalization"
            return SolveResult("unsat", stats=stats)
        expanded = expand_duplicates(normalized.problem, names)

        if self.config.use_overapproximation:
            outcome = overapproximate(expanded, self.alphabet, deadline,
                                      self.config)
            if outcome.status == "unsat":
                stats["phase"] = "overapproximation"
                stats["reason"] = outcome.reason
                return SolveResult("unsat", stats=stats)
        if deadline.expired():
            return SolveResult("unknown", stats=stats)

        hints = {}
        if self.config.use_static_analysis:
            hints = analyze_lengths(expanded, self.alphabet, deadline,
                                    self.config)
        q0 = loop_length_hint(expanded, self.config.initial_loop_length)

        for round_index, step in enumerate(self.config.schedule(q0)):
            if deadline.expired():
                break
            stats["rounds"] = round_index + 1
            restriction, complete = build_restriction(
                expanded, step, names, self.alphabet, hints, round_index)
            flattener = Flattener(expanded, restriction, self.alphabet,
                                  names, self.config.parikh_counter_bound)
            formula = flattener.flatten()
            result = solve_formula(formula, deadline=deadline,
                                   config=self.config)
            if result.status == "unsat" and complete:
                # Every variable's restriction provably covers all of its
                # possible values (sound length bounds + straight PFAs),
                # so the under-approximation is exact and its
                # unsatisfiability transfers to the input.
                stats["phase"] = "complete-underapproximation"
                return SolveResult("unsat", stats=stats)
            if result.status == "sat":
                interp = self._decode(problem, normalized, restriction,
                                      result.model)
                if self.validate and not check_model(problem, interp,
                                                     self.alphabet):
                    raise SolverError(
                        "decoded model fails validation on %r"
                        % failing_constraints(problem, interp,
                                              self.alphabet))
                stats["phase"] = "underapproximation"
                return SolveResult("sat", model=interp, stats=stats)
            # UNSAT of the under-approximation is inconclusive; refine.
        return SolveResult("unknown", stats=stats)

    def _decode(self, problem, normalized, restriction, model):
        """Turn an LIA model into a string/integer interpretation.

        Variables eliminated by normalization come back from their pins;
        the rest decode from their PFAs (Lemma 5.1).
        """
        interp = {}
        for v in problem.string_vars():
            if v.name in restriction:
                codes = restriction[v.name].decode(model)
                interp[v.name] = self.alphabet.decode_word(codes)
            else:
                interp[v.name] = normalized.pins.get(v.name, "")
        for name in problem.int_vars():
            interp[name] = model.get(name, 0)
        return interp
