"""The top-level decision procedure (Section 4 + Section 9 strategy).

``TrauSolver.solve`` runs the two-phase loop of the paper:

1. **Over-approximation** — a sound LIA relaxation; UNSAT here is UNSAT of
   the input.
2. **Under-approximation** — pick a flat domain restriction (PFA per string
   variable), flatten the whole problem to a linear formula, and hand it to
   the SMT core.  A model decodes to strings (Lemma 5.1) and is re-checked
   by the concrete evaluator before being returned.  No model means the
   restriction was too small: the next refinement round retries with larger
   PFAs, and after the schedule is exhausted the solver answers UNKNOWN.

Observability: every phase and every refinement round runs inside a
``repro.obs`` span, and the flat metrics view is merged into
``SolveResult.stats`` alongside ``elapsed_s``/``rounds``/``phase``.  The
default context is the zero-overhead null tracer; pass ``tracer=`` (and
optionally ``metrics=``) to the constructor, or install a context with
``repro.obs.scope``, to collect data.

Resilience (DESIGN.md Section 7): the procedure is best-effort by
construction — it may answer UNKNOWN, never crash or lie.  ``solve``
therefore runs a **graceful-degradation ladder**: an internal failure
(a :class:`SolverError`, a cache inconsistency, a decoded model failing
concrete validation) does not escape but triggers a retry on the next
rung — incremental session → one-shot solve → caches disabled → minimal
pipeline (presolve/overapproximation/analysis off).  The rung taken is
recorded in ``stats["degraded_to"]`` and as a tracer event per failed
rung; a validation-failing model is quarantined, never returned.
Resource exhaustion is *not* degraded (retrying would burn more budget):
it returns UNKNOWN with ``stats["stopped_by"]`` naming the tripped
budget from :class:`~repro.errors.ResourceLimit.reason`.
"""

import time
from dataclasses import replace

from repro import cache as _cache
from repro import faults as _faults
from repro import kernels as _kernels
from repro import store as _store
from repro.alphabet import DEFAULT_ALPHABET
from repro.config import DEFAULT_CONFIG
from repro.core.flatten import Flattener
from repro.core.names import NameFactory
from repro.core.normalize import normalize
from repro.core.overapprox import overapproximate
from repro.core.preprocess import expand_duplicates
from repro.core.strategy import (
    analyze_lengths, build_restriction, loop_length_hint,
)
from repro.errors import ResourceLimit, SolverError
from repro.logic.formula import variables_of
from repro.obs import scope as obs_scope
from repro.smt import IncrementalSmtSession, solve_formula
from repro.strings.ast import StringProblem
from repro.strings.eval import check_model, failing_constraints
from repro.strings.ops import ProblemBuilder

DEGRADATION_LADDER = ("incremental", "oneshot", "no-cache", "minimal",
                      "give-up")
"""Rung names of the degradation ladder, in the order they are tried.
``give-up`` is the terminal rung: every configuration failed and the
answer is an UNKNOWN attributed to ``internal-error``."""


def _rung_name(config):
    """The ladder rung a configuration corresponds to."""
    if config.use_incremental:
        return "incremental"
    if config.use_caches:
        return "oneshot"
    if config.use_presolve:
        return "no-cache"
    return "minimal"


def _stored_fragments_ok(value, _meta):
    """Shape validator for persisted flattener output.  Deliberately
    structural only: the *semantic* certificate for a reused fragment set
    is downstream — its ``complete`` flag is discarded on reuse (so it
    can never transfer UNSAT) and any SAT model it produces still passes
    concrete validation before being returned."""
    from repro.core.pfa import PA
    try:
        restriction = value["restriction"]
        fragments = value["fragments"]
        int(value["names_after"])
    except Exception:
        return False
    if not isinstance(restriction, dict) or not isinstance(fragments, list):
        return False
    if not all(isinstance(name, str) and isinstance(pfa, PA)
               for name, pfa in restriction.items()):
        return False
    return all(isinstance(item, tuple) and len(item) == 2
               for item in fragments)


def _stored_lemmas_ok(value, _meta):
    """Shape validator for persisted warm-start lemmas; each lemma is
    additionally re-*proved* by ``seed_lemmas`` before it is believed."""
    if not isinstance(value, list):
        return False
    for lemma in value:
        if not isinstance(lemma, tuple) or not lemma:
            return False
        for item in lemma:
            if not (isinstance(item, tuple) and len(item) == 2
                    and isinstance(item[1], bool)
                    and hasattr(item[0], "expr")
                    and hasattr(item[0], "negate")):
                return False
    return True


def _corrupt_interp(interp):
    """Mutator for the ``solver.decode`` corrupt-mode fault point:
    perturb one decoded value so concrete validation rejects the model
    and the quarantine path runs."""
    for name in sorted(interp):
        value = interp[name]
        if isinstance(value, str):
            interp[name] = value + "~"
        else:
            interp[name] = value + 1
        break
    return interp


class SolveResult:
    """Outcome of a string-constraint query."""

    __slots__ = ("status", "model", "stats")

    def __init__(self, status, model=None, stats=None):
        self.status = status        # "sat" | "unsat" | "unknown"
        self.model = model          # var name -> str (strings) / int
        self.stats = stats or {}

    def __repr__(self):
        return "SolveResult(%s)" % self.status


class TrauSolver:
    """PFA-based string constraint solver (the paper's Z3-Trau)."""

    def __init__(self, config=None, alphabet=DEFAULT_ALPHABET,
                 validate=True, tracer=None, metrics=None):
        self.config = config or DEFAULT_CONFIG
        self.alphabet = alphabet
        self.validate = validate
        self.tracer = tracer        # None -> ambient repro.obs context
        self.metrics = metrics

    def solve(self, problem, timeout=None, budget=None):
        """Decide a :class:`StringProblem` (or a builder holding one).

        *budget* is an optional :class:`~repro.config.Budget`; when
        omitted one is built from the config's limits and *timeout*.
        The call never raises for an internal failure: the degradation
        ladder retries on progressively simpler pipelines and the worst
        case is an UNKNOWN with ``stats["stopped_by"]`` explaining why.
        """
        if isinstance(problem, ProblemBuilder):
            problem = problem.problem
        if not isinstance(problem, StringProblem):
            raise SolverError("expected a StringProblem")
        if budget is None:
            budget = self.config.budget(timeout)
        started = time.monotonic()
        with obs_scope(self.tracer, self.metrics) as (tracer, metrics):
            with _faults.injected(specs=self.config.fault_specs):
                with tracer.span("solve") as root:
                    store = _store.active_store(self.config)
                    result = None
                    verdict_key = None
                    if store is not None:
                        # One key per solve, computed before any phase
                        # can touch the problem object: the key recorded
                        # after solving must be the key the next worker
                        # generation looks up.
                        verdict_key = self._verdict_key(problem)
                        result = self._store_lookup(store, problem,
                                                    verdict_key, tracer,
                                                    metrics)
                    if result is None:
                        result = self._solve_ladder(problem, budget, tracer,
                                                    metrics, store=store)
                        if store is not None:
                            self._store_record(store, problem, verdict_key,
                                               result)
                    root.set(status=result.status)
            result.stats["elapsed_s"] = time.monotonic() - started
            if metrics.enabled:
                metrics.gauge("refinement.rounds",
                              result.stats.get("rounds", 0))
                result.stats.update(metrics.flat())
        return result

    def _verdict_key(self, problem):
        return (_cache.problem_fingerprint(problem),
                self.alphabet.signature())

    def _store_lookup(self, store, problem, verdict_key, tracer, metrics):
        """A persisted verdict for *problem*, or None.

        Validate-on-read is the whole contract: a SAT entry's model (its
        certificate) is re-checked by the concrete evaluator on every
        read, and an UNSAT entry is believed only with the
        budget-independence marker from the memo discipline — entries
        that fail either check are quarantined by the store and the
        solve proceeds fresh.
        """
        def validator(value, meta):
            if not isinstance(value, dict):
                return False
            status = value.get("status")
            if status == "sat":
                model = value.get("model")
                return isinstance(model, dict) and check_model(
                    problem, model, self.alphabet)
            if status == "unsat":
                return bool(meta.get("budget_independent"))
            return False

        hit = store.get("verdict", verdict_key, validator=validator)
        if hit is _store.MISSING:
            if metrics.enabled:
                metrics.add("store.verdict.misses")
            return None
        if metrics.enabled:
            metrics.add("store.verdict.hits")
        tracer.event("store.verdict_hit", status=hit["status"])
        return SolveResult(hit["status"], model=hit.get("model"),
                           stats={"rounds": 0, "phase": "store",
                                  "store": "hit"})

    def _store_record(self, store, problem, verdict_key, result):
        """Persist a verdict worth re-using: never from a degraded rung
        (the failing rung, not the answer, is suspect), never UNKNOWN.
        SAT entries carry their model as the certificate (re-validated
        here unless the solve already did); UNSAT entries only come from
        proof-carrying phases, all budget-independent — a deeper
        refinement schedule could not change them."""
        if result.stats.get("degraded_to") or result.stats.get("store"):
            return
        if result.status == "sat":
            model = result.model
            if not isinstance(model, dict):
                return
            if not self.validate and not check_model(problem, model,
                                                     self.alphabet):
                return
            store.put("verdict", verdict_key,
                      {"status": "sat", "model": dict(model)},
                      meta={"phase": result.stats.get("phase")})
        elif result.status == "unsat":
            phase = result.stats.get("phase")
            if phase in ("normalization", "overapproximation",
                         "complete-underapproximation"):
                store.put("verdict", verdict_key, {"status": "unsat"},
                          meta={"budget_independent": True, "phase": phase})

    def _ladder(self):
        """The (rung name, config) sequence to try, starting from the
        configured pipeline and shedding one subsystem per rung."""
        base = self.config
        candidates = [
            base,
            replace(base, use_incremental=False),
            replace(base, use_incremental=False, use_caches=False),
            # The terminal rung also pins the pure backend, so a
            # packed-kernel bug degrades away like any other subsystem.
            replace(base, use_incremental=False, use_caches=False,
                    use_presolve=False, use_overapproximation=False,
                    use_static_analysis=False, backend="pure"),
        ]
        rungs = []
        seen = set()
        for config in candidates:
            name = _rung_name(config)
            if name not in seen:
                seen.add(name)
                rungs.append((name, config))
        return rungs

    def _solve_ladder(self, problem, budget, tracer, metrics, store=None):
        """Try each ladder rung until one completes; never raises."""
        degradations = []
        last_error = None
        for attempt, (rung, config) in enumerate(self._ladder()):
            if attempt and budget.expired():
                # No budget left to retry on: the failure is reported as
                # an attributable UNKNOWN rather than a silent stall.
                break
            try:
                with _kernels.use_backend(config.backend) as backend:
                    if metrics.enabled:
                        metrics.add("solver.backend.%s" % backend)
                    if config.use_caches:
                        result = self._solve(problem, budget, tracer,
                                             metrics, config, store=store)
                    else:
                        with _cache.disabled():
                            result = self._solve(problem, budget, tracer,
                                                 metrics, config)
                result.stats["backend"] = backend
            except ResourceLimit as exc:
                # Budget exhaustion is not an internal failure; a retry
                # would only burn more of the budget that just tripped.
                stats = {"stopped_by": exc.reason, "backend": backend}
                if degradations:
                    stats["degraded_to"] = rung
                    stats["degradations"] = degradations
                return SolveResult("unknown", stats=stats)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                last_error = exc
                degradations.append("%s: %s: %s"
                                    % (rung, type(exc).__name__, exc))
                tracer.event("degradation", rung_failed=rung,
                             error=type(exc).__name__)
                if metrics.enabled:
                    metrics.add("resilience.degradations")
                continue
            if degradations:
                result.stats["degraded_to"] = rung
                result.stats["degradations"] = degradations
                tracer.event("degraded_result", rung=rung)
            return result
        stats = {"stopped_by": "internal-error",
                 "degraded_to": "give-up",
                 "degradations": degradations}
        if last_error is not None:
            stats["error"] = "%s: %s" % (type(last_error).__name__,
                                         last_error)
        tracer.event("degradation_exhausted")
        if metrics.enabled:
            metrics.add("resilience.gave_up")
        return SolveResult("unknown", stats=stats)

    def _solve(self, problem, deadline, tracer, metrics, config=None,
               store=None):
        config = config or self.config
        names = NameFactory()
        stats = {"rounds": 0}

        with tracer.span("normalize"):
            normalized = normalize(problem, self.alphabet)
        if normalized.infeasible:
            stats["phase"] = "normalization"
            return SolveResult("unsat", stats=stats)
        expanded = expand_duplicates(normalized.problem, names)

        if config.use_overapproximation:
            with tracer.span("overapprox") as span:
                outcome = overapproximate(expanded, self.alphabet, deadline,
                                          config)
                span.set(status=outcome.status)
            if outcome.status == "unsat":
                stats["phase"] = "overapproximation"
                stats["reason"] = outcome.reason
                return SolveResult("unsat", stats=stats)
        if deadline.checkpoint(tracer):
            stats["stopped_by"] = "deadline"
            return SolveResult("unknown", stats=stats)

        hints = {}
        if config.use_static_analysis:
            with tracer.span("analyze") as span:
                hints = analyze_lengths(expanded, self.alphabet, deadline,
                                        config)
                span.set(hints=len(hints))
        q0 = loop_length_hint(expanded, config.initial_loop_length)

        # Cross-round incremental state: one SMT session (SAT solver +
        # Tseitin cache) for all rounds, plus the carriers that keep
        # fragments identical between rounds — the PFA objects themselves
        # and their flattened formulas.
        incremental = config.use_incremental
        session = IncrementalSmtSession(config) if incremental else None
        pfa_reuse = {} if incremental else None
        frag_cache = {} if incremental else None
        store_fp = None
        if store is not None:
            store_fp = _cache.problem_fingerprint(expanded)
            if session is not None:
                self._seed_session(store, session, store_fp, tracer, metrics)

        try:
            for round_index, step in enumerate(config.schedule(q0)):
                if deadline.checkpoint(tracer):
                    stats["stopped_by"] = "deadline"
                    break
                stats["rounds"] = round_index + 1
                with tracer.span("round", round=round_index + 1,
                                 m=step.numeric_m, p=step.loops,
                                 q=step.loop_length) as round_span:
                    try:
                        result = self._round(problem, normalized, expanded,
                                             step, names, hints, round_index,
                                             deadline, tracer, metrics, stats,
                                             session, pfa_reuse, frag_cache,
                                             config, store, store_fp)
                    except ResourceLimit as exc:
                        # The satellite fix: name the budget that actually
                        # tripped instead of blaming the deadline for every
                        # exhaustion.
                        stats["stopped_by"] = exc.reason
                        round_span.set(status=exc.reason)
                        return SolveResult("unknown", stats=stats)
                    round_span.set(status="refine" if result is None
                                   else result.status)
                if result is not None:
                    return result
                # UNSAT of the under-approximation is inconclusive; refine.
        finally:
            # Whatever the outcome, theory lemmas learnt this session are
            # worth shipping to the next worker boot (they are re-proved
            # before reuse, so even an interrupted session's harvest is
            # safe to offer).
            if session is not None and store is not None:
                lemmas = session.harvest_lemmas()
                if lemmas:
                    store.put("session.lemmas",
                              (store_fp, self.alphabet.signature()), lemmas)
        if "stopped_by" not in stats and deadline.expired():
            stats["stopped_by"] = "deadline"
        stats.setdefault("stopped_by", "refinement-exhausted")
        return SolveResult("unknown", stats=stats)

    def _seed_session(self, store, session, store_fp, tracer, metrics):
        """Warm-start an incremental session from persisted lemmas."""
        key = (store_fp, self.alphabet.signature())
        lemmas = store.get("session.lemmas", key,
                           validator=_stored_lemmas_ok)
        if lemmas is _store.MISSING:
            return
        installed, rejected = session.seed_lemmas(lemmas)
        if rejected:
            # A lemma's infeasibility claim failed its re-proof: the
            # stored certificate is corrupt.  The proven remainder is
            # already installed; the entry as a whole is quarantined.
            store.quarantine("session.lemmas", key,
                             "lemma re-validation failed")
            if metrics.enabled:
                metrics.add("store.revalidation_failures")
        if installed:
            if metrics.enabled:
                metrics.add("store.lemmas_installed", installed)
            tracer.event("store.warm_start", lemmas=installed)

    def _round(self, problem, normalized, expanded, step, names, hints,
               round_index, deadline, tracer, metrics, stats,
               session=None, pfa_reuse=None, frag_cache=None, config=None,
               store=None, store_fp=None):
        """One refinement round; None means "too small, refine"."""
        config = config or self.config
        counter_bound = deadline.parikh_counter_bound \
            or config.parikh_counter_bound

        # Persisted flattener output (incremental mode only): keyed by the
        # round shape AND the fresh-name counter at round entry, so a hit
        # only happens when the stored fragments embed exactly the names
        # this factory would have allocated.  Reused fragments are never
        # allowed to transfer UNSAT (complete is forced False below): a
        # stale or subtly-wrong fragment set can cost a wasted round or a
        # model that fails validation, never a wrong verdict.
        frag_key = None
        frag_entry = None
        if store is not None and session is not None:
            frag_key = (store_fp, self.alphabet.signature(),
                        step.numeric_m, step.loops, step.loop_length,
                        names.state())
            frag_entry = store.get("flatten.fragments", frag_key,
                                   validator=_stored_fragments_ok)
            if frag_entry is _store.MISSING:
                frag_entry = None
        if frag_entry is not None:
            restriction = frag_entry["restriction"]
            fragments = frag_entry["fragments"]
            complete = False
            names.restore(frag_entry["names_after"])
            if metrics.enabled:
                metrics.add("store.fragment_hits")
            tracer.event("store.fragments_reused", count=len(fragments))
        else:
            with tracer.span("restrict"):
                restriction, complete = build_restriction(
                    expanded, step, names, self.alphabet, hints, round_index,
                    reuse=pfa_reuse)
            with tracer.span("flatten") as span:
                flattener = Flattener(expanded, restriction, self.alphabet,
                                      names, counter_bound,
                                      fragment_cache=frag_cache,
                                      deadline=deadline)
                if session is not None:
                    fragments = flattener.fragments()
                    formula = None
                else:
                    formula = flattener.flatten()
                    if metrics.enabled:
                        lia_vars = len(variables_of(formula))
                        span.set(lia_vars=lia_vars)
                        metrics.observe("flatten.lia_vars", lia_vars)
            if frag_key is not None:
                store.put("flatten.fragments", frag_key,
                          {"restriction": dict(restriction),
                           "fragments": list(fragments),
                           "names_after": names.state()})
        if session is not None:
            result = session.solve(fragments, deadline=deadline)
        else:
            result = solve_formula(formula, deadline=deadline,
                                   config=config,
                                   simplify=config.use_presolve)
        if result.status == "unknown" and "stopped_by" in result.stats:
            # Remember which budget cut the round short: a later
            # refinement-exhausted UNKNOWN is then attributable too.
            stats["budget_tripped"] = result.stats["stopped_by"]
        if result.status == "unsat" and complete:
            # Every variable's restriction provably covers all of its
            # possible values (sound length bounds + straight PFAs),
            # so the under-approximation is exact and its
            # unsatisfiability transfers to the input.
            stats["phase"] = "complete-underapproximation"
            return SolveResult("unsat", stats=stats)
        if result.status == "sat":
            with tracer.span("decode"):
                interp = self._decode(problem, normalized, restriction,
                                      result.model)
            if self.validate:
                with tracer.span("validate") as span:
                    ok = check_model(problem, interp, self.alphabet)
                    span.set(ok=ok)
                if not ok:
                    # Quarantine: the model is never returned.  Raising
                    # SolverError hands control to the degradation
                    # ladder, which retries on the next rung.
                    tracer.event("model_quarantined")
                    if metrics.enabled:
                        metrics.add("resilience.quarantined_models")
                    if frag_entry is not None:
                        # The bad model came out of reused persisted
                        # fragments: distrust the whole entry.
                        store.quarantine("flatten.fragments", frag_key,
                                         "model validation failed")
                    raise SolverError(
                        "decoded model fails validation on %r"
                        % failing_constraints(problem, interp,
                                              self.alphabet))
            stats["phase"] = "underapproximation"
            return SolveResult("sat", model=interp, stats=stats)
        return None

    def _decode(self, problem, normalized, restriction, model):
        """Turn an LIA model into a string/integer interpretation.

        Variables eliminated by normalization come back from their pins;
        the rest decode from their PFAs (Lemma 5.1).
        """
        if _faults.ARMED:
            _faults.point("solver.decode")
        interp = {}
        for v in problem.string_vars():
            if v.name in restriction:
                codes = restriction[v.name].decode(model)
                interp[v.name] = self.alphabet.decode_word(codes)
            else:
                interp[v.name] = normalized.pins.get(v.name, "")
        for name in problem.int_vars():
            interp[name] = model.get(name, 0)
        if _faults.ARMED:
            interp = _faults.corrupt("solver.decode", interp,
                                     _corrupt_interp)
        return interp
