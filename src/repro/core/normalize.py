"""String-level normalization: constant propagation before flattening.

Symbolic-execution constraints pin many variables to literals
(``x = "GET"``).  Substituting those through the problem shrinks every
downstream encoding and discharges constraints that become ground:

* a ground word equation folds to true (dropped) or false (UNSAT);
* a regular constraint on a pinned variable folds by acceptance;
* ``n = toNum("42")`` becomes the integer constraint ``n = 42``;
* a pinned character disequality folds by comparison;
* length occurrences of pinned variables fold to constants.

The pass is iterated: substitution can expose new pins (``x = y`` with
``y`` pinned).  Everything returned is equivalent over the remaining
variables, and the substitution map re-extends models of the reduced
problem to the original variables.
"""

from repro.logic.formula import FALSE, substitute as substitute_formula
from repro.strings.ast import (
    CharCode, CharNeq, IntConstraint, RegularConstraint, StringProblem,
    StrVar, ToNum, WordEquation, length_var,
)
from repro.strings.eval import to_num_value


class NormalizedProblem:
    """Reduced problem plus the variable pins needed to rebuild models."""

    __slots__ = ("problem", "pins", "infeasible")

    def __init__(self, problem, pins, infeasible):
        self.problem = problem
        self.pins = pins            # var name -> literal string
        self.infeasible = infeasible

    def extend_model(self, model):
        out = dict(model)
        for name, value in self.pins.items():
            out.setdefault(name, value)
        return out


def normalize(problem, alphabet, max_passes=20):
    """Run constant propagation to a fixpoint."""
    pins = {}
    current = list(problem)
    for _ in range(max_passes):
        new_pins = _collect_pins(current, pins)
        if not new_pins and _is_stable(current):
            break
        pins.update(new_pins)
        reduced, infeasible = _apply(current, pins, alphabet)
        if infeasible:
            return NormalizedProblem(StringProblem(), pins, True)
        if reduced == current and not new_pins:
            break
        current = reduced
    return NormalizedProblem(StringProblem(current), pins, False)


def _is_stable(constraints):
    """No ground equations left to fold."""
    for c in constraints:
        if isinstance(c, WordEquation) and not c.string_vars():
            return False
    return True


def _collect_pins(constraints, existing):
    pins = {}
    for c in constraints:
        if not isinstance(c, WordEquation):
            continue
        for single, other in ((c.lhs, c.rhs), (c.rhs, c.lhs)):
            if len(single) == 1 and isinstance(single[0], StrVar) \
                    and all(isinstance(e, str) for e in other):
                name = single[0].name
                if name not in existing and name not in pins:
                    pins[name] = "".join(other)
    return pins


def _substitute_term(term, pins):
    out = []
    for element in term:
        if isinstance(element, StrVar) and element.name in pins:
            value = pins[element.name]
            if value:
                out.append(value)
        else:
            out.append(element)
    # Merge adjacent literals.
    merged = []
    for element in out:
        if merged and isinstance(element, str) \
                and isinstance(merged[-1], str):
            merged[-1] += element
        else:
            merged.append(element)
    return tuple(merged)


def _apply(constraints, pins, alphabet):
    reduced = []
    length_pins = {length_var(name): len(value)
                   for name, value in pins.items()}
    for c in constraints:
        if isinstance(c, WordEquation):
            lhs = _substitute_term(c.lhs, pins)
            rhs = _substitute_term(c.rhs, pins)
            if not any(isinstance(e, StrVar) for e in lhs + rhs):
                if "".join(lhs) != "".join(rhs):
                    return [], True
                continue
            reduced.append(WordEquation(lhs, rhs))
        elif isinstance(c, RegularConstraint):
            if c.var.name in pins:
                value = pins[c.var.name]
                if not c.nfa.accepts(alphabet.encode_word(value)):
                    return [], True
                continue
            reduced.append(c)
        elif isinstance(c, ToNum):
            if c.var.name in pins:
                from repro.logic.formula import eq
                from repro.logic.terms import var as int_var
                text = pins[c.var.name]
                if c.semantics is None:
                    value = to_num_value(text)
                else:
                    value = c.semantics.convert(text)
                reduced.append(IntConstraint(eq(int_var(c.result), value)))
                continue
            reduced.append(c)
        elif isinstance(c, CharCode):
            if c.var.name in pins:
                from repro.logic.formula import eq
                from repro.logic.terms import var as int_var
                text = pins[c.var.name]
                if len(text) != 1:
                    return [], True
                reduced.append(
                    IntConstraint(eq(int_var(c.result), ord(text))))
                continue
            reduced.append(c)
        elif isinstance(c, CharNeq):
            left_pin = pins.get(c.left.name)
            right_pin = pins.get(c.right.name)
            if left_pin is not None and right_pin is not None:
                valid = (len(left_pin) <= 1 and len(right_pin) <= 1
                         and left_pin != right_pin)
                if not valid:
                    return [], True
                continue
            reduced.append(c)
        elif isinstance(c, IntConstraint):
            folded = substitute_formula(c.formula, length_pins)
            if folded is FALSE:
                return [], True
            from repro.logic.formula import TRUE
            if folded is TRUE:
                continue
            reduced.append(IntConstraint(folded))
        else:
            reduced.append(c)
    # A pinned variable surviving in some constraint (e.g. one side of a
    # CharNeq) still needs its defining equation.
    still_used = set()
    for c in reduced:
        still_used.update(v.name for v in c.string_vars())
    for name in sorted(still_used):
        if name in pins:
            reduced.append(WordEquation((StrVar(name),), (pins[name],)))
    return reduced, False
