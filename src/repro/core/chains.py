"""Chain detection and breaking (Section 4 / the chain-free fragment [5]).

A system of word equations is *chain-free* when each equation can be
oriented — one side designated as "defined by" the other — such that

1. the induced dependency graph (an edge from every variable of the
   defined side to every variable of the defining side) is acyclic, and
2. no variable sits on two defined sides (the single-definition
   discipline that generalizes the straight-line fragment).

The paper's ``"0"x = x"0"`` has a chain: both orientations produce the
self-edge ``x -> x``.  Likewise ``x = ay and y = xb`` is a chain: the only
orientations that avoid the ``x -> y -> x`` cycle define one variable
twice.

Breaking a chain replaces one occurrence of a variable on the cycle with a
fresh variable — *without* linking the fresh variable back, which is what
makes the result an over-approximation: every solution of the original
extends to the relaxed system (give the fresh variable the original's
value), but the relaxed system admits more.

Orientation search is exhaustive up to :data:`MAX_EXACT_EQUATIONS`
equations and greedy beyond (a greedy failure may report a spurious chain;
that only costs precision, never soundness, because breaking is itself an
over-approximation).
"""

from repro.strings.ast import StringProblem, StrVar, WordEquation

MAX_EXACT_EQUATIONS = 14


def _sides(problem):
    """Variable-name pairs (lhs_vars, rhs_vars) per equation."""
    out = []
    for constraint in problem:
        if not isinstance(constraint, WordEquation):
            continue
        lhs = {e.name for e in constraint.lhs if isinstance(e, StrVar)}
        rhs = {e.name for e in constraint.rhs if isinstance(e, StrVar)}
        out.append((lhs, rhs))
    return out


def _has_cycle(edges):
    """DFS cycle detection; returns a cycle's node list or None."""
    graph = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
    color = {}
    path = []

    def dfs(node):
        color[node] = "grey"
        path.append(node)
        for succ in sorted(graph.get(node, ())):
            if color.get(succ) == "grey":
                return path[path.index(succ):]
            if succ not in color:
                cycle = dfs(succ)
                if cycle is not None:
                    return cycle
        path.pop()
        color[node] = "black"
        return None

    for node in sorted(graph):
        if node not in color:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def _edges_for(sides, orientation):
    """Edges induced by an orientation bit vector (True = lhs defined)."""
    edges = []
    for (lhs, rhs), lhs_defined in zip(sides, orientation):
        defined, defining = (lhs, rhs) if lhs_defined else (rhs, lhs)
        for u in defined:
            for v in defining:
                edges.append((u, v))
    return edges


def _orientation_valid(sides, orientation):
    defined_seen = set()
    for (lhs, rhs), lhs_defined in zip(sides, orientation):
        defined = lhs if lhs_defined else rhs
        if defined & defined_seen:
            return False
        defined_seen |= defined
    return _has_cycle(_edges_for(sides, orientation)) is None


def find_orientation(problem):
    """A valid orientation (list of booleans per equation), or None."""
    sides = [s for s in _sides(problem) if s[0] or s[1]]
    if not sides:
        return []
    if len(sides) <= MAX_EXACT_EQUATIONS:
        for mask in range(1 << len(sides)):
            orientation = [bool(mask >> i & 1) for i in range(len(sides))]
            if _orientation_valid(sides, orientation):
                return orientation
        return None
    # Greedy: orient each equation to stay valid if possible.
    orientation = []
    for i in range(len(sides)):
        extended = False
        for lhs_defined in (True, False):
            trial = orientation + [lhs_defined]
            if _orientation_valid(sides[: i + 1], trial):
                orientation = trial
                extended = True
                break
        if not extended:
            return None
    return orientation


def is_chain_free(problem):
    return find_orientation(problem) is not None


def find_chain(problem):
    """Variable names on some chain, or None if chain-free.

    When no acyclic orientation exists, every orientation has a cycle;
    the one reported comes from the all-lhs-defined orientation.
    """
    if is_chain_free(problem):
        return None
    sides = [s for s in _sides(problem) if s[0] or s[1]]
    return _has_cycle(_edges_for(sides, [True] * len(sides)))


def break_chains(problem, names, max_rounds=1000):
    """Chain-free over-approximation of *problem* (paper Section 4)."""
    current = StringProblem(list(problem))
    for _ in range(max_rounds):
        cycle = find_chain(current)
        if cycle is None:
            return current
        current = _replace_one_occurrence(current, cycle[0], names)
    return current


def _replace_one_occurrence(problem, var_name, names):
    """Replace one occurrence of *var_name* (preferring an equation where
    it occurs on both sides, the tightest kind of chain) with a fresh
    variable."""
    out = StringProblem()
    replaced = False

    def rewrite_side(side, fresh):
        rewritten = []
        done = False
        for element in side:
            if not done and isinstance(element, StrVar) \
                    and element.name == var_name:
                rewritten.append(fresh)
                done = True
            else:
                rewritten.append(element)
        return tuple(rewritten), done

    for constraint in problem:
        if replaced or not isinstance(constraint, WordEquation):
            out.add(constraint)
            continue
        lhs_has = any(isinstance(e, StrVar) and e.name == var_name
                      for e in constraint.lhs)
        rhs_has = any(isinstance(e, StrVar) and e.name == var_name
                      for e in constraint.rhs)
        if not (lhs_has and rhs_has) and not (lhs_has or rhs_has):
            out.add(constraint)
            continue
        fresh = StrVar(names.fresh("chain." + var_name + "."))
        if lhs_has:
            new_lhs, replaced = rewrite_side(constraint.lhs, fresh)
            out.add(WordEquation(new_lhs, constraint.rhs))
        else:
            new_rhs, replaced = rewrite_side(constraint.rhs, fresh)
            out.add(WordEquation(constraint.lhs, new_rhs))
    return out
