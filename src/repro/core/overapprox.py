"""Over-approximation module (Section 4): prove UNSAT cheaply when possible.

The paper relaxes the input into the decidable chain-free fragment and runs
a complete procedure for it.  Our backend relaxes further, into linear
integer arithmetic, and decides that directly (DESIGN.md Section 5); the
relaxation per constraint is

* word equation          -> equality of side lengths,
* regular constraint     -> per-variable automata intersection (emptiness is
                            immediate UNSAT) plus the exact Parikh length
                            characterization of the intersection,
* integer constraint     -> taken verbatim,
* ``n = toNum(x)``       -> ``n >= -1`` and the two-sided digit-count/value
                            bracketing between ``n`` and ``|x|`` (strictly
                            tighter than the paper's relaxation, still sound),
* character disequality  -> the characters cannot both be empty.

Every step only forgets solutions of the original constraint, so an UNSAT
answer transfers to the original problem; a SAT answer is inconclusive and
hands control to the under-approximation.
"""

from repro import cache as _cache
from repro.alphabet import DEFAULT_ALPHABET
from repro.automata.nfa import NFA
from repro.automata.parikh import parikh_formula
from repro.config import Deadline
from repro.logic.formula import FALSE, TRUE, conj, disj, eq, ge, implies, le
from repro.logic.terms import const, var as int_var
from repro.obs import current_tracer
from repro.smt import solve_formula
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint, StrVar,
    ToNum, WordEquation, str_len,
)
from repro.errors import ResourceLimit, UnsupportedConstraint

# toNum(x) with n >= 10^18 is out of scope for the value/length bracketing;
# larger numbers simply lose the |x|-side constraints (still sound).
_MAX_TRACKED_DIGITS = 18


def length_abstraction(problem, alphabet=DEFAULT_ALPHABET, names=None,
                       include_regular=True):
    """A sound LIA relaxation of *problem* over lengths and integers."""
    parts = []
    counter = [0]

    def fresh_prefix(kind):
        counter[0] += 1
        return "$oa.%s%d" % (kind, counter[0])

    for name in {v.name for v in problem.string_vars()}:
        parts.append(ge(str_len(name), 0))

    regular_by_var = {}
    for constraint in problem:
        if isinstance(constraint, RegularConstraint):
            regular_by_var.setdefault(constraint.var.name, []).append(
                constraint.nfa)
        else:
            parts.append(_constraint_relaxation(constraint, alphabet,
                                                fresh_prefix))

    if include_regular:
        for name, nfas in regular_by_var.items():
            combined = nfas[0]
            for nfa in nfas[1:]:
                combined = combined.intersect(nfa)
            parts.append(_regular_length_formula(name, combined,
                                                 fresh_prefix("re")))
    return conj(*parts)


def _constraint_relaxation(constraint, alphabet, fresh_prefix):
    """Sound LIA relaxation of one constraint (truth implies it).

    Regular constraints get the cheap per-constraint length formula here;
    the top level of :func:`length_abstraction` intersects same-variable
    memberships first, which this per-constraint path (used inside
    disjunction branches) cannot do.
    """
    if isinstance(constraint, WordEquation):
        return eq(_term_length(constraint.lhs), _term_length(constraint.rhs))
    if isinstance(constraint, RegularConstraint):
        return _regular_length_formula(constraint.var.name, constraint.nfa,
                                       fresh_prefix("re"))
    if isinstance(constraint, IntConstraint):
        return constraint.formula
    if isinstance(constraint, ToNum):
        return tonum_relaxation(constraint)
    if isinstance(constraint, CharNeq):
        return ge(str_len(constraint.left) + str_len(constraint.right), 1)
    if isinstance(constraint, CharCode):
        ords = [ord(c) for c in alphabet.chars()]
        return conj(eq(str_len(constraint.var), 1),
                    ge(int_var(constraint.result), min(ords)),
                    le(int_var(constraint.result), max(ords)))
    if isinstance(constraint, Disjunction):
        return disj(*[
            conj(*[_constraint_relaxation(c, alphabet, fresh_prefix)
                   for c in branch])
            for branch in constraint.branches])
    raise UnsupportedConstraint(
        "cannot over-approximate %r" % (constraint,))


def _term_length(term):
    total = const(0)
    for element in term:
        if isinstance(element, StrVar):
            total = total + str_len(element)
        else:
            total = total + len(element)
    return total


def _regular_length_formula(name, nfa, prefix):
    """Constraint tying |x| to the length image of L(nfa).

    The abstraction only ever projects a membership onto the *total*
    length of the word, and that projection of the Parikh image is
    exactly the language's length image — an eventually periodic set
    computable from the unary projection of the automaton (one subset-
    construction lasso over the transition graph).  This replaces the
    per-symbol Parikh construction, whose count and flow variables blew
    up on alphabet-wide automata (complements, dot-heavy regexes) while
    contributing nothing beyond their sum.  The rare automaton whose
    lasso exceeds the exploration cap falls back to exact Parikh.
    """
    trimmed = nfa.without_epsilon().trim()
    if trimmed.num_states == 0 or not trimmed.finals:
        return FALSE
    image = _length_image(trimmed)
    if image is None:
        symbols = sorted(trimmed.alphabet())
        count_names = {sym: "%s.c%d" % (prefix, i)
                       for i, sym in enumerate(symbols)}
        phi = parikh_formula(trimmed, lambda sym: count_names[sym],
                             prefix + ".f")
        total = const(0)
        for sym in symbols:
            total = total + int_var(count_names[sym])
        shortest = trimmed.shortest_word()
        minimum = TRUE if shortest is None \
            else ge(str_len(name), len(shortest))
        return conj(phi, eq(str_len(name), total), minimum)
    finite, offsets, period = image
    parts = [eq(str_len(name), L) for L in finite]
    for i, offset in enumerate(offsets):
        if period == 1:
            parts.append(ge(str_len(name), offset))
        else:
            # |x| = offset + period * q for some q >= 0.
            q = int_var("%s.q%d" % (prefix, i))
            parts.append(conj(ge(q, 0),
                              eq(str_len(name), q * period + offset)))
    if not parts:
        return FALSE
    return disj(*parts)


# Distinct reachable subsets explored before giving up on the lasso and
# paying for the full Parikh construction instead.
_LASSO_LIMIT = 4096


def _length_image(nfa):
    """The length image of L(nfa) as ``(finite, offsets, period)``.

    ``finite`` lists accepted lengths below the lasso's preperiod;
    every ``offset`` contributes the arithmetic progression
    ``offset + period * k`` (k >= 0).  None when the subset lasso
    exceeds the exploration cap.
    """
    successors = [set() for _ in range(nfa.num_states)]
    for src, _, dst in nfa.transitions:
        successors[src].add(dst)
    finals = set(nfa.finals)
    seen = {}
    accept = []
    frontier = frozenset([nfa.initial])
    while frontier not in seen:
        if len(seen) >= _LASSO_LIMIT:
            return None
        seen[frontier] = len(accept)
        accept.append(bool(frontier & finals))
        nxt = set()
        for q in frontier:
            nxt |= successors[q]
        frontier = frozenset(nxt)
    preperiod = seen[frontier]
    period = len(accept) - preperiod
    finite = [i for i in range(preperiod) if accept[i]]
    offsets = [i for i in range(preperiod, preperiod + period) if accept[i]]
    return finite, offsets, period


def tonum_relaxation(constraint):
    """Sound bracketing between n = toNum(x) and |x|.

    Base semantics: ``n = -1`` (not a numeral) or ``n >= 0`` with: a
    numeral has at least one character (``|x| >= 1``); the value fits in
    its length (``|x| = L -> n <= 10^L - 1``); and conversely a large
    value needs a long string (``n >= 10^L -> |x| >= L + 1``).

    Real-parser semantics produce negative values, so none of the base
    bounds apply.  Bit-bounded overflow modes (error/saturate) still pin
    the result into the value range extended by the error value; bignum
    variants get the trivial relaxation.
    """
    sem = constraint.semantics
    if sem is not None:
        n = int_var(constraint.result)
        if sem.overflow in ("error", "saturate"):
            return conj(ge(n, min(sem.min_value, sem.error_value)),
                        le(n, max(sem.max_value, sem.error_value)))
        return TRUE
    n = int_var(constraint.result)
    length = str_len(constraint.var)
    # The bracketing implications hold unconditionally (for a non-numeral
    # n = -1 falsifies every antecedent about n and satisfies every bound
    # on n), so they live at the top level where interval propagation can
    # use them.
    parts = [ge(n, -1),
             disj(eq(n, -1), conj(ge(n, 0), ge(length, 1)))]
    for digits in range(_MAX_TRACKED_DIGITS + 1):
        power = 10 ** digits
        parts.append(implies(ge(n, power), ge(length, digits + 1)))
        parts.append(implies(eq(length, digits), le(n, power - 1)))
    return conj(*parts)


class OverapproxOutcome:
    """Result of the over-approximation phase."""

    __slots__ = ("status", "reason")

    def __init__(self, status, reason=None):
        self.status = status        # "unsat" | "inconclusive"
        self.reason = reason

    def __repr__(self):
        return "OverapproxOutcome(%s)" % self.status


def derived_affix_constraints(problem, alphabet):
    """Literal prefixes/suffixes entailed by word equations.

    An equation whose one side is a single variable and whose other side
    begins (ends) with a literal forces that variable to begin (end) with
    the literal.  Returned as automata ``p . Sigma*`` / ``Sigma* . s`` so
    they join the per-variable membership intersection — where clashing
    prefixes become emptiness, the paper's chain-free module's job.
    """
    sigma_star = NFA.from_symbols(sorted(alphabet.codes())).star()
    derived = []
    for constraint in problem.by_kind(WordEquation):
        for single, other in ((constraint.lhs, constraint.rhs),
                              (constraint.rhs, constraint.lhs)):
            if len(single) != 1 or not isinstance(single[0], StrVar) \
                    or not other:
                continue
            name = single[0].name
            if isinstance(other[0], str):
                prefix = NFA.from_word(alphabet.encode_word(other[0]))
                derived.append((name, prefix.concat(sigma_star)))
            if isinstance(other[-1], str):
                suffix = NFA.from_word(alphabet.encode_word(other[-1]))
                derived.append((name, sigma_star.concat(suffix)))
    return derived


def _stored_outcome_ok(value, _meta):
    """Validator for persisted phase outcomes: only the two legal states,
    as a real :class:`OverapproxOutcome`.  Entries reach the store only
    via the budget-independent put below, so everything read back is a
    proof ("unsat") or a run-to-completion "inconclusive"."""
    return (isinstance(value, OverapproxOutcome)
            and value.status in ("unsat", "inconclusive"))


_OUTCOME_CACHE = _cache.LRUCache("solver.overapprox", maxsize=256,
                                 persist=True, validator=_stored_outcome_ok)


def overapproximate(problem, alphabet=DEFAULT_ALPHABET, deadline=None,
                    config=None):
    """Run the over-approximation; "unsat" proves the input UNSAT.

    Outcomes are memoized by problem fingerprint — but only the
    budget-independent ones.  "unsat" is a proof and transfers to every
    re-solve of the same problem; "inconclusive" is cached only when the
    phase ran to completion (a trivial abstraction, or a feasible one),
    never when a deadline or iteration budget cut it short — a later call
    with a larger budget must get the chance to do better.
    """
    key = None
    if _cache.enabled():
        key = (_cache.problem_fingerprint(problem), alphabet.signature())
        hit = _OUTCOME_CACHE.get(key)
        if hit is not _cache.MISSING:
            return hit
    outcome, conclusive = _overapproximate(problem, alphabet, deadline,
                                           config)
    if key is not None and conclusive:
        _OUTCOME_CACHE.put(key, outcome)
    return outcome


def _overapproximate(problem, alphabet, deadline, config):
    """The uncached phase; returns ``(outcome, budget_independent)``."""
    deadline = deadline or Deadline.unbounded()
    tracer = current_tracer()

    # Immediate emptiness check on intersected regular constraints,
    # strengthened by literal prefixes/suffixes the equations entail.
    # A deadline expiring inside a product leaves the phase inconclusive.
    with tracer.span("emptiness") as span:
        regular_by_var = {}
        for constraint in problem.by_kind(RegularConstraint):
            regular_by_var.setdefault(constraint.var.name, []).append(
                constraint.nfa)
        for name, nfa in derived_affix_constraints(problem, alphabet):
            regular_by_var.setdefault(name, []).append(nfa)
        span.set(variables=len(regular_by_var))
        try:
            for name, nfas in regular_by_var.items():
                combined = nfas[0]
                for nfa in nfas[1:]:
                    combined = combined.intersect(nfa, deadline=deadline)
                if combined.is_empty():
                    return OverapproxOutcome(
                        "unsat",
                        "regular constraints on %s are inconsistent" % name
                    ), True
        except ResourceLimit:
            return OverapproxOutcome("inconclusive"), False

    with tracer.span("abstract"):
        formula = length_abstraction(problem, alphabet)
    if formula is TRUE:
        return OverapproxOutcome("inconclusive"), True
    result = solve_formula(formula, deadline=deadline, config=config)
    if result.status == "unsat":
        return OverapproxOutcome("unsat",
                                 "length abstraction is infeasible"), True
    # A found model proves the abstraction feasible for good; an "unknown"
    # (deadline, iteration budget) must stay uncached.
    return OverapproxOutcome("inconclusive"), result.status == "sat"
