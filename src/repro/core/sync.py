"""Synchronization of parametric automata — Section 7 of the paper.

The synchronization formula ``Psi_{P x P'}`` characterizes the pairs of
word encodings of the two automata that denote the *same* word.  It is
built from the asynchronous product (either automaton may idle while the
other reads an epsilon-valued variable), in three parts:

* the Parikh formula of the product (``Phi_P``), over pair-count variables;
* ``Psi_#`` — each side's per-variable count is the sum of the pair counts
  it participates in;
* ``Psi_=`` — a pair that occurs forces its two labels to share one value
  (idling is represented by the epsilon value).

Statically-known variable values (``PA.bindings``) prune the product:
pairs of distinct constants, and idle pairs whose non-idle label is a
non-epsilon constant, can never fire and are dropped before the Parikh
formula is built.
"""

from collections import deque

from repro.alphabet import EPSILON
from repro.automata.nfa import NFA
from repro.automata.parikh import parikh_formula
from repro.errors import ResourceLimit
from repro.core.pfa import count_var
from repro.logic.formula import FALSE, TRUE, conj, eq, ge, implies
from repro.logic.sets import member_of
from repro.logic.terms import const, var as int_var
from repro.obs import current_metrics

IDLE = None
"""Marker for the idling side of an asynchronous product transition."""





def _value_expr(pa, label):
    """Linear expression of a product-label component: the epsilon constant
    for an idle side, the bound constant, or the character variable."""
    if label is IDLE:
        return const(EPSILON)
    bound = pa.binding_of(label)
    if bound is not None:
        return const(bound)
    return int_var(label)


def _compatible(pa_left, pa_right, left, right):
    """Can this product transition ever fire under some interpretation?"""
    if left is IDLE and right in pa_right.never_epsilon:
        return False
    if right is IDLE and left in pa_left.never_epsilon:
        return False
    lv = EPSILON if left is IDLE else pa_left.binding_of(left)
    rv = EPSILON if right is IDLE else pa_right.binding_of(right)
    left_class = None if left is IDLE else pa_left.class_of(left)
    right_class = None if right is IDLE else pa_right.class_of(right)
    if lv is not None and right_class is not None:
        return lv in right_class
    if rv is not None and left_class is not None:
        return rv in left_class
    if left_class is not None and right_class is not None:
        return bool(set(left_class) & set(right_class))
    if lv is None or rv is None:
        return True
    return lv == rv


def asynchronous_product(pa_left, pa_right, deadline=None):
    """The trimmed asynchronous product NFA over pair symbols.

    Symbols are ``(left_label, right_label)`` where a component is a
    character variable or :data:`IDLE`.  The product can be quadratic in
    the automata sizes, so *deadline* is checked per explored pair and
    :class:`~repro.errors.ResourceLimit` raised when the budget is gone.
    """
    from repro import kernels as _kernels
    if _kernels.active() == _kernels.PACKED:
        from repro.kernels.automata import async_product_packed
        num_states, transitions, finals = async_product_packed(
            pa_left, pa_right,
            lambda lv, rv: _compatible(pa_left, pa_right, lv, rv),
            IDLE, deadline)
        product = NFA(num_states, transitions, 0, finals)
        return product.trim()
    left, right = pa_left.nfa, pa_right.nfa
    start = (left.initial, pa_right.initial)
    goal = (pa_left.final, pa_right.final)
    index = {start: 0}
    transitions = []
    worklist = deque([start])

    def state_of(pair):
        if pair not in index:
            index[pair] = len(index)
            worklist.append(pair)
        return index[pair]

    state_limit = None if deadline is None else deadline.automata_state_limit
    steps = 0
    while worklist:
        steps += 1
        if deadline is not None:
            # The state guard is exact (an inline compare per state, the
            # method call only on the way out); the wall-clock check is
            # amortized over 64 expansions.
            if state_limit is not None and len(index) > state_limit:
                deadline.charge_states(len(index), op="asynchronous product")
            if not steps & 63 and deadline.expired():
                raise ResourceLimit(
                    "asynchronous product hit the deadline",
                    reason="deadline")
        p, q = worklist.popleft()
        src = index[(p, q)]
        for lv, pt in left.out_edges(p):
            for rv, qt in right.out_edges(q):
                if _compatible(pa_left, pa_right, lv, rv):
                    transitions.append((src, (lv, rv), state_of((pt, qt))))
            if _compatible(pa_left, pa_right, lv, IDLE):
                transitions.append((src, (lv, IDLE), state_of((pt, q))))
        for rv, qt in right.out_edges(q):
            if _compatible(pa_left, pa_right, IDLE, rv):
                transitions.append((src, (IDLE, rv), state_of((p, qt))))

    finals = [index[goal]] if goal in index else []
    product = NFA(len(index), transitions, 0, finals)
    return product.trim()


def synchronization_formula(pa_left, pa_right, prefix, counter_bound=None,
                            deadline=None):
    """``Psi_{P x P'}`` (Lemma 7.1) over pair-count and character variables.

    *prefix* namespaces the pair-count and flow variables.  The
    interpretation constraints (psi) of PAs with ``track_counts`` are *not*
    conjoined here — the flattening adds them once globally; throwaway PAs
    (``track_counts=False``) contribute theirs locally.
    """
    product = asynchronous_product(pa_left, pa_right, deadline)
    metrics = current_metrics()
    if metrics.enabled:
        metrics.observe("sync.product_states", product.num_states)
        metrics.observe("sync.product_pairs", len(product.transitions))
    if product.num_states == 0 or not product.finals:
        return FALSE

    symbols = sorted(product.alphabet(), key=_pair_key)
    pair_name = {sym: "%s.p%d" % (prefix, i) for i, sym in enumerate(symbols)}

    phi = parikh_formula(product, lambda sym: pair_name[sym],
                         prefix + ".f", counter_bound)

    parts = [phi]

    # Psi_#: per-side occurrence counts are sums of pair counts.  Variables
    # of a tracked side with no surviving product transition cannot occur.
    for pa, side in ((pa_left, 0), (pa_right, 1)):
        if not pa.track_counts:
            continue
        sums = {v: const(0) for v in pa.char_vars}
        for sym in symbols:
            label = sym[side]
            if label is not IDLE:
                sums[label] = sums[label] + int_var(pair_name[sym])
        for v, total in sums.items():
            parts.append(eq(int_var(count_var(v)), total))

    # Psi_=: an occurring pair forces its two labels to denote one symbol.
    # A class label (a collapsed transition of a concrete automaton) admits
    # a different member per firing, so it constrains the other side by
    # set membership rather than value equality.
    for sym in symbols:
        left_class = None if sym[0] is IDLE else pa_left.class_of(sym[0])
        right_class = None if sym[1] is IDLE else pa_right.class_of(sym[1])
        if left_class is not None and right_class is not None:
            shared = set(left_class) & set(right_class)
            constraint = TRUE if shared else FALSE
        elif right_class is not None:
            constraint = member_of(
                _value_expr(pa_left, sym[0]), right_class)
        elif left_class is not None:
            constraint = member_of(
                _value_expr(pa_right, sym[1]), left_class)
        else:
            constraint = eq(_value_expr(pa_left, sym[0]),
                            _value_expr(pa_right, sym[1]))
        if constraint is TRUE:
            continue
        parts.append(implies(ge(int_var(pair_name[sym]), 1), constraint))

    for pa in (pa_left, pa_right):
        if not pa.track_counts and pa.psi is not TRUE:
            parts.append(pa.psi)

    return conj(*parts)


def _pair_key(sym):
    return tuple("" if part is IDLE else str(part) for part in sym)
