"""The paper's decision procedure: PFAs, flattening, and the solver loop."""

from repro.core.pfa import PA, PFA, numeric_pfa, standard_pfa, straight_pfa, literal_pfa
from repro.core.solver import TrauSolver, SolveResult

__all__ = ["PA", "PFA", "numeric_pfa", "standard_pfa", "straight_pfa",
           "literal_pfa", "TrauSolver", "SolveResult"]
