"""Parametric (flat) automata — Section 5 of the paper.

A *parametric automaton* (PA) is an automaton whose transitions are labeled
with integer *character variables* plus an interpretation constraint psi
over those variables.  A *parametric flat automaton* (PFA) additionally has
the flat shape: a straight stem of states, each optionally carrying one
simple cycle, and every character variable on exactly one transition.

Flatness makes the Parikh image a bijective encoding of the language
(Lemma 5.1): a word is reconstructed from the per-variable occurrence
counts plus the variable values (:meth:`PFA.decode`).  The occurrence-count
variable of character variable ``v`` is named ``#v`` throughout
(:func:`count_var`).

The *numeric PFA* (Figure 3) is the special shape used for variables under
``toNum``: a ``0``-self-loop (leading zeros) followed by a plain chain, so
the induced value constraint stays linear.
"""

from repro.alphabet import EPSILON
from repro.logic.formula import TRUE, conj, disj, eq, ge, implies, le, ne
from repro.logic.terms import var as int_var
from repro.automata.nfa import NFA
from repro.errors import SolverError


def count_var(char_var):
    """Name of the Parikh (occurrence-count) variable of a character var."""
    return "#" + char_var


class PA:
    """A parametric automaton: NFA over character variables + constraint.

    ``bindings`` records character variables whose value is a known
    constant (used for the PA encoding of a concrete automaton); the
    synchronization construction exploits them to prune product transitions
    statically.  ``track_counts`` says whether the variable occurrence
    counts of this PA are meaningful to the rest of the constraint (true
    for domain-restriction PFAs, false for throwaway encodings of concrete
    automata).
    """

    def __init__(self, nfa, char_vars, psi=TRUE, bindings=None,
                 track_counts=True, never_epsilon=None, classes=None):
        if len(nfa.finals) != 1:
            raise SolverError("parametric automata need a single final state")
        self.nfa = nfa
        self.char_vars = list(char_vars)
        self.psi = psi
        self.bindings = dict(bindings or {})
        self.track_counts = track_counts
        # Class labels: a "variable" that really denotes a SET of symbols
        # (one collapsed transition of a concrete automaton).  Each firing
        # of a product pair against a class label may pick a different
        # member, so the synchronization emits a set-membership constraint
        # on the other side instead of a value equality.
        self.classes = {v: tuple(sorted(codes))
                        for v, codes in (classes or {}).items()}
        # Character variables whose interpretation can never be epsilon
        # (e.g. class variables of a concrete automaton); the product
        # construction prunes idle pairs against them.
        self.never_epsilon = set(never_epsilon or ())
        for v, value in self.bindings.items():
            if value != EPSILON:
                self.never_epsilon.add(v)

    @property
    def initial(self):
        return self.nfa.initial

    @property
    def final(self):
        return next(iter(self.nfa.finals))

    def binding_of(self, char):
        """Constant value of *char* if statically known, else None."""
        return self.bindings.get(char)

    def class_of(self, char):
        """Symbol set of a class label, or None for a real variable."""
        return self.classes.get(char)

    def __repr__(self):
        return "PA(vars=%d, %r)" % (len(self.char_vars), self.nfa)


class PFA(PA):
    """A flat PA described by its stem and per-stem-state loops.

    ``stem`` is the list of character variables on the straight path
    (length m); ``loops[i]`` is the list of character variables around stem
    state ``i`` (length m+1, possibly empty lists).  The NFA is derived:
    stem states come first (0..m), then loop states in order.
    """

    def __init__(self, stem, loops, psi=TRUE, bindings=None, numeric=None):
        if len(loops) != len(stem) + 1:
            raise SolverError("need exactly one loop slot per stem state")
        self.stem = list(stem)
        self.loops = [list(l) for l in loops]
        self.numeric = numeric      # (zero_var, chain_vars) for numeric PFAs
        nfa, char_vars = self._build_nfa()
        seen = set()
        for v in char_vars:
            if v in seen:
                raise SolverError("character variable %r reused" % v)
            seen.add(v)
        super().__init__(nfa, char_vars, psi, bindings)

    def _build_nfa(self):
        m = len(self.stem)
        transitions = []
        char_vars = []
        next_state = m + 1
        for i, loop in enumerate(self.loops):
            if not loop:
                continue
            char_vars.extend(loop)
            if len(loop) == 1:
                transitions.append((i, loop[0], i))
            else:
                prev = i
                for v in loop[:-1]:
                    transitions.append((prev, v, next_state))
                    prev = next_state
                    next_state += 1
                transitions.append((prev, loop[-1], i))
        for i, v in enumerate(self.stem):
            transitions.append((i, v, i + 1))
            char_vars.append(v)
        nfa = NFA(next_state, transitions, 0, [m])
        return nfa, char_vars

    @property
    def is_straight(self):
        """True when the PFA is a pure chain (no loops at all)."""
        return not any(self.loops)

    # -- the flat-automaton Parikh image (closed form) -----------------------

    def parikh_formula(self, counter_bound=None):
        """Linear formula tying ``#v`` counts to the flat structure.

        Stem variables occur exactly once; all variables of one loop share
        a common count >= 0 (optionally capped by *counter_bound* so the
        integer search stays bounded).
        """
        parts = []
        for v in self.stem:
            parts.append(eq(int_var(count_var(v)), 1))
        for loop in self.loops:
            if not loop:
                continue
            head = int_var(count_var(loop[0]))
            parts.append(ge(head, 0))
            if counter_bound is not None:
                parts.append(le(head, counter_bound))
            for v in loop[1:]:
                parts.append(eq(int_var(count_var(v)), head))
        return conj(*parts)

    # -- Lemma 5.1: decoding ---------------------------------------------------

    def decode(self, assignment):
        """Reconstruct the word (list of codes) from an integer model.

        *assignment* maps character variables to values and ``#v`` names to
        occurrence counts.  Epsilon-valued characters vanish.
        """
        codes = []

        def emit(value):
            if value != EPSILON:
                codes.append(value)

        for i, loop in enumerate(self.loops + [[]]):
            if loop:
                repeats = assignment[count_var(loop[0])]
                for _ in range(repeats):
                    for v in loop:
                        emit(assignment[v])
            if i < len(self.stem):
                emit(assignment[self.stem[i]])
        return codes

    def concat(self, other, eps_var):
        """``P · P'`` (Section 7): join final to initial through a fresh
        variable forced to epsilon."""
        stem = self.stem + [eps_var] + other.stem
        loops = self.loops + other.loops
        psi = conj(self.psi, other.psi,
                   eq(int_var(eps_var), EPSILON))
        bindings = dict(self.bindings)
        bindings.update(other.bindings)
        bindings[eps_var] = EPSILON
        return PFA(stem, loops, psi, bindings)

    def __repr__(self):
        return "PFA(stem=%d, loops=%s%s)" % (
            len(self.stem), [len(l) for l in self.loops],
            ", numeric" if self.numeric else "")


# -- canonical PFA shapes -------------------------------------------------------


def straight_pfa(namer, length):
    """Straight-line PFA of *length* transitions: all words of length <= m.

    Shorter words use epsilon-valued variables; the shift constraint (the
    Psi_shift discipline of Section 8, applied here to every straight PFA)
    forces all epsilons behind the non-epsilon prefix.  This costs no
    language coverage and makes the k-th character of the word equal the
    k-th stem variable — the property the positional flattening of word
    equations relies on.
    """
    stem = [namer() for _ in range(length)]
    shift = conj(*[implies(ne(int_var(stem[i]), EPSILON),
                           ne(int_var(stem[i - 1]), EPSILON))
                   for i in range(1, length)])
    return PFA(stem, [[] for _ in range(length + 1)], shift)


def standard_pfa(namer, num_loops, loop_length):
    """The paper's general pattern (Figure 1): *num_loops* stem states each
    carrying a simple cycle of *loop_length* character variables."""
    num_loops = max(num_loops, 1)
    stem = [namer() for _ in range(num_loops - 1)]
    loops = [[namer() for _ in range(loop_length)] for _ in range(num_loops)]
    return PFA(stem, loops)


def literal_pfa(namer, codes):
    """PFA accepting exactly one concrete word (for word-term literals)."""
    stem = [namer() for _ in codes]
    psi = conj(*[eq(int_var(v), code) for v, code in zip(stem, codes)])
    bindings = {v: code for v, code in zip(stem, codes)}
    return PFA(stem, [[] for _ in range(len(stem) + 1)], psi, bindings)


def conversion_pfa(namer, m, ws_code=None, sign_codes=None):
    """The conversion PFA for real-parser numeric semantics.

    Shape: an optional whitespace self-loop on the initial state, a sign
    slot, a ``0`` self-loop (unbounded leading zeros), then a chain of
    ``m`` unconstrained character variables — decoding to
    ``ws^a sign 0^b chain``.  The sign slot is always present so the shape
    is uniform; it is bound to epsilon when *sign_codes* is None.

    Unlike :func:`numeric_pfa` there is no NaN disjunct: the per-semantics
    transducer flattening interprets every word the language covers
    (including malformed ones, which it maps to the error value), and the
    chain's characters are unconstrained, so all words of length <= m are
    covered.  The ``parse`` attribute names the role of each variable for
    the flattener.
    """
    ws_var = namer() if ws_code is not None else None
    sign_var = namer()
    zero_var = namer()
    chain = [namer() for _ in range(m)]
    stem = [sign_var] + chain
    loops = [[] for _ in range(len(stem) + 1)]
    if ws_var is not None:
        loops[0] = [ws_var]
    loops[1] = [zero_var]

    parts = []
    bindings = {zero_var: 0}
    parts.append(eq(int_var(zero_var), 0))
    if ws_var is not None:
        bindings[ws_var] = ws_code
        parts.append(eq(int_var(ws_var), ws_code))
    if sign_codes:
        parts.append(disj(eq(int_var(sign_var), EPSILON),
                          *[eq(int_var(sign_var), code)
                            for code in sign_codes]))
    else:
        bindings[sign_var] = EPSILON
        parts.append(eq(int_var(sign_var), EPSILON))
    parts.append(conj(*[implies(ne(int_var(chain[i]), EPSILON),
                                ne(int_var(chain[i - 1]), EPSILON))
                        for i in range(1, m)]))
    pfa = PFA(stem, loops, conj(*parts), bindings)
    pfa.parse = {"ws": ws_var, "sign": sign_var, "zero": zero_var,
                 "chain": list(chain)}
    return pfa


def numeric_pfa(namer, m):
    """The numeric PFA (A^m, psi^m) of Section 8.

    A ``0``-self-loop on the initial state followed by a chain of ``m``
    character variables.  psi^m = Psi_NaN or (v0 = 0 and Psi_shift):
    either some chain variable is a non-digit (the string is not a
    numeral), or the loop contributes leading zeros and all epsilon-valued
    chain variables are shifted behind the last significant digit.
    """
    zero_var = namer()
    chain = [namer() for _ in range(m)]
    loops = [[zero_var]] + [[] for _ in range(m)]

    nan = disj(*[ge(int_var(v), 10) for v in chain])
    shift = conj(*[implies(ne(int_var(chain[i]), EPSILON),
                           ne(int_var(chain[i - 1]), EPSILON))
                   for i in range(1, m)])
    psi = disj(nan, conj(eq(int_var(zero_var), 0), shift))
    return PFA(chain, loops, psi, numeric=(zero_var, chain))
