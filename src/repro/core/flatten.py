"""Flattening string constraints to linear arithmetic (Sections 6-8).

Given a *flat domain restriction* ``R`` (a PFA per string variable), every
atomic constraint becomes a linear formula over the character variables
``v`` and occurrence counts ``#v`` of the PFAs, such that models of the
conjunction decode (Theorem 6.2) to exactly the solutions of the original
constraint whose strings lie inside their PFA languages.

Per constraint kind:

* word equations — concatenate the PFAs of each side (Section 7.2) and emit
  the synchronization formula of the two sides;
* regular constraints — synchronize ``R(x)`` against the parametric-automaton
  rendering of the concrete automaton (Section 7.1);
* integer constraints — add length definitions ``|x| = sum lv`` where each
  ``lv`` is 0 for epsilon-valued characters and ``#v`` otherwise
  (Section 7.3);
* ``n = toNum(x)`` — the numeric-PFA value formula of Section 8, extended
  with the empty-string and all-zeros edge cases the paper's formulas elide;
* character disequalities (internal) — a single linear disequality between
  the two one-transition PFAs' character variables.
"""

from repro import faults as _faults
from repro.alphabet import EPSILON
from repro.automata.nfa import EPS
from repro.core.pfa import PA, count_var, literal_pfa
from repro.core.sync import synchronization_formula
from repro.errors import SolverError, UnsupportedConstraint
from repro.logic.formula import (
    FALSE, TRUE, conj, disj, eq, ge, implies, le, ne,
)
from repro.logic.sets import member_of, not_member_of
from repro.logic.terms import const, var as int_var
from repro.obs import current_metrics
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint, StrVar,
    ToNum, WordEquation, length_var,
)
from repro.strings.numsem import EXP_MARKERS, NumSemantics

BASE_SEMANTICS = NumSemantics("base")
"""The paper's toNum expressed as a NumSemantics: bare decimal digit
strings, no sign/whitespace/exponent, exact integers, -1 on error.  Used
to route base conversions through the transducer flattening when the
variable's PFA is a conversion PFA (shared with real-parser variants)."""


def length_aux_var(char):
    """Name of the per-character length contribution variable ``lv``."""
    return "l." + char


_CODE_ORD_SEGMENTS = {}


def _code_ord_segments(alphabet):
    """Contiguous alphabet-code ranges with a constant code->ord offset.

    Returns ``[(lo, hi, offset), ...]`` covering every code, such that the
    Unicode code point of the character with code ``u`` in ``lo..hi`` is
    ``u + offset``.  The default alphabet decomposes into three segments
    (digits, then two printable-ASCII runs), keeping the CharCode
    flattening linear.
    """
    key = alphabet.signature()
    segments = _CODE_ORD_SEGMENTS.get(key)
    if segments is None:
        segments = []
        start = prev_offset = None
        for code in alphabet.codes():
            offset = ord(alphabet.char(code)) - code
            if prev_offset is None or offset != prev_offset:
                if start is not None:
                    segments.append((start, code - 1, prev_offset))
                start, prev_offset = code, offset
        segments.append((start, alphabet.max_code, prev_offset))
        _CODE_ORD_SEGMENTS[key] = segments
    return segments





class Flattener:
    """Builds ``flatten_R(problem)`` for a fixed domain restriction."""

    def __init__(self, problem, restriction, alphabet, names,
                 counter_bound=None, fragment_cache=None, deadline=None):
        self.problem = problem
        self.restriction = restriction      # var name -> PFA
        self.alphabet = alphabet
        self.names = names
        self.counter_bound = counter_bound
        # Resource budget threaded into the automata products (the
        # asynchronous product can blow up quadratically).
        self.deadline = deadline
        # Cross-round memo: fragment key -> (deps, formula), where *deps*
        # are the PFA objects the fragment was flattened from.  PFAs are
        # compared by identity — the strategy hands the same object back
        # when a variable's (m, p, q) step did not change — so a hit means
        # the formula (and its variable names) is reusable verbatim.
        self.fragment_cache = fragment_cache

    def pfa_of(self, string_var):
        try:
            return self.restriction[string_var.name]
        except KeyError:
            raise SolverError("no domain restriction for %r" % string_var)

    # -- global structure -------------------------------------------------------

    def flatten(self):
        """The full flattening as one formula (conjunction of fragments)."""
        return conj(*[formula for _, formula in self.fragments()])

    def fragments(self):
        """The flattening as keyed fragments for incremental solving.

        Returns an ordered list of ``(key, formula)`` pairs — one fragment
        per restricted variable (its PFA structure) and one per constraint.
        Their conjunction equals :meth:`flatten`.  With a
        ``fragment_cache``, a fragment whose source PFAs are the identical
        objects as last round is returned verbatim, fresh-name counters
        untouched, so the incremental SMT session recognizes it by
        identity.
        """
        metrics = current_metrics()
        if metrics.enabled:
            metrics.add("flatten.calls")
            metrics.observe(
                "flatten.pfa_vars",
                sum(len(p.char_vars) for p in self.restriction.values()))
        cache = self.fragment_cache
        reused = 0
        frags = []
        for name, pfa in self.restriction.items():
            key = ("var", name)
            if _faults.ARMED:
                _faults.point("flatten.fragment")
            if cache is not None:
                hit = cache.get(key)
                if hit is not None and hit[0] is pfa:
                    frags.append((key, hit[1]))
                    reused += 1
                    continue
            formula = self._var_fragment(name, pfa)
            if cache is not None:
                cache[key] = (pfa, formula)
            frags.append((key, formula))
        count = 0
        for i, constraint in enumerate(self.problem):
            count += 1
            key = ("constraint", i)
            if _faults.ARMED:
                _faults.point("flatten.fragment")
            deps = self._constraint_deps(constraint)
            if cache is not None:
                hit = cache.get(key)
                if hit is not None and len(hit[0]) == len(deps) \
                        and all(a is b for a, b in zip(hit[0], deps)):
                    frags.append((key, hit[1]))
                    reused += 1
                    continue
            formula = self.flatten_constraint(constraint)
            if cache is not None:
                cache[key] = (deps, formula)
            frags.append((key, formula))
        if metrics.enabled:
            metrics.add("flatten.constraints", count)
            if cache is not None:
                metrics.add("flatten.fragments_reused", reused)
        return frags

    def _constraint_deps(self, constraint):
        """The PFA objects a constraint's flattening depends on."""
        names = []
        self._dep_names(constraint, names)
        return tuple(self.restriction[n] for n in names
                     if n in self.restriction)

    def _dep_names(self, constraint, names):
        if isinstance(constraint, WordEquation):
            for term in (constraint.lhs, constraint.rhs):
                for element in term:
                    if isinstance(element, StrVar):
                        names.append(element.name)
        elif isinstance(constraint, (RegularConstraint, ToNum, CharCode)):
            names.append(constraint.var.name)
        elif isinstance(constraint, CharNeq):
            names.append(constraint.left.name)
            names.append(constraint.right.name)
        elif isinstance(constraint, Disjunction):
            for branch in constraint.branches:
                for c in branch:
                    self._dep_names(c, names)

    def _var_fragment(self, name, pfa):
        """Per-PFA structure shared by all constraints: interpretation
        constraints, flat Parikh image, character domains, and the length
        definition of the variable."""
        parts = []
        max_code = self.alphabet.max_code
        if pfa.psi is not TRUE:
            parts.append(pfa.psi)
        parts.append(pfa.parikh_formula(self.counter_bound))
        for v in pfa.char_vars:
            bound = pfa.binding_of(v)
            if bound is not None:
                parts.append(eq(int_var(v), bound))
            else:
                parts.append(ge(int_var(v), EPSILON))
                parts.append(le(int_var(v), max_code))
        parts.append(self._length_definition(name, pfa))
        return conj(*parts)

    def _length_definition(self, name, pfa):
        """Psi_lx of Section 7.3: |x| = sum of per-character contributions.

        Straight (shifted) PFAs get the cheaper positional form instead:
        |x| = j exactly when the non-epsilon prefix ends at position j.
        """
        length = int_var(length_var(name))
        if pfa.is_straight:
            chain = [int_var(v) for v in pfa.stem]
            m = len(chain)
            cases = []
            for j in range(m + 1):
                case = [eq(length, j)]
                if j > 0:
                    case.append(ge(chain[j - 1], 0))
                if j < m:
                    case.append(eq(chain[j], EPSILON))
                cases.append(conj(*case))
            return disj(*cases)
        parts = []
        total = const(0)
        for v in pfa.char_vars:
            lv = int_var(length_aux_var(v))
            total = total + lv
            bound = pfa.binding_of(v)
            if bound == EPSILON:
                parts.append(eq(lv, 0))
            elif bound is not None:
                parts.append(eq(lv, int_var(count_var(v))))
            else:
                parts.append(disj(
                    conj(eq(int_var(v), EPSILON), eq(lv, 0)),
                    conj(ge(int_var(v), 0), eq(lv, int_var(count_var(v))))))
        parts.append(eq(length, total))
        return conj(*parts)

    # -- dispatch ------------------------------------------------------------------

    def flatten_constraint(self, constraint):
        if isinstance(constraint, WordEquation):
            return self._flatten_equation(constraint)
        if isinstance(constraint, RegularConstraint):
            return self._flatten_regular(constraint)
        if isinstance(constraint, IntConstraint):
            return constraint.formula
        if isinstance(constraint, ToNum):
            return self._flatten_tonum(constraint)
        if isinstance(constraint, CharCode):
            return self._flatten_charcode(constraint)
        if isinstance(constraint, Disjunction):
            return disj(*[conj(*[self.flatten_constraint(c) for c in branch])
                          for branch in constraint.branches])
        if isinstance(constraint, CharNeq):
            return self._flatten_charneq(constraint)
        raise UnsupportedConstraint("cannot flatten %r" % (constraint,))

    # -- word equations (Section 7.2) --------------------------------------------------

    def _side_pfa(self, term):
        """Concatenation of the PFAs of one side of an equation."""
        if not term:
            return literal_pfa(self.names.char_namer("lit"), [])
        pfas = []
        for element in term:
            if isinstance(element, StrVar):
                pfas.append(self.pfa_of(element))
            else:
                codes = self.alphabet.encode_word(element)
                pfas.append(literal_pfa(self.names.char_namer("lit"), codes))
        combined = pfas[0]
        for nxt in pfas[1:]:
            combined = combined.concat(nxt, self.names.fresh("eps."))
        return combined

    def _flatten_equation(self, constraint):
        if self._positional_applicable(constraint.lhs) \
                and self._positional_applicable(constraint.rhs):
            return self._flatten_equation_positional(constraint)
        left = self._side_pfa(constraint.lhs)
        right = self._side_pfa(constraint.rhs)
        prefix = self.names.fresh("eq.")
        formula = synchronization_formula(left, right, prefix,
                                          self.counter_bound,
                                          deadline=self.deadline)
        # Concatenation introduced fresh epsilon and literal variables whose
        # interpretation constraints are local to this equation.
        extras = [left.psi, right.psi]
        extras.extend(self._local_structure(left, constraint.lhs))
        extras.extend(self._local_structure(right, constraint.rhs))
        return conj(formula, *extras)

    def _local_structure(self, side_pfa, term):
        """Parikh structure for side-local variables (literal and epsilon
        glue characters) that no global PFA covers."""
        covered = set()
        for element in term:
            if isinstance(element, StrVar):
                covered.update(self.pfa_of(element).char_vars)
        parts = []
        for v in side_pfa.stem:
            if v not in covered:
                parts.append(eq(int_var(count_var(v)), 1))
        for loop in side_pfa.loops:
            for v in loop:
                if v not in covered:
                    head = int_var(count_var(loop[0]))
                    parts.append(ge(head, 0))
                    if v != loop[0]:
                        parts.append(eq(int_var(count_var(v)), head))
        return parts

    # -- positional equations over straight PFAs ------------------------------------------

    def _positional_applicable(self, term):
        """True when every variable piece of *term* has a straight PFA."""
        for element in term:
            if isinstance(element, StrVar) \
                    and not self.pfa_of(element).is_straight:
                return False
        return True

    def _pieces(self, term):
        """(content, length_expr, max_length) per piece of a word term.

        *content(p)* is the linear expression of the piece's character at
        1-based local position ``p`` — exactly the p-th stem variable,
        thanks to the shift discipline of straight PFAs.
        """
        pieces = []
        for element in term:
            if isinstance(element, StrVar):
                stem = self.pfa_of(element).stem
                pieces.append((
                    [int_var(v) for v in stem],
                    int_var(length_var(element.name)),
                    len(stem)))
            else:
                codes = self.alphabet.encode_word(element)
                pieces.append((
                    [const(code) for code in codes],
                    const(len(codes)),
                    len(codes)))
        return pieces

    def _flatten_equation_positional(self, constraint):
        """Word equality by positional alignment (no automata product).

        With every piece in shifted straight form, the concatenated word's
        character at global position g comes from the unique piece whose
        window covers g; the two sides agree iff their lengths agree and
        every pair of overlapping windows agrees pointwise.  The window
        conditions are linear, so when the strategy pinned exact lengths
        the presolver folds each implication to a direct character
        equality.
        """
        left = self._pieces(constraint.lhs)
        right = self._pieces(constraint.rhs)
        parts = []

        def total_length(pieces):
            total = const(0)
            for _, length, _ in pieces:
                total = total + length
            return total

        parts.append(eq(total_length(left), total_length(right)))

        left_offset = const(0)
        for content_l, length_l, max_l in left:
            right_offset = const(0)
            for content_r, length_r, max_r in right:
                for p in range(1, max_l + 1):
                    for q in range(1, max_r + 1):
                        aligned = conj(
                            eq(left_offset + p, right_offset + q),
                            le(const(p), length_l),
                            le(const(q), length_r))
                        if aligned is FALSE:
                            continue
                        parts.append(implies(
                            aligned,
                            eq(content_l[p - 1], content_r[q - 1])))
                right_offset = right_offset + length_r
            left_offset = left_offset + length_l
        return conj(*parts)

    # -- regular constraints (Section 7.1) ----------------------------------------------

    def _flatten_regular(self, constraint):
        target = self.pfa_of(constraint.var)
        if target.is_straight:
            dfa = constraint.dfa()
            if dfa is not None:
                return self._membership_unrolled(target, dfa)
        throwaway = self._pa_of_nfa(constraint.compact_nfa())
        prefix = self.names.fresh("re.")
        return synchronization_formula(target, throwaway, prefix,
                                       self.counter_bound,
                                       deadline=self.deadline)

    def _membership_unrolled(self, pfa, dfa):
        """Membership of a straight (shifted) PFA by DFA unrolling.

        One state variable per word position; each step is a disjunction
        over the current state's outgoing character classes (with an
        explicit dead state -1 for rejected prefixes).  No flow variables,
        no alignment ambiguity: boolean propagation walks the chain.
        """
        if dfa.num_states == 0 or not dfa.finals:
            return FALSE
        groups = {}
        for src, sym, dst in dfa.transitions:
            groups.setdefault(src, {}).setdefault(dst, []).append(sym)

        dead = -1
        max_state = dfa.num_states - 1
        prefix = self.names.fresh("dfa.")

        def state_var(j):
            return int_var("%s.st%d" % (prefix, j))

        parts = [eq(state_var(0), dfa.initial)]
        for j in range(len(pfa.stem)):
            u = int_var(pfa.stem[j])
            prev, here = state_var(j), state_var(j + 1)
            parts.append(ge(here, dead))
            parts.append(le(here, max_state))
            options = [conj(eq(u, EPSILON), eq(here, prev)),
                       conj(eq(prev, dead), ge(u, 0), eq(here, dead))]
            for q in range(dfa.num_states):
                out = groups.get(q, {})
                covered = []
                for dst, codes in sorted(out.items()):
                    covered.extend(codes)
                    options.append(conj(
                        eq(prev, q),
                        member_of(u, sorted(codes)),
                        eq(here, dst)))
                # No outgoing class matches: the run dies.
                options.append(conj(
                    eq(prev, q), ge(u, 0),
                    not_member_of(u, sorted(covered),
                                  self.alphabet.max_code),
                    eq(here, dead)))
            parts.append(disj(*options))
        final_state = state_var(len(pfa.stem))
        parts.append(disj(*[eq(final_state, f) for f in dfa.finals]))
        return conj(*parts)

    def _pa_of_nfa(self, nfa):
        """Render a concrete automaton as a throwaway PA.

        Parallel transitions between the same state pair collapse into one
        *class variable* constrained to the set of their symbols (as a
        disjunction of contiguous ranges), so a ``[0-9]`` edge costs one
        product transition instead of ten.  Single-symbol classes become
        bindings, which the product construction prunes statically.
        """
        single = nfa.single_final()
        namer = self.names.char_namer("re")
        groups = {}
        for src, sym, dst in single.transitions:
            groups.setdefault((src, dst), set()).add(sym)

        transitions = []
        char_vars = []
        bindings = {}
        never_epsilon = set()
        classes = {}
        for (src, dst), symbols in sorted(groups.items()):
            v = namer()
            char_vars.append(v)
            transitions.append((src, v, dst))
            if EPS in symbols:
                symbols = {s for s in symbols if s is not EPS}
                symbols.add(EPSILON)
            else:
                never_epsilon.add(v)
            if len(symbols) == 1:
                bindings[v] = next(iter(symbols))
            else:
                classes[v] = symbols

        from repro.automata.nfa import NFA
        renamed = NFA(single.num_states, transitions, single.initial,
                      single.finals)
        return PA(renamed, char_vars, TRUE, bindings,
                  track_counts=False, never_epsilon=never_epsilon,
                  classes=classes)

    # -- string-number conversion (Section 8) ----------------------------------------------

    def _flatten_tonum(self, constraint):
        pfa = self.pfa_of(constraint.var)
        if constraint.semantics is None \
                and getattr(pfa, "parse", None) is None:
            return self._flatten_tonum_base(constraint, pfa)
        return self._flatten_tonum_sem(
            constraint, pfa, constraint.semantics or BASE_SEMANTICS)

    def _flatten_tonum_base(self, constraint, pfa):
        chain, zero_count = self._numeric_shape(pfa)
        n = int_var(constraint.result)
        m = len(chain)

        if m == 0:
            # Only "0"* (or only the empty string) is representable.
            return disj(conj(eq(zero_count, 0), eq(n, -1)),
                        conj(ge(zero_count, 1), eq(n, 0)))

        chain_vars = [int_var(v) for v in chain]
        nan = disj(*[ge(v, 10) for v in chain_vars])
        not_nan = conj(*[le(v, 9) for v in chain_vars])
        all_eps = conj(*[eq(v, EPSILON) for v in chain_vars])

        # Psi_toInt: the last non-epsilon chain variable is v_k and the
        # digits v_1..v_k spell n most-significant first.  `value` and
        # `digit_conds` grow incrementally with k — rebuilding them from
        # scratch per case would make construction cubic in m.
        to_int_cases = []
        value = const(0)
        digit_conds = []
        for k in range(1, m + 1):
            value = value * 10 + chain_vars[k - 1]
            digit_conds.append(ge(chain_vars[k - 1], 0))
            last = TRUE if k == m else eq(chain_vars[k], EPSILON)
            to_int_cases.append(conj(last, eq(n, value), *digit_conds))

        return disj(
            conj(nan, eq(n, -1)),
            conj(not_nan, all_eps, eq(zero_count, 0), eq(n, -1)),
            conj(not_nan, all_eps, ge(zero_count, 1), eq(n, 0)),
            conj(not_nan, disj(*to_int_cases)))

    def _numeric_shape(self, pfa):
        """Chain variables and leading-zero count expression of a PFA used
        under toNum: a numeric PFA or a plain straight line."""
        if pfa.numeric is not None:
            zero_var, chain = pfa.numeric
            return chain, int_var(count_var(zero_var))
        if any(pfa.loops[i] for i in range(len(pfa.loops))):
            raise UnsupportedConstraint(
                "toNum variable %r needs a numeric or straight-line PFA"
                % (pfa,))
        return pfa.stem, const(0)

    # -- real-parser conversion semantics (NumSemantics transducer) -----------------------
    #
    # The flatten rule for ``n = toNum[sem](x)`` is a deterministic parser
    # transducer — states below, plus an accumulator (and an exponent
    # accumulator when enabled) — unrolled over the PFA chain exactly like
    # the BMC-style membership unrolling above.  Leading whitespace, sign
    # and leading zeros supplied by a conversion PFA's prefix variables are
    # folded into the initial state via their Parikh counts; on a straight
    # PFA the same transducer reads them in-chain, so a sound length hint
    # keeps the restriction complete.  Every (state, character) pair is
    # covered by exactly one disjunct (the char classes per state are
    # disjoint and a not-member catch-all leads to the dead state), which
    # is what makes the encoding a function of the word — the soundness
    # requirement for the error branch.

    _T_START = 0
    _T_SPOS = 1
    _T_SNEG = 2
    _T_DPOS = 3
    _T_DNEG = 4
    _T_EMARK = 5
    _T_EPOS = 6
    _T_DEAD = 7

    def _flatten_tonum_sem(self, constraint, pfa, sem):
        alphabet = self.alphabet
        n = int_var(constraint.result)

        parse = getattr(pfa, "parse", None)
        if parse is not None:
            ws_var = parse["ws"]
            sign_var = parse["sign"]
            zero_var = parse["zero"]
            chain = parse["chain"]
        elif pfa.numeric is not None:
            zero_var, chain = pfa.numeric
            ws_var = sign_var = None
        elif pfa.is_straight:
            ws_var = sign_var = zero_var = None
            chain = pfa.stem
        else:
            raise UnsupportedConstraint(
                "toNum variable %r needs a conversion, numeric or "
                "straight-line PFA" % (constraint.var,))
        if sign_var is not None and pfa.binding_of(sign_var) == EPSILON:
            sign_var = None

        use_exp = sem.exponent
        radix = sem.radix
        segments = sem.digit_segments(alphabet)
        space = alphabet.code(" ")
        plus = alphabet.code("+")
        minus = alphabet.code("-")
        markers = sorted(alphabet.code(c) for c in EXP_MARKERS)
        decimal = list(range(10))

        prefix = self.names.fresh("cv.")

        def st(j):
            return int_var("%s.st%d" % (prefix, j))

        def acc(j):
            return int_var("%s.acc%d" % (prefix, j))

        def ex(j):
            return int_var("%s.ex%d" % (prefix, j))

        def init(state):
            base = [eq(st(0), state), eq(acc(0), 0)]
            if use_exp:
                base.append(eq(ex(0), 0))
            return base

        parts = []

        # Initial state from the conversion-PFA prefix (whitespace count A,
        # sign character S, leading-zero count Z).  The cases partition the
        # prefix space, so the initial state is a function of the prefix.
        ws_count = int_var(count_var(ws_var)) if ws_var is not None else None
        sign_val = int_var(sign_var) if sign_var is not None else None
        zero_count = (int_var(count_var(zero_var))
                      if zero_var is not None else None)

        a_zero = TRUE
        options = []
        if ws_count is not None and not sem.whitespace:
            # A leading space is garbage under this semantics.
            options.append(conj(ge(ws_count, 1), *init(self._T_DEAD)))
            a_zero = eq(ws_count, 0)
        z_zero = eq(zero_count, 0) if zero_count is not None else TRUE
        z_pos = ge(zero_count, 1) if zero_count is not None else None
        if sign_val is None:
            options.append(conj(a_zero, z_zero, *init(self._T_START)))
            if z_pos is not None:
                options.append(conj(a_zero, z_pos, *init(self._T_DPOS)))
        else:
            s_eps = eq(sign_val, EPSILON)
            options.append(conj(a_zero, s_eps, z_zero, *init(self._T_START)))
            if z_pos is not None:
                options.append(conj(a_zero, s_eps, z_pos,
                                    *init(self._T_DPOS)))
            if sem.sign:
                for code, state, digits in (
                        (plus, self._T_SPOS, self._T_DPOS),
                        (minus, self._T_SNEG, self._T_DNEG)):
                    options.append(conj(a_zero, eq(sign_val, code), z_zero,
                                        *init(state)))
                    if z_pos is not None:
                        options.append(conj(a_zero, eq(sign_val, code),
                                            z_pos, *init(digits)))
            else:
                options.append(conj(a_zero, ne(sign_val, EPSILON),
                                    *init(self._T_DEAD)))
        parts.append(disj(*options))

        active = {self._T_START, self._T_DPOS, self._T_DEAD}
        if sem.sign or sign_val is not None:
            active |= {self._T_SPOS, self._T_SNEG, self._T_DNEG}
        if use_exp:
            active |= {self._T_EMARK, self._T_EPOS}

        for j, char in enumerate(chain):
            u = int_var(char)
            prev, here = st(j), st(j + 1)
            parts.append(ge(here, 0))
            parts.append(le(here, self._T_DEAD))

            options = []
            eps_opt = [eq(u, EPSILON), eq(here, prev), eq(acc(j + 1), acc(j))]
            if use_exp:
                eps_opt.append(eq(ex(j + 1), ex(j)))
            options.append(conj(*eps_opt))

            covered = {state: [] for state in active}

            def add(state, codes, target, acc_value=None, ex_value=None):
                if state not in active:
                    return
                covered[state].extend(codes)
                step = [eq(prev, state), member_of(u, sorted(codes)),
                        eq(here, target),
                        eq(acc(j + 1),
                           acc(j) if acc_value is None else acc_value)]
                if use_exp:
                    step.append(eq(ex(j + 1),
                                   ex(j) if ex_value is None else ex_value))
                options.append(conj(*step))

            if sem.whitespace:
                add(self._T_START, [space], self._T_START)
            if sem.sign:
                add(self._T_START, [plus], self._T_SPOS)
                add(self._T_START, [minus], self._T_SNEG)
            for lo, hi, offset in segments:
                codes = range(lo, hi + 1)
                digit = u + offset
                add(self._T_START, codes, self._T_DPOS, acc_value=digit)
                add(self._T_SPOS, codes, self._T_DPOS, acc_value=digit)
                add(self._T_SNEG, codes, self._T_DNEG,
                    acc_value=const(0) - digit)
                add(self._T_DPOS, codes, self._T_DPOS,
                    acc_value=acc(j) * radix + digit)
                add(self._T_DNEG, codes, self._T_DNEG,
                    acc_value=acc(j) * radix - digit)
            if use_exp:
                add(self._T_DPOS, markers, self._T_EMARK)
                add(self._T_DNEG, markers, self._T_EMARK)
                add(self._T_EMARK, decimal, self._T_EPOS, ex_value=u)
                add(self._T_EPOS, decimal, self._T_EPOS,
                    ex_value=ex(j) * 10 + u)

            for state in sorted(active):
                if state == self._T_DEAD:
                    continue
                dead = [eq(prev, state), ge(u, 0),
                        not_member_of(u, sorted(covered[state]),
                                      alphabet.max_code),
                        eq(here, self._T_DEAD), eq(acc(j + 1), acc(j))]
                if use_exp:
                    dead.append(eq(ex(j + 1), ex(j)))
                options.append(conj(*dead))
            absorb = [eq(prev, self._T_DEAD), ge(u, 0),
                      eq(here, self._T_DEAD), eq(acc(j + 1), acc(j))]
            if use_exp:
                absorb.append(eq(ex(j + 1), ex(j)))
            options.append(conj(*absorb))

            parts.append(disj(*options))

        # Final value.
        final = st(len(chain))
        acc_final = acc(len(chain))
        error_states = sorted(
            active - {self._T_DPOS, self._T_DNEG, self._T_EPOS})
        accept_states = sorted(
            active & {self._T_DPOS, self._T_DNEG, self._T_EPOS})
        accept = disj(*[eq(final, state) for state in accept_states])
        finals = [conj(disj(*[eq(final, state) for state in error_states]),
                       eq(n, sem.error_value))]
        if not use_exp:
            finals.append(conj(accept,
                               self._overflow_clause(n, acc_final, sem)))
        else:
            ex_final = ex(len(chain))
            for k in range(sem.exp_max + 1):
                finals.append(conj(
                    accept, eq(ex_final, k),
                    self._overflow_clause(n, acc_final * (10 ** k), sem)))
            big = ge(ex_final, sem.exp_max + 1)
            finals.append(conj(accept, big, eq(acc_final, 0), eq(n, 0)))
            if sem.overflow == "saturate":
                finals.append(conj(accept, big, ge(acc_final, 1),
                                   eq(n, sem.max_value)))
                finals.append(conj(accept, big, le(acc_final, -1),
                                   eq(n, sem.min_value)))
            else:
                finals.append(conj(accept, big, ne(acc_final, 0),
                                   eq(n, sem.error_value)))
        parts.append(disj(*finals))
        return conj(*parts)

    def _overflow_clause(self, n, value, sem):
        """``n`` is *value* adjusted by the semantics' overflow mode."""
        if sem.overflow == "bignum":
            return eq(n, value)
        top, bottom = sem.max_value, sem.min_value
        if sem.overflow == "saturate":
            over, under = eq(n, top), eq(n, bottom)
        else:
            over = under = eq(n, sem.error_value)
        return disj(
            conj(ge(value, bottom), le(value, top), eq(n, value)),
            conj(ge(value, top + 1), over),
            conj(le(value, bottom - 1), under))

    # -- character code (str.to_code / str.from_code) -------------------------------------

    def _flatten_charcode(self, constraint):
        """``result`` is the Unicode code point of the single character in
        the variable's one-transition PFA.  The alphabet's code->ord map
        decomposes into a few contiguous linear segments, so the mapping
        stays linear."""
        char = self._single_char(constraint.var)
        u = int_var(char)
        result = int_var(constraint.result)
        options = []
        for lo, hi, offset in _code_ord_segments(self.alphabet):
            options.append(conj(ge(u, lo), le(u, hi),
                                eq(result, u + offset)))
        return conj(ge(u, 0), disj(*options))

    # -- character disequality ------------------------------------------------------------

    def _flatten_charneq(self, constraint):
        left = self._single_char(constraint.left)
        right = self._single_char(constraint.right)
        return ne(int_var(left), int_var(right))

    def _single_char(self, variable):
        pfa = self.pfa_of(variable)
        if len(pfa.stem) != 1 or any(pfa.loops[i] for i in range(2)):
            raise UnsupportedConstraint(
                "CharNeq variable %r needs a one-transition PFA" % variable)
        return pfa.stem[0]
