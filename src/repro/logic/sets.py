"""Finite integer sets as interval constraints.

Character classes are sets of numeric codes; encoding ``expr in S`` as a
disjunction over S's maximal runs keeps class constraints tiny (``[0-9]``
is one interval, not ten equalities).
"""

from repro.logic.formula import conj, disj, eq, ge, le


def interval_runs(codes):
    """Maximal runs of consecutive values in sorted *codes*."""
    runs = []
    start = prev = codes[0]
    for code in codes[1:]:
        if code == prev + 1:
            prev = code
            continue
        runs.append((start, prev))
        start = prev = code
    runs.append((start, prev))
    return runs


def member_of(expr, codes):
    """``expr`` takes one of the sorted *codes*."""
    options = []
    for lo, hi in interval_runs(codes):
        if lo == hi:
            options.append(eq(expr, lo))
        else:
            options.append(conj(ge(expr, lo), le(expr, hi)))
    return disj(*options)


def not_member_of(expr, codes, max_value, min_value=0):
    """``expr`` in [min_value, max_value] but outside sorted *codes*."""
    if not codes:
        return conj(ge(expr, min_value), le(expr, max_value))
    parts = []
    low = min_value
    for lo, hi in interval_runs(codes):
        if lo > low:
            parts.append(conj(ge(expr, low), le(expr, lo - 1)))
        low = max(low, hi + 1)
    if low <= max_value:
        parts.append(conj(ge(expr, low), le(expr, max_value)))
    return disj(*parts)
