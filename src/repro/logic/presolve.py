"""Formula presolve: variable elimination and interval propagation.

Flattened string constraints are dominated by top-level equality
definitions (``#v = 1``, Parikh sum definitions, bound character values)
and simple bounds.  This pass

1. turns top-level equalities into substitutions (eliminating variables),
2. collects single-variable bounds into intervals and folds every atom
   that is decided by interval arithmetic,

iterating to a fixpoint.  It returns the reduced formula together with the
elimination steps so callers can reconstruct a full model
(:func:`reconstruct_model`).
"""

from math import inf

from repro.logic.formula import (
    And, Atom, BoolConst, FALSE, Not, Or, TRUE, conj, disj, neg,
)
from repro.logic.terms import LinExpr


def presolve(formula, max_passes=50, allowed=None, ambient=None):
    """Simplify *formula*; returns ``(reduced, steps)``.

    ``steps`` is a list of ``(var, LinExpr)`` eliminations in the order
    they were applied.  When *allowed* is given, only variables in it are
    eligible for elimination — the incremental solver presolves each
    flattened fragment separately and must keep variables shared with
    other fragments intact.  *ambient* supplies extra variable bounds that
    hold in the surrounding conjunction (other fragments' top-level
    bounds); they sharpen interval folding but are never themselves part
    of the formula.
    """
    steps = []
    for _ in range(max_passes):
        if isinstance(formula, BoolConst):
            break
        substitutions = _collect_substitutions(formula, allowed)
        if substitutions:
            formula = _apply(formula, substitutions)
            steps.extend(substitutions.items())
            continue
        intervals = _collect_intervals(formula)
        if ambient:
            for v, (lo, hi) in ambient.items():
                own_lo, own_hi = intervals.get(v, (-inf, inf))
                intervals[v] = (max(lo, own_lo), min(hi, own_hi))
        folded, changed = _fold_by_intervals(formula, intervals)
        if not changed:
            break
        formula = folded
    return formula, steps


def collect_bounds(formula):
    """Public view of the interval harvest: var -> (lo, hi) implied by the
    top-level single-variable atoms of *formula*."""
    return _collect_intervals(formula)


def reconstruct_model(model, steps):
    """Extend *model* with the variables eliminated during presolve."""
    model = dict(model)
    for var, expr in reversed(steps):
        value = expr.constant
        for v, c in expr.coeffs.items():
            value += c * model.get(v, 0)
        model[var] = value
    return model


# -- substitution harvesting ---------------------------------------------------


def _top_conjuncts(formula):
    if isinstance(formula, And):
        return list(formula.args)
    return [formula]


def _key(expr):
    return (tuple(sorted(expr.coeffs.items())), expr.constant)


def _collect_substitutions(formula, allowed=None):
    """Greedy batch of variable definitions from top-level equalities.

    An equality is a pair of top-level atoms ``e <= 0`` and ``-e <= 0``.
    A variable with a unit coefficient in ``e`` becomes a definition
    (restricted to *allowed* when given).  Definitions are resolved
    against each other so the returned map is closed (no definition
    references an eliminated variable), which keeps one-pass substitution
    correct.
    """
    conjuncts = _top_conjuncts(formula)
    atom_keys = set()
    atoms = []
    for f in conjuncts:
        if isinstance(f, Atom):
            atoms.append(f)
            atom_keys.add(_key(f.expr))

    pending = {}
    # Variables appearing on the right-hand side of some definition; they
    # must never become defined themselves, so the map stays closed (no
    # definition mentions an eliminated variable) without a closure pass.
    blocked = set()

    def resolve(expr):
        if not any(v in pending for v in expr.coeffs):
            return expr
        result = LinExpr.of_const(expr.constant)
        for v, c in expr.coeffs.items():
            target = pending.get(v)
            if target is None:
                result = result + LinExpr({v: c})
            else:
                result = result + target * c
        return result

    for atom in atoms:
        if len(atom.expr.coeffs) > 16:
            continue
        if _key(-atom.expr) not in atom_keys:
            continue
        expr = resolve(atom.expr)
        if len(expr.coeffs) > 16:
            continue
        # expr == 0 must hold; find a variable with a unit coefficient.
        chosen = None
        for v, c in sorted(expr.coeffs.items()):
            if c in (1, -1) and v not in pending and v not in blocked \
                    and (allowed is None or v in allowed):
                chosen = (v, c)
                break
        if chosen is None:
            continue
        v, c = chosen
        rest = LinExpr({w: k for w, k in expr.coeffs.items() if w != v},
                       expr.constant)
        pending[v] = rest * (-1) if c == 1 else rest
        blocked.update(rest.coeffs)
    return pending


def _apply(formula, substitutions):
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Atom):
        expr = formula.expr
        if not any(v in substitutions for v in expr.coeffs):
            return formula
        expr = expr.substitute(substitutions)
        if expr.is_constant():
            return TRUE if expr.constant <= 0 else FALSE
        return Atom(expr)
    if isinstance(formula, Not):
        arg = _apply(formula.arg, substitutions)
        if arg is formula.arg:
            return formula
        return neg(arg)
    # As in _fold_by_intervals: skip the conj/disj rebuild when no
    # subformula mentioned a substituted variable.
    if isinstance(formula, And):
        args = [_apply(a, substitutions) for a in formula.args]
        if all(a is b for a, b in zip(args, formula.args)):
            return formula
        return conj(*args)
    if isinstance(formula, Or):
        args = [_apply(a, substitutions) for a in formula.args]
        if all(a is b for a, b in zip(args, formula.args)):
            return formula
        return disj(*args)
    return formula


# -- interval propagation ----------------------------------------------------------


def _collect_intervals(formula):
    """var -> (lo, hi) from single-variable top-level atoms."""
    intervals = {}
    for f in _top_conjuncts(formula):
        if not isinstance(f, Atom) or len(f.expr.coeffs) != 1:
            continue
        (v, c), = f.expr.coeffs.items()
        k = f.expr.constant
        lo, hi = intervals.get(v, (-inf, inf))
        if c > 0:       # c v + k <= 0  ->  v <= floor(-k / c)
            hi = min(hi, (-k) // c)
        else:           # c v + k <= 0, c < 0  ->  v >= ceil(-k / c)
            lo = max(lo, _ceil_div(-k, c))
        intervals[v] = (lo, hi)
    return intervals


def _ceil_div(a, b):
    """ceil(a / b) for integers, b may be negative."""
    q, r = divmod(a, b)
    return q + (1 if r else 0)


def _range_of(expr, intervals):
    lo = hi = expr.constant
    for v, c in expr.coeffs.items():
        vlo, vhi = intervals.get(v, (-inf, inf))
        if c > 0:
            lo += c * vlo if vlo != -inf else -inf
            hi += c * vhi if vhi != inf else inf
        else:
            lo += c * vhi if vhi != inf else -inf
            hi += c * vlo if vlo != -inf else inf
    return lo, hi


def _fold_by_intervals(formula, intervals):
    changed = [False]

    def fold(f, top_level):
        if isinstance(f, BoolConst):
            return f
        if isinstance(f, Atom):
            lo, hi = _range_of(f.expr, intervals)
            if hi <= 0:
                # Keep top-level single-variable bounds: they carry the
                # interval information the final model still needs.
                if top_level and len(f.expr.coeffs) == 1:
                    return f
                changed[0] = True
                return TRUE
            if lo > 0:
                changed[0] = True
                return FALSE
            return f
        if isinstance(f, Not):
            arg = fold(f.arg, False)
            if arg is f.arg:
                return f
            return neg(arg)
        # Rebuild And/Or nodes only when a child actually folded —
        # conj/disj re-normalisation on an unchanged argument list is
        # pure allocation churn on the fixpoint's quiescent passes.
        if isinstance(f, And):
            args = [fold(a, top_level) for a in f.args]
            if all(a is b for a, b in zip(args, f.args)):
                return f
            return conj(*args)
        if isinstance(f, Or):
            args = [fold(a, False) for a in f.args]
            if all(a is b for a, b in zip(args, f.args)):
                return f
            return disj(*args)
        return f

    return fold(formula, True), changed[0]
