"""Linear integer expressions.

A :class:`LinExpr` is an immutable linear combination ``sum(c_i * x_i) + k``
with integer coefficients over named integer variables.  All atoms of the
logic are comparisons of a :class:`LinExpr` against zero; the normal form
used throughout the solver is ``e <= 0``.
"""

from repro.errors import SolverError

_MISSING = object()


class LinExpr:
    """An immutable linear expression: coefficient map plus constant."""

    __slots__ = ("coeffs", "constant", "_hash", "_sorted")

    def __init__(self, coeffs=None, constant=0):
        if coeffs:
            self.coeffs = {v: c for v, c in coeffs.items() if c != 0}
        else:
            self.coeffs = {}
        self.constant = constant
        self._hash = None
        self._sorted = None

    # -- construction -----------------------------------------------------

    @classmethod
    def _raw(cls, coeffs, constant):
        """Internal constructor for callers that guarantee *coeffs* is
        already zero-free and exclusively owned by the new expression.
        Formula building constructs LinExprs by the hundred thousand, so
        the algebra below maintains the zero-free invariant inline rather
        than paying ``__init__``'s re-filtering copy."""
        self = object.__new__(cls)
        self.coeffs = coeffs
        self.constant = constant
        self._hash = None
        self._sorted = None
        return self

    @staticmethod
    def of_var(name):
        return LinExpr({name: 1}, 0)

    @staticmethod
    def of_const(value):
        return LinExpr({}, value)

    @staticmethod
    def coerce(value):
        """Accept a LinExpr, an int, or a variable name."""
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, int):
            return LinExpr.of_const(value)
        if isinstance(value, str):
            return LinExpr.of_var(value)
        raise SolverError("cannot coerce %r to a linear expression" % (value,))

    # -- algebra ----------------------------------------------------------

    def __add__(self, other):
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        get = coeffs.get
        # Both coefficient maps are zero-free, so only keys the two sides
        # share can cancel — drop them as they appear and the result needs
        # no re-filtering pass.
        for v, c in other.coeffs.items():
            total = get(v, 0) + c
            if total:
                coeffs[v] = total
            elif v in coeffs:
                del coeffs[v]
        return LinExpr._raw(coeffs, self.constant + other.constant)

    __radd__ = __add__

    def __neg__(self):
        return LinExpr._raw({v: -c for v, c in self.coeffs.items()},
                            -self.constant)

    def __sub__(self, other):
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        get = coeffs.get
        for v, c in other.coeffs.items():
            total = get(v, 0) - c
            if total:
                coeffs[v] = total
            elif v in coeffs:
                del coeffs[v]
        return LinExpr._raw(coeffs, self.constant - other.constant)

    def __rsub__(self, other):
        return LinExpr.coerce(other) - self

    def __mul__(self, scalar):
        if not isinstance(scalar, int):
            raise SolverError("linear expressions only scale by integers")
        if scalar == 0:
            return LinExpr._raw({}, 0)
        return LinExpr._raw({v: c * scalar for v, c in self.coeffs.items()},
                            self.constant * scalar)

    __rmul__ = __mul__

    # -- inspection ---------------------------------------------------------

    def is_constant(self):
        return not self.coeffs

    def variables(self):
        return set(self.coeffs)

    def evaluate(self, assignment):
        """Value under a variable assignment (missing variables are errors)."""
        total = self.constant
        for v, c in self.coeffs.items():
            total += c * assignment[v]
        return total

    def substitute(self, mapping):
        """Replace variables by linear expressions (or ints)."""
        coeffs = {}
        constant = self.constant
        get = coeffs.get
        for v, c in self.coeffs.items():
            replacement = mapping.get(v, _MISSING)
            if replacement is _MISSING:
                coeffs[v] = get(v, 0) + c
            else:
                replacement = LinExpr.coerce(replacement)
                constant += replacement.constant * c
                for rv, rc in replacement.coeffs.items():
                    coeffs[rv] = get(rv, 0) + rc * c
        return LinExpr._raw({v: c for v, c in coeffs.items() if c}, constant)

    # -- identity -----------------------------------------------------------

    def sorted_coeffs(self):
        """The coefficient map as a sorted tuple, computed once."""
        items = self._sorted
        if items is None:
            items = self._sorted = tuple(sorted(self.coeffs.items()))
        return items

    def _key(self):
        return (self.sorted_coeffs(), self.constant)

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, LinExpr) and self._key() == other._key()

    def __hash__(self):
        if self._hash is None:
            self._hash = hash(self._key())
        return self._hash

    def __repr__(self):
        if not self.coeffs:
            return str(self.constant)
        parts = []
        for v, c in sorted(self.coeffs.items()):
            if c == 1:
                parts.append(v)
            elif c == -1:
                parts.append("-%s" % v)
            else:
                parts.append("%d*%s" % (c, v))
        expr = " + ".join(parts).replace("+ -", "- ")
        if self.constant:
            expr += " + %d" % self.constant if self.constant > 0 \
                else " - %d" % -self.constant
        return expr


def var(name):
    """Linear expression consisting of a single variable."""
    return LinExpr.of_var(name)


def const(value):
    """Constant linear expression."""
    return LinExpr.of_const(value)
