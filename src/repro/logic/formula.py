"""Boolean formula AST over linear atoms.

The only atom kind is ``e <= 0`` for a :class:`~repro.logic.terms.LinExpr`
``e``; every comparison is normalized into this form at construction time
(integers make strict inequalities exact: ``e < 0`` is ``e + 1 <= 0``).
Negated atoms stay atoms: ``not (e <= 0)`` is ``1 - e <= 0``.

Constructors :func:`conj` and :func:`disj` fold constants and flatten nested
connectives so the formulas handed to the CNF converter are small.

Nodes are hash-consed lightly: every node caches its hash, atoms cache
their gcd-canonical key (see :func:`canonical_atom_key`), and the
comparison builders intern atoms so the same comparison built twice is
the same object.  Identical subformulas across refinement rounds
therefore compare (and map to Tseitin variables) at pointer speed.
"""

from math import gcd

from repro.logic.terms import LinExpr
from repro.errors import SolverError


def canonical_atom_key(expr):
    """Canonical key of the atom ``expr <= 0``.

    Divides through by the gcd of the coefficients, tightening the
    constant with integer floor division, so equivalent integer atoms
    collide.  Returns ``(coeff_tuple, constant)``.
    """
    coeffs = expr.sorted_coeffs()
    g = 0
    for _, c in coeffs:
        g = gcd(g, abs(c))
    if g > 1:
        # sum c x <= -k  ==>  sum (c/g) x <= floor(-k/g)
        bound = (-expr.constant) // g
        coeffs = tuple((v, c // g) for v, c in coeffs)
        constant = -bound
    else:
        constant = expr.constant
    return coeffs, constant


class Formula:
    """Base class; use the module-level builders instead of subclasses."""

    __slots__ = ()

    def __and__(self, other):
        return conj(self, other)

    def __or__(self, other):
        return disj(self, other)

    def __invert__(self):
        return neg(self)


class BoolConst(Formula):
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = bool(value)

    def __eq__(self, other):
        return isinstance(other, BoolConst) and self.value == other.value

    def __hash__(self):
        return hash(("bool", self.value))

    def __repr__(self):
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


class Atom(Formula):
    """The linear atom ``expr <= 0``."""

    __slots__ = ("expr", "_hash", "_canon")

    def __init__(self, expr):
        self.expr = expr
        self._hash = None
        self._canon = None

    def negate(self):
        """``not (e <= 0)`` is ``e >= 1`` is ``1 - e <= 0``."""
        return _intern_atom(LinExpr.of_const(1) - self.expr)

    def canonical_keys(self):
        """``(key, complement_key)`` of this atom and its integer negation,
        computed once (the atom registry resolves literals through this)."""
        canon = self._canon
        if canon is None:
            canon = self._canon = (
                canonical_atom_key(self.expr),
                canonical_atom_key(LinExpr.of_const(1) - self.expr))
        return canon

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, Atom) and self.expr == other.expr

    def __hash__(self):
        h = self._hash
        if h is None:
            h = self._hash = hash(("atom", self.expr))
        return h

    def __repr__(self):
        return "(%r <= 0)" % self.expr


class And(Formula):
    __slots__ = ("args", "_hash")

    def __init__(self, args):
        self.args = tuple(args)
        self._hash = None

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, And) and self.args == other.args

    def __hash__(self):
        h = self._hash
        if h is None:
            h = self._hash = hash(("and", self.args))
        return h

    def __repr__(self):
        return "(and %s)" % " ".join(map(repr, self.args))


class Or(Formula):
    __slots__ = ("args", "_hash")

    def __init__(self, args):
        self.args = tuple(args)
        self._hash = None

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, Or) and self.args == other.args

    def __hash__(self):
        h = self._hash
        if h is None:
            h = self._hash = hash(("or", self.args))
        return h

    def __repr__(self):
        return "(or %s)" % " ".join(map(repr, self.args))


class Not(Formula):
    __slots__ = ("arg", "_hash")

    def __init__(self, arg):
        self.arg = arg
        self._hash = None

    def __eq__(self, other):
        if self is other:
            return True
        return isinstance(other, Not) and self.arg == other.arg

    def __hash__(self):
        h = self._hash
        if h is None:
            h = self._hash = hash(("not", self.arg))
        return h

    def __repr__(self):
        return "(not %r)" % self.arg


# -- atom interning ---------------------------------------------------------

_ATOM_INTERN = {}
_ATOM_INTERN_LIMIT = 1 << 16


def _intern_atom(expr):
    """The canonical :class:`Atom` object for ``expr <= 0``.

    The same comparison built twice (e.g. across refinement rounds)
    returns the same object, so equality checks and dict lookups on
    formulas short-circuit on identity.  The table resets when full,
    which only costs sharing, never correctness.
    """
    key = expr._key()
    atom = _ATOM_INTERN.get(key)
    if atom is None:
        if len(_ATOM_INTERN) >= _ATOM_INTERN_LIMIT:
            _ATOM_INTERN.clear()
        atom = Atom(expr)
        _ATOM_INTERN[key] = atom
    return atom


# -- smart constructors ----------------------------------------------------

def conj(*formulas):
    """Conjunction with constant folding and flattening."""
    flat = []
    for f in _flatten(formulas):
        if isinstance(f, BoolConst):
            if not f.value:
                return FALSE
        elif isinstance(f, And):
            flat.extend(f.args)
        else:
            flat.append(f)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(flat)


def disj(*formulas):
    """Disjunction with constant folding and flattening."""
    flat = []
    for f in _flatten(formulas):
        if isinstance(f, BoolConst):
            if f.value:
                return TRUE
        elif isinstance(f, Or):
            flat.extend(f.args)
        else:
            flat.append(f)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(flat)


def _flatten(formulas):
    for f in formulas:
        if isinstance(f, (list, tuple)):
            for g in f:
                yield g
        else:
            yield f


def neg(formula):
    """Negation, pushed through constants, atoms and double negation."""
    if isinstance(formula, BoolConst):
        return FALSE if formula.value else TRUE
    if isinstance(formula, Atom):
        return formula.negate()
    if isinstance(formula, Not):
        return formula.arg
    return Not(formula)


def implies(antecedent, consequent):
    return disj(neg(antecedent), consequent)


def iff(left, right):
    return conj(implies(left, right), implies(right, left))


# -- comparison builders ----------------------------------------------------

def le(a, b):
    """a <= b"""
    diff = LinExpr.coerce(a) - LinExpr.coerce(b)
    if diff.is_constant():
        return TRUE if diff.constant <= 0 else FALSE
    return _intern_atom(diff)


def lt(a, b):
    """a < b (integers: a <= b - 1)"""
    return le(LinExpr.coerce(a) + 1, b)


def ge(a, b):
    """a >= b"""
    return le(b, a)


def gt(a, b):
    """a > b"""
    return lt(b, a)


def eq(a, b):
    """a == b"""
    return conj(le(a, b), le(b, a))


def ne(a, b):
    """a != b, split into the two integer half-spaces."""
    return disj(lt(a, b), gt(a, b))


# -- traversals --------------------------------------------------------------

def atoms_of(formula):
    """The set of distinct atoms occurring in *formula*."""
    found = set()
    _walk(formula, lambda f: found.add(f) if isinstance(f, Atom) else None)
    return found


def variables_of(formula):
    """The set of integer variables occurring in *formula*."""
    found = set()
    _walk(formula, lambda f: found.update(f.expr.variables())
          if isinstance(f, Atom) else None)
    return found


def _walk(formula, visit):
    stack = [formula]
    while stack:
        f = stack.pop()
        visit(f)
        if isinstance(f, (And, Or)):
            stack.extend(f.args)
        elif isinstance(f, Not):
            stack.append(f.arg)


def evaluate(formula, assignment):
    """Truth value of *formula* under an integer assignment."""
    if isinstance(formula, BoolConst):
        return formula.value
    if isinstance(formula, Atom):
        return formula.expr.evaluate(assignment) <= 0
    if isinstance(formula, Not):
        return not evaluate(formula.arg, assignment)
    if isinstance(formula, And):
        return all(evaluate(a, assignment) for a in formula.args)
    if isinstance(formula, Or):
        return any(evaluate(a, assignment) for a in formula.args)
    raise SolverError("cannot evaluate %r" % (formula,))


def nnf(formula, negated=False):
    """Negation normal form (atoms absorb negation, so no Not nodes remain)."""
    if isinstance(formula, BoolConst):
        return neg(formula) if negated else formula
    if isinstance(formula, Atom):
        return formula.negate() if negated else formula
    if isinstance(formula, Not):
        return nnf(formula.arg, not negated)
    if isinstance(formula, And):
        parts = [nnf(a, negated) for a in formula.args]
        return disj(*parts) if negated else conj(*parts)
    if isinstance(formula, Or):
        parts = [nnf(a, negated) for a in formula.args]
        return conj(*parts) if negated else disj(*parts)
    raise SolverError("cannot normalize %r" % (formula,))


def substitute(formula, mapping):
    """Replace integer variables by expressions throughout *formula*."""
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Atom):
        expr = formula.expr.substitute(mapping)
        if expr.is_constant():
            return TRUE if expr.constant <= 0 else FALSE
        return _intern_atom(expr)
    if isinstance(formula, Not):
        return neg(substitute(formula.arg, mapping))
    if isinstance(formula, And):
        return conj(*[substitute(a, mapping) for a in formula.args])
    if isinstance(formula, Or):
        return disj(*[substitute(a, mapping) for a in formula.args])
    raise SolverError("cannot substitute in %r" % (formula,))
