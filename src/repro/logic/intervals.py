"""Interval (bounds) propagation over linear-atom formulas.

Used by the PFA-selection strategy: propagating bounds through the length
abstraction yields *sound* upper bounds for string lengths, which in turn
make straight-line domain restrictions lossless.

Two constraint shapes participate:

* top-level atoms of the conjunction — classic bounds consistency;
* top-level disjunctions — each branch is refined locally against the
  current intervals; infeasible branches are discarded and the variable
  intervals of the surviving branches are hulled.  A single surviving
  branch therefore propagates like a conjunction, which is what makes
  implication ladders (``n >= 10^L -> |x| >= L+1``) productive.

Deeper nesting is ignored (sound, just less precise).
"""

from math import inf

from repro.logic.formula import And, Atom, BoolConst, Or


class IntervalState:
    """Result of propagation: bounds per variable plus a feasibility flag."""

    __slots__ = ("bounds", "feasible")

    def __init__(self, bounds, feasible):
        self.bounds = bounds
        self.feasible = feasible

    def get(self, var):
        return self.bounds.get(var, (-inf, inf))

    def upper(self, var):
        return self.get(var)[1]

    def lower(self, var):
        return self.get(var)[0]


def range_of(expr, bounds):
    """Interval of a linear expression under variable *bounds*."""
    lo = hi = expr.constant
    for v, c in expr.coeffs.items():
        vlo, vhi = bounds.get(v, (-inf, inf))
        if c > 0:
            lo += c * vlo if vlo != -inf else -inf
            hi += c * vhi if vhi != inf else inf
        else:
            lo += c * vhi if vhi != inf else -inf
            hi += c * vlo if vlo != -inf else inf
    return lo, hi


def _refine_atom(atom, bounds):
    """Tighten *bounds* in place with one atom; returns (changed, feasible)."""
    coeffs = atom.expr.coeffs
    k = atom.expr.constant
    lo_e, _ = range_of(atom.expr, bounds)
    if lo_e > 0:
        return False, False
    changed = False
    for target, c in coeffs.items():
        rest_min = 0
        usable = True
        for v, cv in coeffs.items():
            if v == target:
                continue
            vlo, vhi = bounds.get(v, (-inf, inf))
            bound = vlo if cv > 0 else vhi
            if bound in (-inf, inf):
                usable = False
                break
            rest_min += cv * bound
        if not usable:
            continue
        budget = -k - rest_min      # c * target <= budget
        lo, hi = bounds.get(target, (-inf, inf))
        if c > 0:
            new_hi = budget // c
            if new_hi < hi:
                hi = new_hi
                changed = True
        else:
            new_lo = _ceil_div(budget, c)
            if new_lo > lo:
                lo = new_lo
                changed = True
        if lo > hi:
            bounds[target] = (lo, hi)
            return True, False
        bounds[target] = (lo, hi)
    return changed, True


def _branch_atoms(branch):
    if isinstance(branch, Atom):
        return [branch]
    if isinstance(branch, And):
        return [a for a in branch.args if isinstance(a, Atom)]
    return []


def propagate_intervals(formula, max_rounds=40):
    """Fixpoint propagation; returns an :class:`IntervalState`.

    Every bound in the result is entailed by *formula*, so it is sound for
    any of its models; ``feasible=False`` means the formula has no integer
    model at all.
    """
    if isinstance(formula, BoolConst):
        return IntervalState({}, formula.value)
    if isinstance(formula, And):
        conjuncts = list(formula.args)
    else:
        conjuncts = [formula]
    atoms = [f for f in conjuncts if isinstance(f, Atom)]
    disjunctions = [f for f in conjuncts if isinstance(f, Or)]

    bounds = {}
    for _ in range(max_rounds):
        changed = False
        for atom in atoms:
            did, feasible = _refine_atom(atom, bounds)
            if not feasible:
                return IntervalState(bounds, False)
            changed = changed or did

        for disjunction in disjunctions:
            surviving = []
            opaque = False
            for branch in disjunction.args:
                if isinstance(branch, BoolConst):
                    if branch.value:
                        opaque = True
                        break
                    continue
                branch_atoms = _branch_atoms(branch)
                if not branch_atoms:
                    opaque = True     # cannot analyze: assume satisfiable
                    break
                local = dict(bounds)
                ok = True
                for _ in range(2):
                    for atom in branch_atoms:
                        _, feasible = _refine_atom(atom, local)
                        if not feasible:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    surviving.append(local)
            if opaque:
                continue
            if not surviving:
                return IntervalState(bounds, False)
            # Hull the branch intervals for every variable any branch
            # touched; a variable untouched by some branch keeps its
            # global interval there.
            touched = set()
            for local in surviving:
                touched.update(local.keys())
            for v in touched:
                lo = min(local.get(v, bounds.get(v, (-inf, inf)))[0]
                         for local in surviving)
                hi = max(local.get(v, bounds.get(v, (-inf, inf)))[1]
                         for local in surviving)
                old = bounds.get(v, (-inf, inf))
                new = (max(old[0], lo), min(old[1], hi))
                if new != old:
                    bounds[v] = new
                    changed = True
                    if new[0] > new[1]:
                        return IntervalState(bounds, False)
        if not changed:
            break
    return IntervalState(bounds, True)


def _ceil_div(a, b):
    q, r = divmod(a, b)
    return q + (1 if r else 0)
