"""Interval (bounds) propagation over linear-atom formulas.

Used by the PFA-selection strategy: propagating bounds through the length
abstraction yields *sound* upper bounds for string lengths, which in turn
make straight-line domain restrictions lossless.

Two constraint shapes participate:

* top-level atoms of the conjunction — classic bounds consistency;
* top-level disjunctions — each branch is refined locally against the
  current intervals; infeasible branches are discarded and the variable
  intervals of the surviving branches are hulled.  A single surviving
  branch therefore propagates like a conjunction, which is what makes
  implication ladders (``n >= 10^L -> |x| >= L+1``) productive.

Deeper nesting is ignored (sound, just less precise).
"""

from math import inf

from repro.logic.formula import And, Atom, BoolConst, Or


class _Overlay(dict):
    """Branch-local bounds: writes land here, reads fall back to *base*.

    Branch refinement inside a disjunction only ever touches the
    variables of the branch's atoms, so copying the whole (large) global
    bounds dict per branch per fixpoint round is wasted work; the overlay
    makes branch refinement O(branch) instead of O(formula).  Only
    ``get`` and ``[...]=`` are used on branch-local bounds.
    """

    __slots__ = ("base",)

    def __init__(self, base):
        dict.__init__(self)
        self.base = base

    def get(self, key, default=None):
        if key in self:
            return dict.get(self, key)
        return self.base.get(key, default)


class IntervalState:
    """Result of propagation: bounds per variable plus a feasibility flag."""

    __slots__ = ("bounds", "feasible")

    def __init__(self, bounds, feasible):
        self.bounds = bounds
        self.feasible = feasible

    def get(self, var):
        return self.bounds.get(var, (-inf, inf))

    def upper(self, var):
        return self.get(var)[1]

    def lower(self, var):
        return self.get(var)[0]


def range_of(expr, bounds):
    """Interval of a linear expression under variable *bounds*."""
    lo = hi = expr.constant
    for v, c in expr.coeffs.items():
        vlo, vhi = bounds.get(v, (-inf, inf))
        if c > 0:
            lo += c * vlo if vlo != -inf else -inf
            hi += c * vhi if vhi != inf else inf
        else:
            lo += c * vhi if vhi != inf else -inf
            hi += c * vlo if vlo != -inf else inf
    return lo, hi


def _refine_atom(atom, bounds, changed_vars=None):
    """Tighten *bounds* in place with one atom; returns (changed, feasible).

    With *changed_vars*, every variable whose interval actually tightened
    is added to the set (the propagation driver's worklist).
    """
    coeffs = atom.expr.coeffs
    k = atom.expr.constant
    lo_e, _ = range_of(atom.expr, bounds)
    if lo_e > 0:
        return False, False
    changed = False
    for target, c in coeffs.items():
        rest_min = 0
        usable = True
        for v, cv in coeffs.items():
            if v == target:
                continue
            vlo, vhi = bounds.get(v, (-inf, inf))
            bound = vlo if cv > 0 else vhi
            if bound in (-inf, inf):
                usable = False
                break
            rest_min += cv * bound
        if not usable:
            continue
        budget = -k - rest_min      # c * target <= budget
        lo, hi = bounds.get(target, (-inf, inf))
        if c > 0:
            new_hi = budget // c
            if new_hi >= hi:
                continue
            hi = new_hi
        else:
            new_lo = _ceil_div(budget, c)
            if new_lo <= lo:
                continue
            lo = new_lo
        changed = True
        bounds[target] = (lo, hi)
        if changed_vars is not None:
            changed_vars.add(target)
        if lo > hi:
            return True, False
    return changed, True


def _branch_atoms(branch):
    if isinstance(branch, Atom):
        return [branch]
    if isinstance(branch, And):
        return [a for a in branch.args if isinstance(a, Atom)]
    return []


def propagate_intervals(formula, max_rounds=40):
    """Fixpoint propagation; returns an :class:`IntervalState`.

    Every bound in the result is entailed by *formula*, so it is sound for
    any of its models; ``feasible=False`` means the formula has no integer
    model at all.
    """
    if isinstance(formula, BoolConst):
        return IntervalState({}, formula.value)
    if isinstance(formula, And):
        conjuncts = list(formula.args)
    else:
        conjuncts = [formula]
    atoms = [f for f in conjuncts if isinstance(f, Atom)]
    disjunctions = [f for f in conjuncts if isinstance(f, Or)]
    # Branch atom lists are stable across fixpoint rounds; scan each
    # branch once.
    branch_atom_cache = {}
    # Worklist support: which variables each conjunct reads.  After the
    # first full round, a conjunct is only re-refined when one of its
    # variables tightened in the previous round — re-running it otherwise
    # would recompute exactly the same intervals.
    atom_vars = [frozenset(a.expr.coeffs) for a in atoms]
    disj_vars = []
    for disjunction in disjunctions:
        read = set()
        for branch in disjunction.args:
            for atom in _branch_atoms(branch):
                read.update(atom.expr.coeffs)
        disj_vars.append(read)

    bounds = {}
    prev_changed = None         # None: first round, refine everything
    for _ in range(max_rounds):
        changed_vars = set()
        for i, atom in enumerate(atoms):
            if prev_changed is not None \
                    and prev_changed.isdisjoint(atom_vars[i]):
                continue
            _, feasible = _refine_atom(atom, bounds, changed_vars)
            if not feasible:
                return IntervalState(bounds, False)

        for j, disjunction in enumerate(disjunctions):
            if prev_changed is not None \
                    and prev_changed.isdisjoint(disj_vars[j]):
                continue
            surviving = []
            opaque = False
            for branch in disjunction.args:
                if isinstance(branch, BoolConst):
                    if branch.value:
                        opaque = True
                        break
                    continue
                branch_atoms = branch_atom_cache.get(id(branch))
                if branch_atoms is None:
                    branch_atoms = _branch_atoms(branch)
                    branch_atom_cache[id(branch)] = branch_atoms
                if not branch_atoms:
                    opaque = True     # cannot analyze: assume satisfiable
                    break
                local = _Overlay(bounds)
                ok = True
                for _ in range(2):
                    for atom in branch_atoms:
                        _, feasible = _refine_atom(atom, local)
                        if not feasible:
                            ok = False
                            break
                    if not ok:
                        break
                if ok:
                    surviving.append(local)
            if opaque:
                continue
            if not surviving:
                return IntervalState(bounds, False)
            # Hull the branch intervals for every variable any branch
            # touched; a variable untouched by some branch keeps its
            # global interval there (the overlay's base fallback).
            touched = set()
            for local in surviving:
                touched.update(local.keys())
            for v in touched:
                lo = min(local.get(v, (-inf, inf))[0]
                         for local in surviving)
                hi = max(local.get(v, (-inf, inf))[1]
                         for local in surviving)
                old = bounds.get(v, (-inf, inf))
                new = (max(old[0], lo), min(old[1], hi))
                if new != old:
                    bounds[v] = new
                    changed_vars.add(v)
                    if new[0] > new[1]:
                        return IntervalState(bounds, False)
        if not changed_vars:
            break
        prev_changed = changed_vars
    return IntervalState(bounds, True)


def _ceil_div(a, b):
    q, r = divmod(a, b)
    return q + (1 if r else 0)
