"""Tseitin conversion of linear-atom formulas to CNF.

The formula is first brought to negation normal form, so the encoding only
needs the one-sided (Plaisted-Greenbaum) implications: every model of the
CNF, restricted to the atom variables, satisfies the boolean skeleton of the
original formula.

Atoms are canonicalized before being given SAT variables so that an atom and
its integer complement (``e <= 0`` versus ``1 - e <= 0``) map to opposite
literals of one variable.  This halves the theory's work and lets the SAT
core see the propositional structure of comparisons.
"""

from math import gcd

from repro.logic.terms import LinExpr
from repro.logic.formula import (
    Atom, And, Or, BoolConst, nnf,
)
from repro.errors import SolverError


def _canonical(expr):
    """Canonical key of the atom ``expr <= 0``.

    Divides through by the gcd of the coefficients, tightening the constant
    with integer floor division, so equivalent integer atoms collide.
    Returns ``(coeff_tuple, constant)``.
    """
    coeffs = sorted(expr.coeffs.items())
    g = 0
    for _, c in coeffs:
        g = gcd(g, abs(c))
    if g > 1:
        # sum c x <= -k  ==>  sum (c/g) x <= floor(-k/g)
        bound = (-expr.constant) // g
        coeffs = [(v, c // g) for v, c in coeffs]
        constant = -bound
    else:
        constant = expr.constant
    return tuple(coeffs), constant


class AtomRegistry:
    """Bidirectional map between canonical atoms and SAT literals."""

    def __init__(self):
        self._key_to_var = {}
        self._var_to_atom = {}
        self._next_var = 1
        self._occurrences = set()

    @property
    def variable_count(self):
        return self._next_var - 1

    def fresh_var(self):
        """Allocate a SAT variable with no attached atom (Tseitin label)."""
        v = self._next_var
        self._next_var += 1
        return v

    def literal(self, atom):
        """SAT literal for *atom*, reusing the complement's variable."""
        key = _canonical(atom.expr)
        if key in self._key_to_var:
            return self._key_to_var[key]
        complement_key = _canonical(LinExpr.of_const(1) - atom.expr)
        if complement_key in self._key_to_var:
            return -self._key_to_var[complement_key]
        v = self.fresh_var()
        self._key_to_var[key] = v
        self._var_to_atom[v] = atom
        return v

    def atom_of(self, variable):
        """The Atom attached to a SAT *variable*, or ``None`` for labels."""
        return self._var_to_atom.get(variable)

    def note_occurrence(self, literal):
        """Record that *literal* (with this polarity) occurs in the CNF."""
        self._occurrences.add(literal)

    def occurs(self, literal):
        """Does *literal* occur anywhere with this polarity?

        A theory literal that never occurs is a don't-care for the boolean
        skeleton: the lazy SMT loop need not assert its atom.
        """
        return literal in self._occurrences

    def theory_variables(self):
        """All SAT variables that carry atoms."""
        return list(self._var_to_atom)


def tseitin(formula, registry=None):
    """Convert *formula* to CNF clauses.

    Returns ``(clauses, registry)`` where *clauses* is a list of lists of
    non-zero integer literals and *registry* maps literals back to atoms.
    An unsatisfiable input yields the empty clause; a valid one yields no
    clauses.
    """
    if registry is None:
        registry = AtomRegistry()
    formula = nnf(formula)
    if isinstance(formula, BoolConst):
        return ([] if formula.value else [[]]), registry

    clauses = []
    cache = {}

    def encode(f):
        if f in cache:
            return cache[f]
        if isinstance(f, Atom):
            lit = registry.literal(f)
            registry.note_occurrence(lit)
        elif isinstance(f, And):
            lit = registry.fresh_var()
            for arg in f.args:
                clauses.append([-lit, encode(arg)])
        elif isinstance(f, Or):
            lit = registry.fresh_var()
            clauses.append([-lit] + [encode(arg) for arg in f.args])
        elif isinstance(f, BoolConst):
            # Only reachable under And/Or whose smart constructors folded
            # constants away, but guard anyway.
            lit = registry.fresh_var()
            clauses.append([lit] if f.value else [-lit])
        else:
            raise SolverError("unexpected node in NNF: %r" % (f,))
        cache[f] = lit
        return lit

    root = encode(formula)
    clauses.append([root])
    return clauses, registry
