"""Tseitin conversion of linear-atom formulas to CNF.

The formula is first brought to negation normal form, so the encoding only
needs the one-sided (Plaisted-Greenbaum) implications: every model of the
CNF, restricted to the atom variables, satisfies the boolean skeleton of the
original formula.

Atoms are canonicalized before being given SAT variables so that an atom and
its integer complement (``e <= 0`` versus ``1 - e <= 0``) map to opposite
literals of one variable.  This halves the theory's work and lets the SAT
core see the propositional structure of comparisons.

The encoder is incremental-friendly: :func:`encode_into` accepts a
persistent registry and node->literal cache, so an
:class:`~repro.smt.session.IncrementalSmtSession` can feed successive
round formulas through one registry and re-encode only the subformulas it
has never seen.  Definitional clauses are valid on their own (they only
constrain fresh label variables), which is what makes sharing them across
rounds sound.
"""

from repro.logic.formula import (
    Atom, And, Or, BoolConst, canonical_atom_key, nnf,
)
from repro.errors import SolverError

# Backwards-compatible alias: the canonicalization now lives with the Atom
# class so its result can be cached per atom object.
_canonical = canonical_atom_key


class AtomRegistry:
    """Bidirectional map between canonical atoms and SAT literals."""

    def __init__(self):
        self._key_to_var = {}
        self._var_to_atom = {}
        self._next_var = 1
        self._occurrences = set()

    @property
    def variable_count(self):
        return self._next_var - 1

    def fresh_var(self):
        """Allocate a SAT variable with no attached atom (Tseitin label)."""
        v = self._next_var
        self._next_var += 1
        return v

    def literal(self, atom):
        """SAT literal for *atom*, reusing the complement's variable."""
        key, complement_key = atom.canonical_keys()
        var = self._key_to_var.get(key)
        if var is not None:
            return var
        var = self._key_to_var.get(complement_key)
        if var is not None:
            return -var
        v = self.fresh_var()
        self._key_to_var[key] = v
        self._var_to_atom[v] = atom
        return v

    def atom_of(self, variable):
        """The Atom attached to a SAT *variable*, or ``None`` for labels."""
        return self._var_to_atom.get(variable)

    def note_occurrence(self, literal):
        """Record that *literal* (with this polarity) occurs in the CNF."""
        self._occurrences.add(literal)

    def occurs(self, literal):
        """Does *literal* occur anywhere with this polarity?

        A theory literal that never occurs is a don't-care for the boolean
        skeleton: the lazy SMT loop need not assert its atom.
        """
        return literal in self._occurrences

    def theory_variables(self):
        """All SAT variables that carry atoms."""
        return list(self._var_to_atom)


def encode_into(formula, registry, cache, clauses):
    """Encode an NNF *formula*, appending definitional clauses to *clauses*.

    Returns the root literal.  *cache* maps already-encoded nodes to their
    literals; entries (and the clauses they stand for) may be reused across
    calls as long as the same *registry* keeps numbering the variables —
    every emitted clause only relates label variables to their definition,
    so it stays valid in any later formula.  The root assertion is NOT
    appended; the caller asserts (or guards) the returned literal.
    """

    def encode(f):
        lit = cache.get(f)
        if lit is not None:
            return lit
        if isinstance(f, Atom):
            lit = registry.literal(f)
            registry.note_occurrence(lit)
        elif isinstance(f, And):
            lit = registry.fresh_var()
            for arg in f.args:
                clauses.append([-lit, encode(arg)])
        elif isinstance(f, Or):
            lit = registry.fresh_var()
            clauses.append([-lit] + [encode(arg) for arg in f.args])
        elif isinstance(f, BoolConst):
            # Only reachable under And/Or whose smart constructors folded
            # constants away, but guard anyway.
            lit = registry.fresh_var()
            clauses.append([lit] if f.value else [-lit])
        else:
            raise SolverError("unexpected node in NNF: %r" % (f,))
        cache[f] = lit
        return lit

    return encode(formula)


def tseitin(formula, registry=None, cache=None):
    """Convert *formula* to CNF clauses.

    Returns ``(clauses, registry)`` where *clauses* is a list of lists of
    non-zero integer literals and *registry* maps literals back to atoms.
    An unsatisfiable input yields the empty clause; a valid one yields no
    clauses.  Pass a persistent *registry* and *cache* to share variable
    numbering and subformula encodings across calls.
    """
    if registry is None:
        registry = AtomRegistry()
    if cache is None:
        cache = {}
    formula = nnf(formula)
    if isinstance(formula, BoolConst):
        return ([] if formula.value else [[]]), registry

    clauses = []
    root = encode_into(formula, registry, cache, clauses)
    clauses.append([root])
    return clauses, registry
