"""Quantifier-free linear integer arithmetic formulas.

This is the target language of the paper's flattening: boolean combinations
of linear atoms over integer variables.  The package provides

* :mod:`repro.logic.terms` — linear expressions and atom constructors,
* :mod:`repro.logic.formula` — the boolean formula AST with builders,
* :mod:`repro.logic.cnf` — Tseitin conversion to CNF for the SAT core.
"""

from repro.logic.terms import LinExpr, var, const
from repro.logic.formula import (
    Atom, And, Or, Not, BoolConst, TRUE, FALSE,
    conj, disj, neg, implies, iff,
    le, lt, ge, gt, eq, ne,
    atoms_of, variables_of, evaluate, nnf, substitute,
)
from repro.logic.cnf import tseitin

__all__ = [
    "LinExpr", "var", "const",
    "Atom", "And", "Or", "Not", "BoolConst", "TRUE", "FALSE",
    "conj", "disj", "neg", "implies", "iff",
    "le", "lt", "ge", "gt", "eq", "ne",
    "atoms_of", "variables_of", "evaluate", "nnf", "substitute",
    "tseitin",
]
