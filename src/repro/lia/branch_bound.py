"""Integer feasibility by branch-and-bound over the rational simplex.

``IntegerSolver`` decides integer feasibility of conjunctions of linear
atoms ``expr <= 0`` (each carrying an opaque tag):

* atoms over a single variable become direct bounds, floored/ceiled to
  integers immediately;
* every other atom introduces a slack row (cached per coefficient
  signature, so re-checking with different atom subsets reuses the
  tableau); slack bounds are tightened to multiples of the row's
  coefficient gcd — a slack is an integer combination of integer
  variables, so its value is divisible by the gcd — which also catches
  gcd-infeasible equalities such as ``2x - 2y = 1`` without search;
* remaining fractional vertices are resolved by depth-first branching with
  push/pop on the simplex.

The solver is *incremental*: ``assert_base`` installs permanent atoms (the
level-zero facts of the SMT search), and each ``check`` call tests a batch
of additional atoms inside a push/pop frame — the tableau, its pivots, and
the slack-row cache survive between calls, which is what makes the lazy
DPLL(T) loop affordable.

Infeasibility returns a conflict core: a subset of the supplied tags whose
atoms are jointly integer-infeasible (union of leaf simplex cores across
branches, sound because the two branch bounds are exhaustive over the
integers).
"""

from math import floor, gcd

from repro import faults as _faults
from repro import kernels as _kernels
from repro.config import Deadline
from repro.errors import ResourceLimit
from repro.obs import current_metrics


class IntResult:
    """Outcome of an integer feasibility check."""

    __slots__ = ("status", "model", "conflict", "reason")

    def __init__(self, status, model=None, conflict=None, reason=None):
        self.status = status          # "sat" | "unsat" | "unknown"
        self.model = model            # var -> int, when sat
        self.conflict = conflict      # list of tags, when unsat
        self.reason = reason          # tripped budget kind, when unknown

    def __repr__(self):
        return "IntResult(%s)" % self.status


_MISSING = object()


def _row_key(expr):
    """Canonical (sign-normalized) coefficient signature of an expression."""
    items = tuple(sorted(expr.coeffs.items()))
    sign = 1 if items[0][1] > 0 else -1
    return tuple((v, sign * c) for v, c in items), sign


class IntegerSolver:
    """Incremental integer feasibility of tagged linear atoms."""

    def __init__(self, node_limit=200000, deadline=None):
        self._node_limit = node_limit
        self._deadline = deadline or Deadline.unbounded()
        self._simplex = _kernels.simplex_solver()
        self._slack_of = {}        # row signature -> (slack name, gcd)
        self._slack_counter = 0
        self._variables = set()
        self._sorted_vars = None   # sorted view, rebuilt on new variables
        self._nodes = 0
        self._prepare_cache = {}   # LinExpr -> prepared bound assertions

    # -- turning atoms into bound assertions -----------------------------------

    def _prepare(self, expr):
        """Bound assertions for the atom ``expr <= 0``.

        Returns a list of ``(var, is_upper, int bound)``, defining
        slack rows as a side effect.  Constant atoms return ``None`` when
        trivially true and an empty-conflict marker when trivially false.
        Results are cached: the lazy SMT loop re-checks the same atoms with
        every candidate model.
        """
        _missing = _MISSING
        cached = self._prepare_cache.get(expr, _missing)
        if cached is not _missing:
            return cached
        prepared = self._prepare_uncached(expr)
        self._prepare_cache[expr] = prepared
        return prepared

    def _prepare_uncached(self, expr):
        if expr.is_constant():
            return None if expr.constant <= 0 else "false"
        # Bounds stay plain ints end to end: the expression's constant and
        # coefficients are ints and every division below floors/ceils, so
        # wrapping in Fraction would only cost the simplex a conversion.
        bound = -expr.constant     # sum c x <= bound
        if len(expr.coeffs) == 1:
            (x, c), = expr.coeffs.items()
            self._variables.add(x)
            self._sorted_vars = None
            self._simplex.add_variable(x)
            if c > 0:
                return [(x, True, bound // c)]
            return [(x, False, bound // c + (1 if bound % c else 0))]
        key, sign = _row_key(expr)
        if key not in self._slack_of:
            slack = "__s%d" % self._slack_counter
            self._slack_counter += 1
            coeffs = dict(key)
            self._variables.update(coeffs)
            self._sorted_vars = None
            g = 0
            for c in coeffs.values():
                g = gcd(g, abs(c))
            self._simplex.define(slack, coeffs)
            self._slack_of[key] = (slack, max(g, 1))
        slack, g = self._slack_of[key]
        if sign > 0:
            return [(slack, True, g * (bound // g))]
        return [(slack, False, -g * (bound // g))]   # g*ceil(-b/g)

    def _assert(self, prepared, tag):
        for var, is_upper, value in prepared:
            conflict = (self._simplex.assert_upper(var, value, tag)
                        if is_upper
                        else self._simplex.assert_lower(var, value, tag))
            if conflict is not None:
                return conflict
        return None

    # -- public API ----------------------------------------------------------------

    def assert_base(self, expr, tag=None):
        """Permanently assert ``expr <= 0``; returns a conflict or None."""
        prepared = self._prepare(expr)
        if prepared is None:
            return None
        if prepared == "false":
            return [tag] if tag is not None else []
        return self._assert(prepared, tag)

    def check(self, tagged_exprs, shrink=True, node_limit=None):
        """Feasibility of the base atoms plus *tagged_exprs* (one frame).

        An unsatisfiable answer's conflict core is greedily shrunk (each
        candidate removal re-checked with a small budget): branch-and-bound
        merges cores across branches, and small cores make far stronger
        theory lemmas for the SMT loop.
        """
        if _faults.ARMED:
            _faults.point("lia.check")
        metrics = current_metrics()
        pivots_before = self._simplex.pivots if metrics.enabled else 0
        result = self._check_once(tagged_exprs, node_limit)
        if metrics.enabled:
            metrics.add("bb.checks")
            metrics.add("bb.nodes", self._nodes)
            metrics.add("simplex.pivots",
                        self._simplex.pivots - pivots_before)
        if not shrink or result.status != "unsat":
            return result
        core = result.conflict
        if not 1 < len(core) <= 25:
            return result
        expr_of = {tag: expr for expr, tag in tagged_exprs
                   if tag is not None}
        for tag in list(core):
            if tag not in core or tag not in expr_of:
                continue
            trial = [(expr_of[t], t) for t in core
                     if t != tag and t in expr_of]
            retry = self._check_once(trial, node_limit=2000)
            if retry.status == "unsat":
                core = retry.conflict
        return IntResult("unsat", conflict=core)

    def _check_once(self, tagged_exprs, node_limit=None):
        self._nodes = 0     # so early-conflict exits report a clean count
        self._simplex.push()
        try:
            for expr, tag in tagged_exprs:
                prepared = self._prepare(expr)
                if prepared is None:
                    continue
                if prepared == "false":
                    return IntResult("unsat",
                                     conflict=[tag] if tag is not None else [])
                conflict = self._assert(prepared, tag)
                if conflict is not None:
                    return IntResult("unsat", conflict=conflict)
            self._nodes = 0
            if node_limit is not None:
                self._nodes = max(0, self._node_limit - node_limit)
            try:
                return self._search(0)
            except ResourceLimit as exc:
                return IntResult("unknown", reason=exc.reason)
        finally:
            self._simplex.pop()

    def solve(self):
        """One-shot feasibility of the base atoms alone."""
        return self.check([])

    # -- branch and bound --------------------------------------------------------------

    def _search(self, depth):
        self._nodes += 1
        if self._nodes > self._node_limit or depth > 600:
            raise ResourceLimit("branch-and-bound budget exhausted",
                                reason="bb-nodes")
        if self._deadline.expired():
            raise ResourceLimit("deadline expired", reason="deadline")
        status = self._simplex.check(self._deadline)
        if status == "unsat":
            core = [t for t in self._simplex.conflict if t is not None]
            return IntResult("unsat", conflict=core)
        branch_var = None
        branch_val = None
        variables = self._sorted_vars
        if variables is None:
            variables = self._sorted_vars = sorted(self._variables)
        value_of = self._simplex.value
        for var in variables:
            value = value_of(var)
            if value.denominator != 1:
                branch_var, branch_val = var, value
                break
        if branch_var is None:
            model = {var: int(self._simplex.value(var))
                     for var in self._variables if not var.startswith("__")}
            return IntResult("sat", model=model)

        lo = floor(branch_val)
        cores = []
        for is_upper, bound in ((True, lo), (False, lo + 1)):
            # The pop must run even when the recursive search raises
            # ResourceLimit: the solver is persistent, and a frame leaked
            # here would leave this branch's (tag-None) bound asserted for
            # every later check — whose conflicts then blame the wrong
            # atoms, an unsound core.
            self._simplex.push()
            try:
                conflict = (
                    self._simplex.assert_upper(branch_var, bound, None)
                    if is_upper
                    else self._simplex.assert_lower(branch_var, bound, None))
                if conflict is not None:
                    cores.append([t for t in conflict if t is not None])
                    continue
                result = self._search(depth + 1)
            finally:
                self._simplex.pop()
            if result.status == "sat":
                return result
            if result.status == "unknown":
                raise ResourceLimit("branch-and-bound budget exhausted",
                                    reason=result.reason or "bb-nodes")
            cores.append(result.conflict)
        merged = []
        seen = set()
        for core in cores:
            for tag in core:
                if tag not in seen:
                    seen.add(tag)
                    merged.append(tag)
        return IntResult("unsat", conflict=merged)


def solve_atoms(tagged_atoms, node_limit=200000, deadline=None):
    """Convenience wrapper: integer feasibility of ``[(LinExpr, tag), ...]``."""
    solver = IntegerSolver(node_limit=node_limit, deadline=deadline)
    conflicts = []
    for expr, tag in tagged_atoms:
        conflict = solver.assert_base(expr, tag)
        if conflict is not None:
            conflicts = conflict
            return IntResult("unsat", conflict=conflicts)
    return solver.solve()
