"""Incremental rational simplex for bound-form linear constraints.

The tableau follows Dutertre and de Moura's *A Fast Linear-Arithmetic Solver
for DPLL(T)*: every constraint ``sum c_i x_i <= k`` is turned into a slack
variable ``s = sum c_i x_i`` with the bound ``s <= k``.  Rows are defined
once, up front; bounds are asserted and retracted incrementally between
``check()`` calls.  Bland's rule guarantees termination of ``check``.

Each asserted bound carries an opaque *tag* (the SMT layer passes SAT
literals).  Infeasibility produces the set of tags whose bounds participate
in the conflict, which becomes a theory lemma.
"""

from fractions import Fraction

from repro import faults as _faults
from repro.errors import ResourceLimit, SolverError

SimplexResult = str    # "sat" | "unsat"


def _norm(value):
    """Collapse integral rationals to plain ints.

    The tableau is almost always integral — fractions only enter through
    pivots and usually cancel right back out — and Python's int
    arithmetic and comparisons are an order of magnitude faster than
    ``Fraction``'s, so keeping values as ints whenever exact pays for
    the check many times over.
    """
    if value.__class__ is Fraction and value.denominator == 1:
        return value.numerator
    return value


def _exact_div(num, den):
    """``num / den`` exactly: int when it divides, Fraction otherwise."""
    if isinstance(num, int) and isinstance(den, int):
        if num % den == 0:
            return num // den
        return Fraction(num, den)
    return _norm(num / den)


class _Bound:
    __slots__ = ("value", "tag")

    def __init__(self, value, tag):
        self.value = value
        self.tag = tag


class Simplex:
    """Feasibility of conjunctions of bounds over linear rows."""

    def __init__(self):
        self._order = {}        # var -> insertion index (Bland's rule)
        self._rows = {}         # basic var -> {nonbasic var: Fraction}
        self._cols = {}         # var -> set of basic vars whose row uses it
        self._value = {}        # var -> Fraction
        self._lower = {}        # var -> _Bound
        self._upper = {}        # var -> _Bound
        self._trail = []        # (var, "lo"/"up", old _Bound or None)
        self._marks = []
        self.conflict = None    # list of tags after an unsat check
        self.pivots = 0         # lifetime pivot count (repro.obs reads it)

    # -- setup ----------------------------------------------------------------

    def add_variable(self, var):
        if var in self._order:
            return
        self._order[var] = len(self._order)
        self._value[var] = 0
        self._cols.setdefault(var, set())

    def define(self, slack, coeffs):
        """Introduce ``slack = sum coeffs[x] * x`` as a basic variable."""
        if slack in self._order:
            raise SolverError("variable %r already exists" % (slack,))
        self.add_variable(slack)
        row = {}
        for x, c in coeffs.items():
            if c == 0:
                continue
            if x not in self._order:
                self.add_variable(x)
            if x in self._rows:
                # x is already basic: substitute its row.
                for y, cy in self._rows[x].items():
                    row[y] = row.get(y, 0) + c * cy
            else:
                row[x] = row.get(x, 0) + c
        row = {x: _norm(c) for x, c in row.items() if c != 0}
        self._rows[slack] = row
        for x in row:
            self._cols[x].add(slack)
        self._value[slack] = _norm(sum(
            c * self._value[x] for x, c in row.items()))

    # -- bound assertion ---------------------------------------------------------

    def push(self):
        self._marks.append(len(self._trail))

    def pop(self):
        mark = self._marks.pop()
        while len(self._trail) > mark:
            var, side, old = self._trail.pop()
            store = self._lower if side == "lo" else self._upper
            if old is None:
                del store[var]
            else:
                store[var] = old

    def assert_lower(self, var, value, tag):
        """Assert ``var >= value``; returns None or a conflict tag list."""
        if not isinstance(value, int):
            value = _norm(Fraction(value))
        low = self._lower.get(var)
        if low is not None and value <= low.value:
            return None
        up = self._upper.get(var)
        if up is not None and value > up.value:
            return [t for t in (tag, up.tag) if t is not None]
        self._trail.append((var, "lo", low))
        self._lower[var] = _Bound(value, tag)
        if var not in self._rows and self._value[var] < value:
            self._update(var, value)
        return None

    def assert_upper(self, var, value, tag):
        """Assert ``var <= value``; returns None or a conflict tag list."""
        if not isinstance(value, int):
            value = _norm(Fraction(value))
        up = self._upper.get(var)
        if up is not None and value >= up.value:
            return None
        low = self._lower.get(var)
        if low is not None and value < low.value:
            return [t for t in (tag, low.tag) if t is not None]
        self._trail.append((var, "up", up))
        self._upper[var] = _Bound(value, tag)
        if var not in self._rows and self._value[var] > value:
            self._update(var, value)
        return None

    # -- tableau operations ---------------------------------------------------

    def _update(self, nonbasic, value):
        delta = value - self._value[nonbasic]
        for basic in self._cols[nonbasic]:
            self._value[basic] = _norm(
                self._value[basic] + self._rows[basic][nonbasic] * delta)
        self._value[nonbasic] = value

    def _pivot_and_update(self, basic, nonbasic, value):
        a = self._rows[basic][nonbasic]
        theta = _exact_div(value - self._value[basic], a)
        self._value[basic] = value
        self._value[nonbasic] = _norm(self._value[nonbasic] + theta)
        for other in self._cols[nonbasic]:
            if other != basic:
                self._value[other] = _norm(
                    self._value[other]
                    + self._rows[other][nonbasic] * theta)
        self._pivot(basic, nonbasic)

    def _pivot(self, basic, nonbasic):
        if _faults.ARMED:
            _faults.point("lia.pivot")
        self.pivots += 1
        row = self._rows.pop(basic)
        a = row.pop(nonbasic)
        for x in row:
            self._cols[x].discard(basic)
        self._cols[nonbasic].discard(basic)
        # nonbasic = (basic - sum row)/a
        new_row = {basic: _exact_div(1, a)}
        for x, c in row.items():
            new_row[x] = _exact_div(-c, a)
        # Substitute into every other row that used `nonbasic`.
        for other in list(self._cols[nonbasic]):
            orow = self._rows[other]
            factor = orow.pop(nonbasic)
            self._cols[nonbasic].discard(other)
            for x, c in new_row.items():
                nc = _norm(orow.get(x, 0) + factor * c)
                if nc == 0:
                    if x in orow:
                        del orow[x]
                        self._cols[x].discard(other)
                else:
                    if x not in orow:
                        self._cols[x].add(other)
                    orow[x] = nc
        self._rows[nonbasic] = new_row
        for x in new_row:
            self._cols[x].add(nonbasic)

    # -- feasibility --------------------------------------------------------------

    def check(self, deadline=None):
        """Restore feasibility; "sat" or "unsat" (with ``self.conflict``)."""
        self.conflict = None
        steps = 0
        while True:
            steps += 1
            if deadline is not None and steps % 256 == 0 and deadline.expired():
                raise ResourceLimit("simplex deadline expired",
                                    reason="deadline")
            violated = None
            below = False
            for basic in sorted(self._rows, key=self._order.get):
                value = self._value[basic]
                low = self._lower.get(basic)
                if low is not None and value < low.value:
                    violated, below = basic, True
                    break
                up = self._upper.get(basic)
                if up is not None and value > up.value:
                    violated, below = basic, False
                    break
            if violated is None:
                return "sat"
            row = self._rows[violated]
            entering = None
            for x in sorted(row, key=self._order.get):
                c = row[x]
                if below:
                    ok = (c > 0 and self._at_upper_slack(x)) or \
                         (c < 0 and self._at_lower_slack(x))
                else:
                    ok = (c > 0 and self._at_lower_slack(x)) or \
                         (c < 0 and self._at_upper_slack(x))
                if ok:
                    entering = x
                    break
            if entering is None:
                self.conflict = self._explain(violated, below)
                return "unsat"
            target = (self._lower[violated].value if below
                      else self._upper[violated].value)
            self._pivot_and_update(violated, entering, target)

    def _at_upper_slack(self, var):
        """Can value of *var* still increase?"""
        up = self._upper.get(var)
        return up is None or self._value[var] < up.value

    def _at_lower_slack(self, var):
        """Can value of *var* still decrease?"""
        low = self._lower.get(var)
        return low is None or self._value[var] > low.value

    def _explain(self, basic, below):
        row = self._rows[basic]
        tags = []
        own = self._lower[basic] if below else self._upper[basic]
        if own.tag is not None:
            tags.append(own.tag)
        for x, c in row.items():
            if below:
                bound = self._upper.get(x) if c > 0 else self._lower.get(x)
            else:
                bound = self._lower.get(x) if c > 0 else self._upper.get(x)
            if bound is not None and bound.tag is not None:
                tags.append(bound.tag)
        return tags

    # -- results --------------------------------------------------------------------

    def values(self):
        """Current variable valuation (meaningful after a "sat" check)."""
        return dict(self._value)

    def value(self, var):
        return self._value[var]

    def bounds(self, var):
        low = self._lower.get(var)
        up = self._upper.get(var)
        return (None if low is None else low.value,
                None if up is None else up.value)
