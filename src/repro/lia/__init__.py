"""Linear integer arithmetic decision procedure.

A rational general simplex (Dutertre-de Moura style, exact ``Fraction``
arithmetic, incremental bound assertion with push/pop) plus a
branch-and-bound layer that decides integer feasibility of a conjunction of
linear atoms and extracts conflict explanations for the SMT core.
"""

from repro.lia.simplex import Simplex, SimplexResult
from repro.lia.branch_bound import IntegerSolver, IntResult

__all__ = ["Simplex", "SimplexResult", "IntegerSolver", "IntResult"]
