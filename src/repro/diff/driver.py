"""The differential driver: cross-check solvers on generated problems.

Every generated problem runs through three engines:

* ``pfa-inc`` — :class:`~repro.core.solver.TrauSolver` with the default
  (cross-round incremental) pipeline;
* ``pfa-oneshot`` — the same solver with incremental solving disabled,
  so the two configurations cross-check each other;
* ``enum`` — the :class:`~repro.baselines.enumerative.EnumerativeSolver`
  oracle, complete within the generator's bounded domain.

With ``backend="both"`` the PFA pair becomes ``pfa-pure`` / ``pfa-packed``
— the same incremental pipeline pinned to each kernel backend — so a
campaign cross-checks the packed kernels against the reference
implementations on every problem.  ``backend="pure"``/``"packed"`` pins
the standard pair instead.

Disagreement classes (most severe first):

* ``engine-error`` — an engine raised instead of answering;
* ``invalid-model`` — a SAT verdict whose model fails concrete
  re-evaluation (:func:`~repro.strings.eval.check_model`);
* ``refuted-certified-sat`` — an UNSAT verdict against a problem whose
  generation-time witness is a machine-checked SAT certificate;
* ``sat-unsat-split`` — definite verdicts disagree between engines
  (``oracle-refuted-unsat`` when the enumerative oracle has a validated
  model against a PFA-solver UNSAT);
* ``metamorphic:<transform>`` — the solver's definite verdict flips
  under a satisfiability-preserving transform.

UNKNOWN answers never count as disagreements — they are tallied so a
campaign's coverage is visible.
"""

import random
import time
from dataclasses import replace

from repro.baselines.enumerative import EnumerativeSolver
from repro.config import DEFAULT_CONFIG
from repro.core.solver import TrauSolver
from repro.diff.generator import GenConfig, generate
from repro.diff.shrink import save_reproducer, shrink_problem
from repro.diff.transforms import TRANSFORMS, apply_transform
from repro.obs import current_metrics, current_tracer
from repro.strings.eval import check_model


class Disagreement:
    """One confirmed divergence, with enough context to reproduce it."""

    __slots__ = ("kind", "engine", "detail", "index", "problem", "transform")

    def __init__(self, kind, engine, detail, index, problem, transform=None):
        self.kind = kind
        self.engine = engine
        self.detail = detail
        self.index = index
        self.problem = problem
        self.transform = transform

    def describe(self):
        where = "problem %s" % self.index
        if self.transform:
            where += " (transform %s)" % self.transform
        return "%s [%s] %s: %s" % (self.kind, self.engine, where,
                                   self.detail)

    def __repr__(self):
        return "Disagreement(%s)" % self.describe()


class CampaignReport:
    """Aggregated outcome of a fuzzing campaign."""

    def __init__(self, seed, n):
        self.seed = seed
        self.n = n
        self.statuses = {}          # engine -> {status: count}
        self.certified = 0
        self.metamorphic_checks = 0
        self.disagreements = []
        self.saved_paths = []
        self.seconds = 0.0

    def record_status(self, engine, status):
        table = self.statuses.setdefault(engine, {})
        table[status] = table.get(status, 0) + 1

    @property
    def ok(self):
        return not self.disagreements

    def summary_lines(self):
        lines = ["fuzz: %d problems (seed %d), %d certified-sat, "
                 "%d metamorphic checks, %.1fs"
                 % (self.n, self.seed, self.certified,
                    self.metamorphic_checks, self.seconds)]
        for engine in sorted(self.statuses):
            counts = self.statuses[engine]
            lines.append("  %-12s %s" % (engine, " ".join(
                "%s=%d" % (s, counts[s]) for s in sorted(counts))))
        if self.disagreements:
            lines.append("  DISAGREEMENTS: %d" % len(self.disagreements))
            for d in self.disagreements:
                lines.append("    " + d.describe())
            for path in self.saved_paths:
                lines.append("    reproducer: %s" % path)
        else:
            lines.append("  no disagreements")
        return lines


class DifferentialDriver:
    """Runs problems through all engines and classifies divergences."""

    def __init__(self, config=None, timeout=5.0, oracle_timeout=None,
                 metamorphic=True, transforms_per_problem=2,
                 validate_solver=True, backend=None):
        self.config = config or GenConfig()
        self.timeout = timeout
        self.oracle_timeout = oracle_timeout or timeout
        self.metamorphic = metamorphic
        self.transforms_per_problem = transforms_per_problem
        # validate=False lets the driver (not the solver's own quarantine)
        # catch invalid models, which is the point of the exercise; the
        # default keeps production behaviour.
        oracle = EnumerativeSolver(max_total_length=self.config.max_len + 2)
        if backend == "both":
            # The kernel-backend cross-check: the same incremental pipeline
            # on the pure and the packed kernels, plus the oracle.  Any
            # packed-kernel bug shows up as a sat-unsat split or an
            # invalid model between the pair.
            self.engines = {
                "pfa-pure": TrauSolver(
                    config=replace(DEFAULT_CONFIG, backend="pure"),
                    validate=validate_solver),
                "pfa-packed": TrauSolver(
                    config=replace(DEFAULT_CONFIG, backend="packed"),
                    validate=validate_solver),
                "enum": oracle,
            }
            self._primary = "pfa-packed"
        else:
            base = DEFAULT_CONFIG
            if backend:
                base = replace(base, backend=backend)
            self.engines = {
                "pfa-inc": TrauSolver(config=base,
                                      validate=validate_solver),
                "pfa-oneshot": TrauSolver(
                    config=replace(base, use_incremental=False),
                    validate=validate_solver),
                "enum": oracle,
            }
            self._primary = "pfa-inc"

    # -- engine execution -----------------------------------------------------

    def _solve(self, engine, problem):
        solver = self.engines[engine]
        timeout = self.oracle_timeout if engine == "enum" else self.timeout
        try:
            return solver.solve(problem, timeout=timeout)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            from repro.core.solver import SolveResult
            return SolveResult("error",
                               stats={"error": "%s: %s"
                                      % (type(exc).__name__, exc)})

    # -- classification --------------------------------------------------------

    def check_problem(self, generated, rng=None, report=None):
        """All disagreements for one generated problem."""
        rng = rng or random.Random(0)
        metrics = current_metrics()
        problem = generated.problem
        index = generated.seed_index
        found = []

        results = {}
        for engine in self.engines:
            results[engine] = self._solve(engine, problem)
            status = results[engine].status
            if report is not None:
                report.record_status(engine, status)
            if metrics.enabled:
                metrics.add("fuzz.status.%s.%s" % (engine, status))

        for engine, result in results.items():
            if result.status == "error":
                found.append(Disagreement(
                    "engine-error", engine, result.stats.get("error", "?"),
                    index, problem))
            elif result.status == "sat" \
                    and not check_model(problem, result.model):
                found.append(Disagreement(
                    "invalid-model", engine,
                    "model %r fails concrete validation" % (result.model,),
                    index, problem))

        valid_sat = {e for e, r in results.items() if r.status == "sat"
                     and check_model(problem, r.model)}
        unsat = {e for e, r in results.items() if r.status == "unsat"}

        if generated.certified:
            if not check_model(problem, generated.witness):
                # A generator bug, not a solver bug — but it must fail
                # the campaign loudly rather than poison the corpus.
                found.append(Disagreement(
                    "broken-certificate", "generator",
                    "witness %r does not satisfy its own problem"
                    % (generated.witness,), index, problem))
            else:
                for engine in sorted(unsat):
                    found.append(Disagreement(
                        "refuted-certified-sat", engine,
                        "unsat against witness %r" % (generated.witness,),
                        index, problem))

        if valid_sat and unsat:
            kind = "oracle-refuted-unsat" if "enum" in valid_sat \
                else "sat-unsat-split"
            found.append(Disagreement(
                kind, ",".join(sorted(unsat)),
                "sat(%s) vs unsat(%s)" % (",".join(sorted(valid_sat)),
                                          ",".join(sorted(unsat))),
                index, problem))

        if self.metamorphic:
            found.extend(self._check_metamorphic(
                generated, results[self._primary].status, rng, report))

        if metrics.enabled:
            metrics.add("fuzz.problems")
            if found:
                metrics.add("fuzz.disagreements", len(found))
        return found

    def _check_metamorphic(self, generated, base_status, rng, report):
        problem = generated.problem
        metrics = current_metrics()
        found = []
        names = rng.sample(sorted(TRANSFORMS),
                           min(self.transforms_per_problem, len(TRANSFORMS)))
        for name in names:
            token = rng.randint(0, 10 ** 6)
            transformed = apply_transform(name, problem,
                                          random.Random(token))
            if transformed is None:
                continue
            if report is not None:
                report.metamorphic_checks += 1
            if metrics.enabled:
                metrics.add("fuzz.metamorphic.checks")
            result = self._solve(self._primary, transformed)
            if report is not None:
                report.record_status(self._primary + ":meta", result.status)
            detail = None
            if result.status == "sat" \
                    and not check_model(transformed, result.model):
                detail = "transformed model fails validation"
            elif {base_status, result.status} == {"sat", "unsat"}:
                detail = "verdict flip: %s -> %s" % (base_status,
                                                     result.status)
            if detail:
                if metrics.enabled:
                    metrics.add("fuzz.metamorphic.violations")
                found.append(Disagreement(
                    "metamorphic:%s" % name, self._primary,
                    "%s (token %d)" % (detail, token),
                    generated.seed_index, problem, transform=name))
        return found

    # -- shrinking --------------------------------------------------------------

    def shrink_disagreement(self, disagreement, max_checks=200):
        """Minimize the problem while the same class still reproduces."""
        kind = disagreement.kind

        def predicate(candidate):
            from repro.diff.generator import GeneratedProblem
            probe = GeneratedProblem(candidate, {}, False,
                                     disagreement.index)
            if disagreement.transform:
                # Re-check only the offending transform, with the same
                # derivation token, so the predicate is deterministic.
                token = int(disagreement.detail.rsplit("token ", 1)[-1]
                            .rstrip(")"))
                base = self._solve(self._primary, candidate).status
                transformed = apply_transform(disagreement.transform,
                                              candidate,
                                              random.Random(token))
                if transformed is None:
                    return False
                result = self._solve(self._primary, transformed)
                if result.status == "sat" \
                        and not check_model(transformed, result.model):
                    return True
                return {base, result.status} == {"sat", "unsat"}
            probes = self.check_problem(probe, rng=random.Random(0))
            return any(d.kind == kind for d in probes)

        with current_tracer().span("fuzz.shrink", kind=kind):
            shrunk, checks = shrink_problem(disagreement.problem, predicate,
                                            max_checks=max_checks)
        return shrunk, checks

    def ground_truth(self, problem):
        """Best-effort expected status of a (shrunk) problem."""
        oracle = self._solve("enum", problem)
        if oracle.status == "sat" and check_model(problem, oracle.model):
            return "sat"
        if oracle.status == "unsat":
            return "unsat"
        for engine in self.engines:
            if engine == "enum":
                continue
            result = self._solve(engine, problem)
            if result.status == "sat" and check_model(problem, result.model):
                return "sat"
        return None


def run_campaign(seed=0, n=100, config=None, driver=None, save_dir=None,
                 shrink=True, progress=None):
    """Run *n* generated problems; returns a :class:`CampaignReport`.

    *save_dir* (when set) receives a shrunk ``.smt2`` reproducer per
    disagreement; *progress* is an optional callable fed one line per
    disagreement as it is found.
    """
    config = config or GenConfig()
    driver = driver or DifferentialDriver(config=config)
    report = CampaignReport(seed, n)
    started = time.monotonic()
    tracer = current_tracer()
    metrics = current_metrics()
    with tracer.span("fuzz.campaign", seed=seed, n=n):
        for index in range(n):
            rng = random.Random("%d:%d" % (seed, index))
            problem_started = time.monotonic()
            generated = generate(rng, config, seed_index=index)
            report.certified += 1 if generated.certified else 0
            found = driver.check_problem(generated, rng=rng, report=report)
            metrics.observe("fuzz.problem_s",
                            time.monotonic() - problem_started)
            if not found:
                continue
            report.disagreements.extend(found)
            for offset, disagreement in enumerate(found):
                if progress is not None:
                    progress(disagreement.describe())
                if not save_dir:
                    continue
                if shrink:
                    shrunk, _ = driver.shrink_disagreement(disagreement)
                else:
                    shrunk = disagreement.problem
                expected = driver.ground_truth(shrunk)
                name = "fuzz_seed%d_p%d_%d_%s" % (
                    seed, index, offset,
                    disagreement.kind.replace(":", "_").replace("-", "_"))
                path = save_reproducer(
                    shrunk, save_dir, name, expected=expected,
                    header=["repro.diff reproducer (campaign seed=%d, "
                            "problem %d)" % (seed, index),
                            disagreement.describe()])
                report.saved_paths.append(path)
    report.seconds = time.monotonic() - started
    if n:
        metrics.gauge("fuzz.disagreement_rate",
                      len(report.disagreements) / n)
    return report
