"""Greedy minimization of disagreement witnesses.

A disagreement found by the differential driver is only useful once it
is small: the shrinker repeatedly tries structural reductions — dropping
a conjunct, shortening a string literal inside a word equation — and
keeps any reduction under which the caller's *predicate* (usually "the
same class of disagreement still reproduces") holds.  Reductions that
make the problem unsupported or crash a solver simply fail the
predicate and are skipped.

The final reproducer is serialized as a self-contained ``.smt2`` file
(with a provenance comment header) that the regression test under
``tests/regressions/`` auto-collects.
"""

import os

from repro.obs import current_metrics
from repro.strings.ast import StringProblem, StrVar, WordEquation


def _without(constraints, index):
    return constraints[:index] + constraints[index + 1:]


def _shorten_literal(constraint, side, element, position):
    """*constraint* with one character removed from one literal."""
    term = list(getattr(constraint, side))
    text = term[element]
    term[element] = text[:position] + text[position + 1:]
    lhs = term if side == "lhs" else constraint.lhs
    rhs = term if side == "rhs" else constraint.rhs
    return WordEquation(tuple(lhs), tuple(rhs))


def _literal_reductions(problem):
    """Candidate (index, reduced-equation) pairs shortening one literal."""
    out = []
    for index, constraint in enumerate(problem.constraints):
        if not isinstance(constraint, WordEquation):
            continue
        for side in ("lhs", "rhs"):
            term = getattr(constraint, side)
            for element, part in enumerate(term):
                if isinstance(part, StrVar) or not part:
                    continue
                # Dropping the first or last character is enough for a
                # greedy pass; interior positions rarely matter and
                # would square the candidate count.
                positions = {0, len(part) - 1}
                for position in positions:
                    out.append((index,
                                _shorten_literal(constraint, side,
                                                 element, position)))
    return out


def shrink_problem(problem, predicate, max_checks=300):
    """Greedily minimize *problem* while *predicate* keeps holding.

    *predicate* takes a :class:`StringProblem` and returns truthiness;
    exceptions inside it count as False.  Returns the smallest problem
    found and the number of predicate evaluations spent.
    """
    metrics = current_metrics()

    def check(candidate):
        try:
            return bool(predicate(candidate))
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            return False

    current = problem
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        # Pass 1: drop whole conjuncts, scanning from the end so the
        # positions of not-yet-tried constraints stay stable.
        index = len(current.constraints) - 1
        while index >= 0 and checks < max_checks:
            candidate = StringProblem(_without(current.constraints, index))
            checks += 1
            if check(candidate):
                current = candidate
                progress = True
            index -= 1
        # Pass 2: shorten literals one character at a time.
        for index, reduced in _literal_reductions(current):
            if checks >= max_checks:
                break
            constraints = list(current.constraints)
            constraints[index] = reduced
            candidate = StringProblem(constraints)
            checks += 1
            if check(candidate):
                current = candidate
                progress = True
    if metrics.enabled:
        metrics.add("fuzz.shrink.checks", checks)
    return current, checks


def save_reproducer(problem, directory, name, expected=None, header=()):
    """Write *problem* under *directory* as ``<name>.smt2``; returns path.

    Falls back to a ``.txt`` repr dump when the problem contains
    something the printer cannot render (so no reproducer is ever
    silently lost).
    """
    from repro.errors import ReproError
    from repro.smtlib import problem_to_smtlib

    os.makedirs(directory, exist_ok=True)
    comment = "".join("; %s\n" % line for line in header)
    try:
        body = problem_to_smtlib(problem, expected=expected)
        path = os.path.join(directory, name + ".smt2")
    except ReproError as exc:
        body = "unprintable problem (%s):\n%r\n" % (exc, problem)
        path = os.path.join(directory, name + ".txt")
    with open(path, "w") as handle:
        handle.write(comment + body)
    return path
