"""Satisfiability-preserving metamorphic transforms.

Each transform maps a :class:`~repro.strings.ast.StringProblem` to an
*equisatisfiable* problem (or returns ``None`` when it does not apply),
in the spirit of metamorphic SMT-solver testing (STORM, yinyang): a
sound solver must give verdicts that are stable under them.

* ``rename`` — consistent fresh renaming of every string and integer
  variable (including the reserved ``|x|`` length variables inside
  linear formulas).
* ``roundtrip`` — SMT-LIB print→parse round trip through
  :mod:`repro.smtlib`; exercises the printer/parser/converter stack.
* ``pad_tonum`` — for some ``n = toNum(x)``, add ``y = "0"·x``,
  ``m = toNum(y)`` and the *implied* NaN-semantics relations
  (``n >= 0 → m = n``; ``n = -1 ∧ |x| >= 1 → m = -1``; ``|x| = 0 →
  m = 0``).  All added constraints are tautologies of the toNum
  semantics over fresh variables, so satisfiability is preserved while
  the leading-zero/NaN corners of the Ψ encoding get cross-checked.
* ``shuffle`` — random permutation of the conjuncts.
* ``split_eq`` — replace one word equation ``t1 = t2`` by
  ``f = t1 ∧ f = t2`` for a fresh variable ``f``.
"""

from repro.logic.formula import (
    And, Atom, BoolConst, Not, Or, conj, eq, ge, implies, le,
)
from repro.logic.terms import LinExpr, var as int_var
from repro.strings.ast import (
    CharCode, CharNeq, Disjunction, IntConstraint, RegularConstraint,
    StringProblem, StrVar, ToNum, WordEquation, length_var, str_len,
)


# -- variable renaming -------------------------------------------------------


def _rename_expr(expr, mapping):
    return LinExpr({mapping.get(name, name): coeff
                    for name, coeff in expr.coeffs.items()}, expr.constant)


def _rename_formula(formula, mapping):
    if isinstance(formula, BoolConst):
        return formula
    if isinstance(formula, Atom):
        return Atom(_rename_expr(formula.expr, mapping))
    if isinstance(formula, Not):
        return Not(_rename_formula(formula.arg, mapping))
    if isinstance(formula, And):
        return And([_rename_formula(a, mapping) for a in formula.args])
    if isinstance(formula, Or):
        return Or([_rename_formula(a, mapping) for a in formula.args])
    raise TypeError("cannot rename %r" % (formula,))


def _rename_term(term, str_map):
    return tuple(StrVar(str_map.get(e.name, e.name))
                 if isinstance(e, StrVar) else e for e in term)


def _rename_constraint(c, str_map, int_map, formula_map):
    if isinstance(c, WordEquation):
        return WordEquation(_rename_term(c.lhs, str_map),
                            _rename_term(c.rhs, str_map))
    if isinstance(c, RegularConstraint):
        return RegularConstraint(StrVar(str_map[c.var.name]), c.nfa,
                                 c.source)
    if isinstance(c, IntConstraint):
        return IntConstraint(_rename_formula(c.formula, formula_map))
    if isinstance(c, ToNum):
        return ToNum(int_map[c.result], StrVar(str_map[c.var.name]),
                     c.semantics)
    if isinstance(c, CharNeq):
        return CharNeq(StrVar(str_map[c.left.name]),
                       StrVar(str_map[c.right.name]))
    if isinstance(c, CharCode):
        return CharCode(int_map[c.result], StrVar(str_map[c.var.name]))
    if isinstance(c, Disjunction):
        branches = []
        for branch in c.branches:
            renamed = [_rename_constraint(b, str_map, int_map, formula_map)
                       for b in branch]
            if any(b is None for b in renamed):
                return None
            branches.append(renamed)
        return Disjunction(branches)
    return None


def rename(problem, rng):
    """Consistently rename every variable with a fresh prefix."""
    prefix = "rn%d_" % rng.randint(0, 999)
    str_map = {v.name: prefix + v.name for v in problem.string_vars()}
    int_map = {name: prefix + name for name in problem.int_vars()}
    formula_map = dict(int_map)
    for old, new in str_map.items():
        formula_map[length_var(old)] = length_var(new)
    out = StringProblem()
    for c in problem:
        renamed = _rename_constraint(c, str_map, int_map, formula_map)
        if renamed is None:
            return None
        out.add(renamed)
    return out


# -- SMT-LIB round trip ------------------------------------------------------


def roundtrip(problem, rng):
    from repro.errors import ReproError
    from repro.smtlib import load_problem, problem_to_smtlib
    try:
        text = problem_to_smtlib(problem)
        return load_problem(text).problem
    except ReproError:
        return None


# -- toNum leading-zero padding ----------------------------------------------


def pad_tonum(problem, rng):
    # The implied relations below are tautologies of the *base* NaN
    # semantics only: a real-parser variant may read the padded "0"
    # differently (strtol(" 5") vs strtol("0 5")), so those are skipped.
    conversions = [c for c in problem.by_kind(ToNum) if c.semantics is None]
    if not conversions:
        return None
    target = rng.choice(conversions)
    x, n = target.var, int_var(target.result)
    suffix = "%s_%d" % (x.name, rng.randint(0, 999))
    y = StrVar("_pad" + suffix)
    m_name = "_padnum" + suffix
    m = int_var(m_name)
    out = StringProblem(list(problem.constraints))
    out.add(WordEquation((y,), ("0", x)))
    out.add(ToNum(m_name, y))
    out.add(IntConstraint(conj(
        implies(ge(n, 0), eq(m, n)),
        implies(conj(le(n, -1), ge(str_len(x), 1)), eq(m, -1)),
        implies(eq(str_len(x), 0), eq(m, 0)))))
    return out


# -- structural shuffles -----------------------------------------------------


def shuffle(problem, rng):
    constraints = list(problem.constraints)
    rng.shuffle(constraints)
    return StringProblem(constraints)


def split_eq(problem, rng):
    equations = [i for i, c in enumerate(problem.constraints)
                 if isinstance(c, WordEquation)]
    if not equations:
        return None
    index = rng.choice(equations)
    target = problem.constraints[index]
    fresh = StrVar("_split%d" % rng.randint(0, 999))
    constraints = list(problem.constraints)
    constraints[index:index + 1] = [WordEquation((fresh,), target.lhs),
                                    WordEquation((fresh,), target.rhs)]
    return StringProblem(constraints)


TRANSFORMS = {
    "rename": rename,
    "roundtrip": roundtrip,
    "pad_tonum": pad_tonum,
    "shuffle": shuffle,
    "split_eq": split_eq,
}


def apply_transform(name, problem, rng):
    """Apply transform *name*; ``None`` when it does not apply."""
    return TRANSFORMS[name](problem, rng)
