"""repro.diff — differential & metamorphic correctness harness.

The validation story of the paper (Section 9) is a model checker plus
cross-solver comparison; this package is the systematic version of it:

* :mod:`repro.diff.generator` — a seeded random generator of well-typed
  string problems (word equations, regular constraints, length/LIA
  arithmetic, ``toNum``/``toStr`` atoms) with tunable size and alphabet
  knobs.  Problems are built *witness-first*, so an unmutated problem
  carries a certified satisfying assignment.
* :mod:`repro.diff.transforms` — satisfiability-preserving metamorphic
  transforms (variable renaming, SMT-LIB print→parse round trip,
  leading-zero padding under the toNum NaN semantics, conjunct
  shuffling, fresh-variable equation splitting).
* :mod:`repro.diff.driver` — the differential driver: every problem runs
  through the PFA solver (incremental and one-shot pipelines) and the
  enumerative oracle; verdicts are cross-checked, SAT models re-validated
  concretely, and metamorphic verdict stability enforced.
* :mod:`repro.diff.shrink` — a greedy shrinker that minimizes any
  disagreement to a small reproducer and serializes it as an ``.smt2``
  file under ``tests/regressions/`` (auto-collected by the regression
  test).
* :mod:`repro.diff.strategies` — a hypothesis strategy wrapping the
  generator so property tests and the fuzzer share one problem-space
  definition.

Entry point: ``python -m repro fuzz --seed 0 --n 500`` (see ``repro.cli``).
"""

from repro.diff.generator import GenConfig, GeneratedProblem, generate
from repro.diff.driver import (
    CampaignReport, Disagreement, DifferentialDriver, run_campaign,
)
from repro.diff.shrink import save_reproducer, shrink_problem
from repro.diff.transforms import TRANSFORMS, apply_transform

__all__ = [
    "GenConfig", "GeneratedProblem", "generate",
    "DifferentialDriver", "Disagreement", "CampaignReport", "run_campaign",
    "shrink_problem", "save_reproducer",
    "TRANSFORMS", "apply_transform",
]
