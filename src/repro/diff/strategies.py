"""Hypothesis strategies over the differential generator.

Property tests and the fuzzer share one problem-space definition: the
strategy draws a seed and feeds it to :func:`repro.diff.generator.generate`,
so anything hypothesis finds is reproducible as ``repro fuzz --seed``
input and vice versa.  Import is lazy-safe: this module only needs
``hypothesis`` when a strategy is actually built, so the library itself
never grows the dependency.
"""

import random


def generated_problems(config=None, certified_only=False, **knobs):
    """Strategy producing :class:`~repro.diff.generator.GeneratedProblem`.

    *config* (or individual :class:`~repro.diff.generator.GenConfig`
    field overrides passed as keyword arguments) tunes the problem
    space; ``certified_only=True`` filters to witness-certified SAT
    problems.
    """
    from hypothesis import strategies as st

    from repro.diff.generator import GenConfig, generate

    base = config or GenConfig(**knobs)

    def build(seed):
        return generate(random.Random(seed), base, seed_index=seed)

    strategy = st.integers(min_value=0, max_value=2 ** 32 - 1).map(build)
    if certified_only:
        strategy = strategy.filter(lambda g: g.certified)
    return strategy
