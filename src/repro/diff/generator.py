"""Seeded random generator of string-number constraint problems.

Problems are constructed *witness-first*: a concrete assignment of small
strings to variables is drawn, and every emitted constraint is true of
that witness — so an unmutated problem is SAT *by construction* and the
witness certifies it.  With probability :attr:`GenConfig.lie_rate` an
emitter instead produces a perturbed ("lying") constraint that may or
may not hold of the witness; such problems lose the certificate and
their ground truth comes from the enumerative oracle, which keeps both
SAT and UNSAT verdicts exercised.

Everything is driven by one ``random.Random`` instance so a campaign is
reproducible from ``--seed`` alone.  The same generator backs the
hypothesis strategy in :mod:`repro.diff.strategies`, so property tests
and the fuzzer share a single problem-space definition.
"""

from dataclasses import dataclass

from repro.logic.formula import eq, ge, le, ne
from repro.logic.terms import var as int_var
from repro.strings.ast import str_len
from repro.strings.eval import to_num_value
from repro.strings.numsem import standard_semantics
from repro.strings.ops import ProblemBuilder


@dataclass(frozen=True)
class GenConfig:
    """Size and shape knobs of the generator."""

    max_string_vars: int = 3      # seed string variables (more appear fresh)
    max_len: int = 4              # witness length cap per variable
    alphabet_chars: str = "ab01"  # characters witnesses draw from
    max_constraints: int = 6      # emitted constraints (before caps)
    lie_rate: float = 0.3         # probability an emitter perturbs its output
    bound_lengths: bool = True    # cap every variable's length (keeps the
    #                               enumerative oracle's search exhaustive)

    def digits(self):
        """The digit characters available to witnesses."""
        return [c for c in self.alphabet_chars if c.isdigit()] or ["0"]


class GeneratedProblem:
    """A generated problem plus its provenance.

    ``witness`` maps every variable name (string and integer) to its
    generation-time value; ``certified`` is True when no emitter lied,
    in which case the witness is a machine-checkable SAT certificate.
    """

    __slots__ = ("problem", "witness", "certified", "seed_index")

    def __init__(self, problem, witness, certified, seed_index=None):
        self.problem = problem
        self.witness = witness
        self.certified = certified
        self.seed_index = seed_index

    def __repr__(self):
        return "GeneratedProblem(%d constraints, %s)" % (
            len(self.problem),
            "certified-sat" if self.certified else "uncertified")


class _Gen:
    """One generation run: owns the builder, witness, and lie accounting."""

    def __init__(self, rng, config):
        self.rng = rng
        self.config = config
        self.builder = ProblemBuilder()
        self.witness = {}
        self.lied = False

    # -- witness bookkeeping -------------------------------------------------

    def _word(self, chars=None, min_size=0):
        rng = self.rng
        chars = chars or self.config.alphabet_chars
        size = rng.randint(min_size, self.config.max_len)
        return "".join(rng.choice(chars) for _ in range(size))

    def _new_var(self, value=None, prefix="w"):
        name = "%s%d" % (prefix, len(self.witness))
        self.witness[name] = self._word() if value is None else value
        return self.builder.str_var(name)

    def _pick_var(self):
        names = [n for n, v in self.witness.items() if isinstance(v, str)]
        name = self.rng.choice(names)
        return self.builder.str_var(name), self.witness[name]

    def _lie(self):
        """Decide whether this emitter perturbs its constraint."""
        if self.rng.random() < self.config.lie_rate:
            self.lied = True
            return True
        return False

    def _offset(self):
        """A small non-zero perturbation."""
        return self.rng.choice([-2, -1, 1, 2])

    # -- constraint emitters -------------------------------------------------
    # Each emits constraints true of the witness, unless it decides to lie.

    def emit_length(self):
        v, w = self._pick_var()
        op = self.rng.choice([eq, le, ge])
        if self._lie():
            delta = abs(self._offset())
            if op is le:
                target = len(w) - delta      # may exclude the witness
            elif op is ge:
                target = len(w) + delta
            else:
                target = len(w) + self._offset()
        elif op is le:
            target = len(w) + self.rng.randint(0, 2)
        elif op is ge:
            target = max(0, len(w) - self.rng.randint(0, 2))
        else:
            target = len(w)
        self.builder.require_int(op(str_len(v), target))

    def emit_length_lia(self):
        x, wx = self._pick_var()
        y, wy = self._pick_var()
        combo = str_len(x) + str_len(y) if self.rng.random() < 0.5 \
            else str_len(x) - str_len(y)
        value = combo.evaluate({"|%s|" % x.name: len(wx),
                                "|%s|" % y.name: len(wy)})
        if self._lie():
            value += self._offset()
        if self.rng.random() < 0.4:
            k = self.builder.fresh_int("k")
            self.builder.require_int(eq(int_var(k), combo))
            self.builder.require_int(eq(int_var(k), value))
            self.witness[k] = value
        else:
            self.builder.require_int(eq(combo, value))

    def emit_word_eq_split(self):
        """x = p1 · p2 (· p3) where pieces are literals or fresh vars."""
        v, w = self._pick_var()
        cuts = sorted(self.rng.sample(
            range(len(w) + 1), self.rng.randint(1, min(2, len(w) + 1))))
        pieces, prev = [], 0
        for cut in cuts + [len(w)]:
            pieces.append(w[prev:cut])
            prev = cut
        term = []
        for piece in pieces:
            if self.rng.random() < 0.5:
                term.append(self._new_var(piece, prefix="p"))
            elif piece:
                term.append(piece)
        if self._lie():
            term.append(self.rng.choice(self.config.alphabet_chars))
        self.builder.equal((v,), tuple(term))

    def emit_word_eq_concat(self):
        """Fresh z = x · lit · y for existing x, y."""
        x, wx = self._pick_var()
        y, wy = self._pick_var()
        lit = self._word(min_size=0)
        z_value = wx + lit + wy
        if self._lie():
            lit = lit + self.rng.choice(self.config.alphabet_chars)
        z = self._new_var(z_value, prefix="z")
        term = (x, lit, y) if lit else (x, y)
        self.builder.equal((z,), term)

    def emit_membership(self):
        v, w = self._pick_var()
        chars = self.config.alphabet_chars
        # The picked witness may come from a numeric emitter and contain
        # digits, signs or whitespace outside alphabet_chars; a truthful
        # character class must cover them or the certificate is a lie.
        cover = _regex_class(set(chars) | set(w))
        kind = self.rng.choice(["exact", "star", "bounded", "prefix",
                                "digits"])
        if kind == "exact":
            regex = _regex_literal(w + self.rng.choice(chars)) \
                if self._lie() else _regex_literal(w)
        elif kind == "star":
            if w and self._lie():
                regex = "%s{0,%d}" % (_regex_class(w[0]),
                                      max(0, len(w) - 1))
            else:
                regex = cover + "*"
        elif kind == "bounded":
            if w and self._lie():
                hi = len(w) - 1
            else:
                hi = len(w) + self.rng.randint(0, 1)
            regex = "%s{0,%d}" % (cover, hi)
        elif kind == "prefix":
            prefix = w[: self.rng.randint(0, len(w))]
            if self._lie():
                prefix = prefix + self.rng.choice(chars)
            regex = _regex_literal(prefix) + ".*"
        else:  # digits
            if w and all(c.isdigit() for c in w):
                regex = "[%s]{1,%d}" % (w[0], max(1, len(w) - 1)) \
                    if self._lie() else "[0-9]+"
            elif self._lie():
                regex = "[0-9]+"      # w is empty or has a non-digit
            else:
                regex = cover + "*"
        self.builder.member(v, regex)

    def emit_not_membership(self):
        v, w = self._pick_var()
        other = self._word()
        if other == w:
            other = w + self.rng.choice(self.config.alphabet_chars)
        if self._lie():
            other = w
        self.builder.not_member(v, _regex_literal(other) if other else "()")

    def emit_tonum(self):
        use_digits = self.rng.random() < 0.7
        if use_digits:
            digits = self.config.digits()
            length = self.rng.randint(1, self.config.max_len)
            if self.rng.random() < 0.25:
                # Cross the numeric-PFA chain boundary (m = 5 initially):
                # long digit strings exercise the leading-zero loop.
                length = self.config.max_len + self.rng.randint(1, 2)
            w = "".join(self.rng.choice(digits) for _ in range(length))
            v = self._new_var(w, prefix="d")
            if self.rng.random() < 0.5:
                self.builder.member(v, "[0-9]+")
        else:
            v, w = self._pick_var()
        n = self.builder.to_num(v)
        value = to_num_value(w)
        self.witness[n] = value
        shape = self.rng.choice(["eq", "ineq", "ne", "free"])
        if shape == "eq":
            target = value + (self._offset() if self._lie() else 0)
            self.builder.require_int(eq(int_var(n), target))
        elif shape == "ineq":
            if self._lie():
                self.builder.require_int(ge(int_var(n), value + 1))
            elif self.rng.random() < 0.5:
                self.builder.require_int(le(int_var(n), value))
            else:
                self.builder.require_int(ge(int_var(n), value))
        elif shape == "ne":
            target = value if self._lie() else value + self._offset()
            self.builder.require_int(ne(int_var(n), target))
        # "free": n is only pinned through the conversion itself.

    def emit_tostr(self):
        digits = self.config.digits()
        value = int("".join(self.rng.choice(digits) for _ in range(
            self.rng.randint(1, self.config.max_len))))
        k = self.builder.fresh_int("m")
        self.builder.require_int(eq(int_var(k), value))
        s = self.builder.to_str(k)
        self.witness[k] = value
        self.witness[s.name] = str(value)
        if self._lie():
            # Contradicts the canonical-numeral length unless it happens
            # to still fit; the oracle adjudicates.
            self.builder.require_int(
                eq(str_len(s), len(str(value)) + self._offset()))

    def emit_diseq(self):
        v, w = self._pick_var()
        other = self._word()
        if other == w:
            other = w + self.rng.choice(self.config.alphabet_chars)
        if self._lie():
            other = w
        p, c1, c2, s1, s2 = self.builder.diseq((v,), (other,))
        # Witness the encoding's fresh variables: longest common prefix,
        # then the (possibly empty) differing characters and tails.
        i = 0
        while i < len(w) and i < len(other) and w[i] == other[i]:
            i += 1
        self.witness[p.name] = w[:i]
        self.witness[c1.name] = w[i:i + 1]
        self.witness[s1.name] = w[i + 1:]
        self.witness[c2.name] = other[i:i + 1]
        self.witness[s2.name] = other[i + 1:]

    def _int_shape(self, name, value):
        """Constrain integer *name* (witness *value*) like emit_tonum."""
        shape = self.rng.choice(["eq", "ineq", "ne", "free"])
        if shape == "eq":
            target = value + (self._offset() if self._lie() else 0)
            self.builder.require_int(eq(int_var(name), target))
        elif shape == "ineq":
            if self._lie():
                self.builder.require_int(ge(int_var(name), value + 1))
            elif self.rng.random() < 0.5:
                self.builder.require_int(le(int_var(name), value))
            else:
                self.builder.require_int(ge(int_var(name), value))
        elif shape == "ne":
            target = value if self._lie() else value + self._offset()
            self.builder.require_int(ne(int_var(name), target))

    def emit_tonum_sem(self):
        """n = toNum[sem](x) for a rotating real-parser semantics."""
        rng = self.rng
        sem = rng.choice(self._SEMANTICS)
        digits = sem.digit_chars()
        w = "".join(rng.choice(digits)
                    for _ in range(rng.randint(1, self.config.max_len)))
        if sem.exponent and rng.random() < 0.4:
            w += rng.choice("eE") + rng.choice("0123456789")
        if sem.sign and rng.random() < 0.4:
            w = rng.choice("+-") + w
        if sem.whitespace and rng.random() < 0.4:
            w = " " * rng.randint(1, 2) + w
        if rng.random() < 0.2:
            # Inject garbage so the error paths stay exercised; the
            # witness value below accounts for it.
            pos = rng.randint(0, len(w))
            w = w[:pos] + rng.choice("x#") + w[pos:]
        v = self._new_var(w, prefix="sd")
        n = self.builder.to_num_sem(v, sem)
        value = sem.convert(w)
        self.witness[n] = value
        self._int_shape(n, value)

    def emit_at(self):
        v, w = self._pick_var()
        rng = self.rng
        if w and rng.random() < 0.7:
            index = rng.randint(0, len(w) - 1)
        else:
            index = rng.choice([-1, len(w), len(w) + 2])
        in_range = 0 <= index < len(w)
        r, aux = self.builder.at_total(v, index)
        expected = w[index] if in_range else ""
        self.witness[r.name] = expected
        self.witness[aux["prefix"].name] = w[:index] if in_range else ""
        self.witness[aux["suffix"].name] = w[index + 1:] if in_range else ""
        target = expected
        if self._lie():
            target = expected + rng.choice(self.config.alphabet_chars)
        self.builder.equal((r,), (target,) if target else ())

    def emit_indexof(self):
        v, w = self._pick_var()
        rng = self.rng
        if w and rng.random() < 0.6:
            i = rng.randint(0, len(w) - 1)
            needle = w[i: i + rng.randint(1, 2)]
        else:
            needle = self._word()
        start = rng.choice([0, 0, 1, len(w) + 1])
        if 0 <= start <= len(w):
            expected = w.find(needle, start)
        else:
            expected = -1
        r, aux = self.builder.index_of(v, needle, start)
        self.witness[r] = expected
        for name in ("p", "a", "b", "u", "q"):
            self.witness[aux[name].name] = ""
        if expected >= 0:
            self.witness[aux["p"].name] = w[:start]
            self.witness[aux["a"].name] = w[start:expected]
            self.witness[aux["b"].name] = w[expected + len(needle):]
            self.witness[aux["u"].name] = w[start:expected] + needle
        elif 0 <= start <= len(w):
            self.witness[aux["p"].name] = w[:start]
            self.witness[aux["q"].name] = w[start:]
        target = expected + (self._offset() if self._lie() else 0)
        self.builder.require_int(eq(int_var(r), target))

    def emit_replace(self):
        v, w = self._pick_var()
        rng = self.rng
        if w and rng.random() < 0.6:
            i = rng.randint(0, len(w) - 1)
            needle = w[i: i + rng.randint(1, 2)]
        else:
            needle = self._word()
        replacement = self._word()
        if rng.random() < 0.5:
            r, aux = self.builder.replace(v, needle, replacement)
            if needle == "":
                expected = replacement + w
            elif needle in w:
                i = w.find(needle)
                expected = w[:i] + replacement + w[i + len(needle):]
                self.witness[aux["a"].name] = w[:i]
                self.witness[aux["b"].name] = w[i + len(needle):]
                self.witness[aux["u"].name] = w[:i] + needle
            else:
                expected = w
                for key in ("a", "b", "u"):
                    self.witness[aux[key].name] = ""
        else:
            r, aux = self.builder.replace_all(v, needle, replacement)
            if needle == "":
                expected = w          # SMT-LIB: identity for ""
            else:
                parts = w.split(needle)
                expected = replacement.join(parts)
                for j, gap in enumerate(aux["gaps"]):
                    self.witness[gap.name] = parts[j] \
                        if j < len(parts) else ""
                for j, first in enumerate(aux["firsts"]):
                    self.witness[first.name] = parts[j] + needle \
                        if j < len(parts) - 1 else ""
        self.witness[r.name] = expected
        target = expected
        if self._lie():
            target = expected + rng.choice(self.config.alphabet_chars)
        self.builder.equal((r,), (target,) if target else ())

    def emit_code(self):
        rng = self.rng
        if rng.random() < 0.5:
            v, w = self._pick_var()
            r, aux = self.builder.to_code(v)
            value = ord(w) if len(w) == 1 else -1
            self.witness[r] = value
            self.witness[aux["char"].name] = w if len(w) == 1 else ""
            self._int_shape(r, value)
        else:
            code = ord(rng.choice(self.config.alphabet_chars)) \
                if rng.random() < 0.7 else rng.choice([-3, 10, 200])
            k = self.builder.fresh_int("c")
            self.builder.require_int(eq(int_var(k), code))
            self.witness[k] = code
            s = self.builder.from_code(k)
            expected = chr(code) if 32 <= code <= 126 else ""
            self.witness[s.name] = expected
            target = expected
            if self._lie():
                target = expected + rng.choice(self.config.alphabet_chars)
            self.builder.equal((s,), (target,) if target else ())

    # -- driver ---------------------------------------------------------------

    _SEMANTICS = standard_semantics()

    EMITTERS = (
        ("emit_length", 3),
        ("emit_length_lia", 2),
        ("emit_word_eq_split", 3),
        ("emit_word_eq_concat", 2),
        ("emit_membership", 3),
        ("emit_not_membership", 1),
        ("emit_tonum", 3),
        ("emit_tonum_sem", 2),
        ("emit_tostr", 1),
        ("emit_diseq", 1),
        ("emit_at", 1),
        ("emit_indexof", 1),
        ("emit_replace", 1),
        ("emit_code", 1),
    )

    def run(self):
        rng = self.rng
        for _ in range(rng.randint(1, self.config.max_string_vars)):
            self._new_var()
        names = [n for n, _ in self.EMITTERS]
        weights = [w for _, w in self.EMITTERS]
        for _ in range(rng.randint(1, self.config.max_constraints)):
            emitter = rng.choices(names, weights=weights)[0]
            getattr(self, emitter)()
        if self.config.bound_lengths:
            self._cap_lengths()
        return self.builder.problem

    def _cap_lengths(self):
        """Finite length bound for every variable of the final problem.

        This includes the fresh variables desugaring introduced (diseq
        prefixes, toStr results, ...), so interval propagation derives
        finite per-variable bounds and the enumerative oracle's finished
        searches are exhaustive — definite UNSAT verdicts stay in play.
        """
        cap = self.config.max_len + 2
        witnessed = {n: v for n, v in self.witness.items()
                     if isinstance(v, str)}
        for v in sorted(self.builder.problem.string_vars(),
                        key=lambda s: s.name):
            bound = max(cap, len(witnessed.get(v.name, "")))
            self.builder.require_int(le(str_len(v), bound))


def _regex_literal(text):
    """*text* as a regex matching exactly itself."""
    out = []
    for ch in text:
        out.append("\\" + ch if ch in "()[]|*+?{}.\\^-" else ch)
    return "".join(out)


def _regex_class(chars):
    """A character class matching exactly the characters in *chars*."""
    out = []
    for ch in sorted(set(chars)):
        out.append("\\" + ch if ch in "]\\^-" else ch)
    return "[" + "".join(out) + "]"


def generate(rng, config=None, seed_index=None):
    """One :class:`GeneratedProblem` drawn from *rng* under *config*."""
    gen = _Gen(rng, config or GenConfig())
    problem = gen.run()
    return GeneratedProblem(problem, dict(gen.witness), not gen.lied,
                            seed_index)
