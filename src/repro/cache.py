"""Solver-wide bounded memoization caches.

The refinement loop and the benchmark suites re-run the same automata
constructions over and over (the same regexes compile per instance, the
same intersections re-run per round).  This module provides the shared
bounded-LRU caches those operations memoize through, with hit/miss
counters wired into :mod:`repro.obs` so ``--trace`` shows exactly what
the caches bought.

Discipline (see DESIGN.md Section 6):

* only **pure, immutable-result** operations may be memoized — every
  cached value is shared between callers, so callers must never mutate
  a returned object;
* keys must capture the *full* semantic input of the operation (for
  automata: the structural fingerprint plus any alphabet argument);
* every cache is bounded (LRU eviction), so memoization can change
  running time but never the memory asymptotics or the results.

Caches are process-global and survive across solver instances on
purpose: cross-instance reuse is where benchmark suites win.  The
``--no-cache`` CLI flag (and ``SolverConfig.use_caches=False``) routes
through :func:`set_enabled` / :class:`disabled`; with caching disabled
every lookup misses and nothing is stored, so results are identical by
construction.
"""

import hashlib
import pickle
from collections import OrderedDict

from repro import faults as _faults
from repro.obs import current_metrics

MISSING = object()
"""Sentinel returned by :meth:`LRUCache.get` on a miss (values may be None)."""

_enabled = True

_REGISTRY = {}


def enabled():
    """Is memoization globally enabled?"""
    return _enabled


def set_enabled(flag):
    """Globally enable/disable all caches; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


class disabled:
    """Context manager: run a block with every cache bypassed."""

    def __enter__(self):
        self._previous = set_enabled(False)
        return self

    def __exit__(self, *exc):
        set_enabled(self._previous)
        return False


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Instances register themselves in a module-level registry under
    *name* so :func:`stats` and :func:`clear_all` can reach every cache,
    and hit/miss counters are reported to the ambient metrics context as
    ``cache.<name>.hits`` / ``cache.<name>.misses``.
    """

    __slots__ = ("name", "maxsize", "_data", "hits", "misses")

    def __init__(self, name, maxsize=256):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        _REGISTRY[name] = self

    def __len__(self):
        return len(self._data)

    def get(self, key):
        """The cached value, or :data:`MISSING`; counts the access."""
        if not _enabled:
            return MISSING
        if _faults.ARMED:
            _faults.point("cache.lookup")
        data = self._data
        try:
            value = data[key]
        except KeyError:
            self.misses += 1
            metrics = current_metrics()
            if metrics.enabled:
                metrics.add("cache.%s.misses" % self.name)
            return MISSING
        data.move_to_end(key)
        self.hits += 1
        metrics = current_metrics()
        if metrics.enabled:
            metrics.add("cache.%s.hits" % self.name)
        if _faults.ARMED:
            # A corrupted lookup degrades to a miss: dropping the hit is
            # the only corruption that cannot leak a wrong result.
            return _faults.corrupt("cache.lookup", value, lambda _: MISSING)
        return value

    def put(self, key, value):
        """Store *value*, evicting the least recently used entry if full."""
        if not _enabled:
            return
        if _faults.ARMED:
            _faults.point("cache.store")
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)

    def clear(self):
        self._data.clear()

    def info(self):
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses}

    def __repr__(self):
        return "LRUCache(%s, %d/%d, hits=%d, misses=%d)" % (
            self.name, len(self._data), self.maxsize, self.hits, self.misses)


def problem_fingerprint(problem):
    """A stable content identity for a string problem: the hash of its
    canonical SMT-LIB rendering (pickle bytes as fallback).

    Lives here — not in :mod:`repro.serve` where it originated — so the
    solver-phase caches keyed by it do not import the serving layer.
    """
    try:
        from repro.smtlib import problem_to_smtlib
        payload = problem_to_smtlib(problem).encode("utf-8")
    except Exception:
        payload = pickle.dumps(problem, protocol=4)
    return hashlib.sha256(payload).hexdigest()[:16]


def stats():
    """Per-cache ``{name: {size, maxsize, hits, misses}}`` snapshot."""
    return {name: cache.info() for name, cache in sorted(_REGISTRY.items())}


def clear_all():
    """Empty every registered cache (process-lifetime counters survive)."""
    for cache in _REGISTRY.values():
        cache.clear()
