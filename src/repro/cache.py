"""Solver-wide bounded memoization caches.

The refinement loop and the benchmark suites re-run the same automata
constructions over and over (the same regexes compile per instance, the
same intersections re-run per round).  This module provides the shared
bounded-LRU caches those operations memoize through, with hit/miss
counters wired into :mod:`repro.obs` so ``--trace`` shows exactly what
the caches bought.

Discipline (see DESIGN.md Section 6):

* only **pure, immutable-result** operations may be memoized — every
  cached value is shared between callers, so callers must never mutate
  a returned object;
* keys must capture the *full* semantic input of the operation (for
  automata: the structural fingerprint plus any alphabet argument);
* every cache is bounded (LRU eviction), so memoization can change
  running time but never the memory asymptotics or the results.

Caches are process-global and survive across solver instances on
purpose: cross-instance reuse is where benchmark suites win.  The
``--no-cache`` CLI flag (and ``SolverConfig.use_caches=False``) routes
through :func:`set_enabled` / :class:`disabled`; with caching disabled
every lookup misses and nothing is stored, so results are identical by
construction.
"""

import hashlib
from collections import OrderedDict

from repro import faults as _faults
from repro.obs import current_metrics

MISSING = object()
"""Sentinel returned by :meth:`LRUCache.get` on a miss (values may be None)."""

_enabled = True

_REGISTRY = {}


def enabled():
    """Is memoization globally enabled?"""
    return _enabled


def set_enabled(flag):
    """Globally enable/disable all caches; returns the previous setting."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


class disabled:
    """Context manager: run a block with every cache bypassed."""

    def __enter__(self):
        self._previous = set_enabled(False)
        return self

    def __exit__(self, *exc):
        set_enabled(self._previous)
        return False


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Instances register themselves in a module-level registry under
    *name* so :func:`stats` and :func:`clear_all` can reach every cache,
    and hit/miss counters are reported to the ambient metrics context as
    ``cache.<name>.hits`` / ``cache.<name>.misses``.
    """

    __slots__ = ("name", "maxsize", "_data", "hits", "misses", "persist",
                 "validator")

    def __init__(self, name, maxsize=256, persist=False, validator=None):
        if maxsize <= 0:
            raise ValueError("cache maxsize must be positive")
        self.name = name
        self.maxsize = maxsize
        self._data = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.persist = persist
        self.validator = validator
        _REGISTRY[name] = self

    def __len__(self):
        return len(self._data)

    def get(self, key):
        """The cached value, or :data:`MISSING`; counts the access."""
        if not _enabled:
            return MISSING
        if _faults.ARMED:
            _faults.point("cache.lookup")
        data = self._data
        try:
            value = data[key]
        except KeyError:
            if self.persist:
                value = self._persistent_get(key)
                if value is not MISSING:
                    data[key] = value
                    if len(data) > self.maxsize:
                        data.popitem(last=False)
                    self.hits += 1
                    return value
            self.misses += 1
            metrics = current_metrics()
            if metrics.enabled:
                metrics.add("cache.%s.misses" % self.name)
            return MISSING
        data.move_to_end(key)
        self.hits += 1
        metrics = current_metrics()
        if metrics.enabled:
            metrics.add("cache.%s.hits" % self.name)
        if _faults.ARMED:
            # A corrupted lookup degrades to a miss: dropping the hit is
            # the only corruption that cannot leak a wrong result.
            return _faults.corrupt("cache.lookup", value, lambda _: MISSING)
        return value

    def put(self, key, value):
        """Store *value*, evicting the least recently used entry if full."""
        if not _enabled:
            return
        if _faults.ARMED:
            _faults.point("cache.store")
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.maxsize:
            data.popitem(last=False)
        if self.persist:
            self._persistent_put(key, value)

    def _persistent_get(self, key):
        """Second-chance lookup in the ambient persistent store.

        Lazy import: :mod:`repro.store` imports this module for the
        :data:`MISSING` sentinel and the enabled flag.  The store runs
        ``self.validator`` on anything it returns, so a corrupt or stale
        persisted value quarantines there instead of entering the LRU.
        """
        from repro import store as _store
        store = _store.active_store()
        if store is None:
            return MISSING
        return store.get("cache." + self.name, key, validator=self.validator)

    def _persistent_put(self, key, value):
        from repro import store as _store
        store = _store.active_store()
        if store is not None:
            store.put("cache." + self.name, key, value)

    def clear(self):
        self._data.clear()

    def info(self):
        return {"size": len(self._data), "maxsize": self.maxsize,
                "hits": self.hits, "misses": self.misses}

    def __repr__(self):
        return "LRUCache(%s, %d/%d, hits=%d, misses=%d)" % (
            self.name, len(self._data), self.maxsize, self.hits, self.misses)


def _canonical(obj, depth=0):
    """A deterministic, hash-seed-independent structure for *obj*.

    Only *public* fields participate: the AST and automata classes keep
    lazily-memoized caches in underscore slots (``NFA._fp``,
    ``RegularConstraint._dfa``, ``Atom._canon``, ...) that are populated
    *during* solving, so any identity that serialized them would change
    under the caller's feet mid-solve.  Sets and dicts are emitted in
    sorted order so the result is identical across processes regardless
    of ``PYTHONHASHSEED``.
    """
    if depth > 150:
        return repr(obj)
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    if isinstance(obj, (list, tuple)):
        return ("seq",) + tuple(_canonical(x, depth + 1) for x in obj)
    if isinstance(obj, (set, frozenset)):
        return ("set",) + tuple(sorted(
            (_canonical(x, depth + 1) for x in obj), key=repr))
    if isinstance(obj, dict):
        return ("map",) + tuple(sorted(
            ((_canonical(k, depth + 1), _canonical(v, depth + 1))
             for k, v in obj.items()), key=repr))
    fields = {}
    for klass in type(obj).__mro__:
        for slot in getattr(klass, "__slots__", ()):
            if not slot.startswith("_") and hasattr(obj, slot):
                fields[slot] = getattr(obj, slot)
    if not fields and getattr(obj, "__dict__", None):
        fields = {name: value for name, value in vars(obj).items()
                  if not name.startswith("_")}
    if fields:
        return (type(obj).__name__,) + tuple(
            (name, _canonical(value, depth + 1))
            for name, value in sorted(fields.items()))
    return repr(obj)


def problem_fingerprint(problem):
    """A stable content identity for a string problem: the hash of its
    canonical SMT-LIB rendering, falling back to a canonical structural
    walk for problems the printer cannot express (e.g. parsed regular
    constraints whose NFA has no printable source).  Both forms are
    independent of ``PYTHONHASHSEED`` and of the lazy memo fields the
    solver populates on AST nodes, so the fingerprint a worker computes
    before solving equals the one any later worker generation computes —
    the property the persistent store keys live and die by.

    Lives here — not in :mod:`repro.serve` where it originated — so the
    solver-phase caches keyed by it do not import the serving layer.
    """
    try:
        from repro.smtlib import problem_to_smtlib
        payload = problem_to_smtlib(problem).encode("utf-8")
    except Exception:
        payload = repr(_canonical(problem)).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def stats():
    """Per-cache ``{name: {size, maxsize, hits, misses}}`` snapshot."""
    return {name: cache.info() for name, cache in sorted(_REGISTRY.items())}


def clear_all():
    """Empty every registered cache (process-lifetime counters survive)."""
    for cache in _REGISTRY.values():
        cache.clear()
