"""Solver configuration and resource budgets.

Every long-running component takes a :class:`Deadline` so a single wall-clock
budget can be threaded through the SAT core, the simplex, and the automata
constructions without relying on signals (which do not compose with pytest).
"""

import time
from dataclasses import dataclass


class Deadline:
    """A wall-clock deadline checked cooperatively in inner loops."""

    def __init__(self, seconds=None):
        self._expires_at = None if seconds is None else time.monotonic() + seconds

    @classmethod
    def unbounded(cls):
        return cls(None)

    def expired(self):
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def checkpoint(self, tracer=None):
        """Like :meth:`expired`, but attributable: when the budget is gone,
        record a ``deadline_expired`` event (and attribute) on the active
        span so an UNKNOWN can be traced to the time budget rather than to
        refinement exhaustion."""
        if not self.expired():
            return False
        if tracer is not None:
            tracer.event("deadline_expired")
            tracer.annotate(deadline_expired=True)
        return True

    def remaining(self):
        """Seconds left, or ``None`` if unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())


@dataclass
class RefinementStep:
    """One (m, p, q) point of the paper's Section 9 strategy.

    ``m`` is the chain length of numeric PFAs, ``p`` the number of loops of
    standard PFAs, and ``q`` the length of each loop.
    """
    numeric_m: int
    loops: int
    loop_length: int


@dataclass
class SolverConfig:
    """Tunable options of the top-level decision procedure.

    The defaults follow the paper: initial (m, p, q) = (5, 2, q0) where q0
    comes from a static analysis, then m doubles while p and q grow by one
    per refinement round.
    """

    initial_numeric_m: int = 5
    initial_loops: int = 2
    initial_loop_length: int = 2    # q0 fallback when static analysis is silent
    max_rounds: int = 3
    max_numeric_m: int = 40
    max_loops: int = 5
    max_loop_length: int = 6
    use_overapproximation: bool = True
    use_static_analysis: bool = True
    # Cross-round incrementality: keep one SAT solver alive across
    # refinement rounds, reusing unchanged flattened fragments under
    # activation literals (see DESIGN.md Section 6).
    use_incremental: bool = True
    # Solver-wide memoization caches (automata operations, regex
    # compilation); repro.cache.disabled() wraps the run when False.
    use_caches: bool = True
    # Upper bound imposed on every Parikh counter so branch-and-bound
    # terminates on unbounded polyhedra (see DESIGN.md Section 5).
    parikh_counter_bound: int = 10 ** 9
    # Branch-and-bound node budget per LIA check.
    bb_node_limit: int = 200000
    # DPLL(T) iteration budget.
    smt_iteration_limit: int = 100000

    def schedule(self, q0=None):
        """The sequence of refinement steps, largest-first growth per paper."""
        q = self.initial_loop_length if q0 is None else max(q0, 1)
        m, p = self.initial_numeric_m, self.initial_loops
        steps = []
        for _ in range(self.max_rounds):
            steps.append(RefinementStep(
                numeric_m=min(m, self.max_numeric_m),
                loops=min(p, self.max_loops),
                loop_length=min(q, self.max_loop_length)))
            m, p, q = m * 2, p + 1, q + 1
        return steps


DEFAULT_CONFIG = SolverConfig()
