"""Solver configuration and resource budgets.

Every long-running component takes a :class:`Deadline` so a single wall-clock
budget can be threaded through the SAT core, the simplex, and the automata
constructions without relying on signals (which do not compose with pytest).

:class:`Budget` extends the deadline into *unified resource governance*
(modelled on cvc5's resource manager): one object carries the wall clock,
the branch-and-bound node budget, the DPLL(T) iteration budget, the
automata state-count guard and the Parikh counter bound, and every
:class:`~repro.errors.ResourceLimit` it raises names the budget that
tripped so an UNKNOWN answer is attributable.
"""

import time
from dataclasses import dataclass

from repro.errors import ResourceLimit


class Deadline:
    """A wall-clock deadline checked cooperatively in inner loops.

    The class-level limit attributes make a plain deadline a degenerate
    :class:`Budget`: components read ``deadline.bb_node_limit`` etc.
    without caring which of the two they were handed.
    """

    bb_node_limit = None
    smt_iteration_limit = None
    automata_state_limit = None
    parikh_counter_bound = None

    def __init__(self, seconds=None):
        self._expires_at = None if seconds is None else time.monotonic() + seconds

    @classmethod
    def unbounded(cls):
        return cls(None)

    def expired(self):
        return self._expires_at is not None and time.monotonic() >= self._expires_at

    def checkpoint(self, tracer=None):
        """Like :meth:`expired`, but attributable: when the budget is gone,
        record a ``deadline_expired`` event (and attribute) on the active
        span so an UNKNOWN can be traced to the time budget rather than to
        refinement exhaustion."""
        if not self.expired():
            return False
        if tracer is not None:
            tracer.event("deadline_expired")
            tracer.annotate(deadline_expired=True)
        return True

    def remaining(self):
        """Seconds left, or ``None`` if unbounded."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def charge_states(self, count, op="automata"):
        """Guard an automata construction against state-count blowup.

        Raises an attributable :class:`~repro.errors.ResourceLimit` once
        *count* exceeds the state budget (a no-op on plain deadlines,
        whose limit is ``None``).
        """
        limit = self.automata_state_limit
        if limit is not None and count > limit:
            raise ResourceLimit(
                "%s exceeded the automata state budget (%d > %d)"
                % (op, count, limit), reason="automata-states")


class Budget(Deadline):
    """Unified resource governance for one ``solve`` call.

    Subsumes the wall-clock :class:`Deadline` and the per-component
    budget knobs that used to travel separately (``bb_node_limit``,
    ``smt_iteration_limit``, ``parikh_counter_bound``), and adds the
    automata state-count guard.  Passing ``None`` for a limit makes that
    dimension unbounded.  Components receive the budget wherever they
    used to receive a deadline.
    """

    def __init__(self, seconds=None, bb_nodes=None, smt_iterations=None,
                 automata_states=None, parikh_bound=None):
        super().__init__(seconds)
        self.bb_node_limit = bb_nodes
        self.smt_iteration_limit = smt_iterations
        self.automata_state_limit = automata_states
        self.parikh_counter_bound = parikh_bound


@dataclass
class RefinementStep:
    """One (m, p, q) point of the paper's Section 9 strategy.

    ``m`` is the chain length of numeric PFAs, ``p`` the number of loops of
    standard PFAs, and ``q`` the length of each loop.
    """
    numeric_m: int
    loops: int
    loop_length: int


@dataclass
class SolverConfig:
    """Tunable options of the top-level decision procedure.

    The defaults follow the paper: initial (m, p, q) = (5, 2, q0) where q0
    comes from a static analysis, then m doubles while p and q grow by one
    per refinement round.
    """

    initial_numeric_m: int = 5
    initial_loops: int = 2
    initial_loop_length: int = 2    # q0 fallback when static analysis is silent
    max_rounds: int = 3
    max_numeric_m: int = 40
    max_loops: int = 5
    max_loop_length: int = 6
    use_overapproximation: bool = True
    use_static_analysis: bool = True
    # Cross-round incrementality: keep one SAT solver alive across
    # refinement rounds, reusing unchanged flattened fragments under
    # activation literals (see DESIGN.md Section 6).
    use_incremental: bool = True
    # Solver-wide memoization caches (automata operations, regex
    # compilation); repro.cache.disabled() wraps the run when False.
    use_caches: bool = True
    # Run the logic presolve (variable elimination + interval folding)
    # before SMT solving; the last degradation rung turns it off.
    use_presolve: bool = True
    # Upper bound imposed on every Parikh counter so branch-and-bound
    # terminates on unbounded polyhedra (see DESIGN.md Section 5).
    parikh_counter_bound: int = 10 ** 9
    # Branch-and-bound node budget per LIA check.
    bb_node_limit: int = 200000
    # DPLL(T) iteration budget.
    smt_iteration_limit: int = 100000
    # State-count guard on determinize/product constructions (the
    # subset construction is exponential in the worst case).
    automata_state_limit: int = 200000
    # Fault-injection specs armed for the duration of each solve call
    # (e.g. ("cache.lookup:raise:after=2",)); see repro.faults.
    fault_specs: tuple = ()
    # Kernel backend for the SAT/simplex/automata inner loops:
    # "pure" (object graphs), "packed" (flat arrays, repro.kernels), or
    # "auto" (REPRO_BACKEND env var, else packed when available).
    backend: str = "auto"
    # Directory of the crash-safe persistent store (repro.store), shared
    # across worker boots; None falls back to the process default and
    # then $REPRO_STORE (see repro.store.active_store), unset disables.
    store_path: str = None

    def budget(self, seconds=None):
        """A fresh :class:`Budget` carrying this config's limits."""
        return Budget(seconds=seconds,
                      bb_nodes=self.bb_node_limit,
                      smt_iterations=self.smt_iteration_limit,
                      automata_states=self.automata_state_limit,
                      parikh_bound=self.parikh_counter_bound)

    def schedule(self, q0=None):
        """The sequence of refinement steps, largest-first growth per paper."""
        q = self.initial_loop_length if q0 is None else max(q0, 1)
        m, p = self.initial_numeric_m, self.initial_loops
        steps = []
        for _ in range(self.max_rounds):
            steps.append(RefinementStep(
                numeric_m=min(m, self.max_numeric_m),
                loops=min(p, self.max_loops),
                loop_length=min(q, self.max_loop_length)))
            m, p, q = m * 2, p + 1, q + 1
        return steps


@dataclass(frozen=True)
class TenantQuota:
    """One API tenant of the network front door: its key and its
    token-bucket rate limit (*rps* refills per second up to *burst*)."""

    name: str
    key: str
    rps: float = 50.0
    burst: int = 100

    @classmethod
    def parse(cls, spec):
        """``name=key[:rps[:burst]]`` (the ``--api-key`` CLI syntax)."""
        head, sep, tail = spec.partition("=")
        if not sep or not head.strip() or not tail.strip():
            raise ValueError("tenant spec %r is not name=key[:rps[:burst]]"
                             % spec)
        parts = tail.split(":")
        key = parts[0].strip()
        rps = float(parts[1]) if len(parts) > 1 and parts[1].strip() \
            else cls.rps
        burst = int(parts[2]) if len(parts) > 2 and parts[2].strip() \
            else cls.burst
        if rps <= 0 or burst <= 0:
            raise ValueError("tenant %r needs positive rps/burst" % head)
        return cls(head.strip(), key, rps, burst)


@dataclass
class NetConfig:
    """Shape of the network front door (:mod:`repro.serve.net`).

    Robustness knobs, layer by layer: admission (``max_open_requests``
    bounds intake, tenants carry token buckets), deadline propagation
    (``default_deadline_s`` when the caller names none, capped at
    ``max_deadline_s``), and failure handling (per-shard circuit
    breakers, optional automatic shard restart).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    shards: int = 2
    jobs_per_shard: int = 2
    # Admission: total open requests across all shards before the door
    # sheds with unknown(overloaded); reject-don't-buffer, as in the
    # SolverService intake.
    max_open_requests: int = 256
    # Deadline propagation: the caller's deadline_s rides the wire and
    # is clamped into (0, max_deadline_s]; absent, the default applies.
    default_deadline_s: float = 10.0
    max_deadline_s: float = 60.0
    # Identical-fingerprint requests in flight share one solve, and
    # finished sat/unsat verdicts are answered from a front-door LRU.
    coalesce: bool = True
    cache_size: int = 1024
    # Per-shard circuit breaker: consecutive infrastructure failures
    # before the shard is routed around, and the half-open cooldown.
    breaker_threshold: int = 3
    breaker_cooldown_s: float = 2.0
    # Automatic shard restart this many seconds after a kill (None
    # leaves dead shards down until an admin restart).
    restart_after_s: float = None
    # Wire limits: one framed request (or HTTP body) may not exceed
    # this many bytes; longer frames answer unknown(too-large).
    max_frame_bytes: int = 4 * 1024 * 1024
    # Authentication: with any tenants configured, requests must carry
    # a known key; an empty tuple leaves the door open (dev mode) with
    # one anonymous tenant using the default quota.
    tenants: tuple = ()
    # Key for /admin endpoints (kill/restart shard, arm faults); None
    # leaves admin open — only sensible in tests and chaos harnesses.
    admin_key: str = None
    # Seconds a retry-after hint suggests to a shed client.
    retry_after_s: float = 0.5

    def tenant_for(self, key):
        """The matching :class:`TenantQuota`, or None.  With no tenants
        configured every caller maps to the anonymous tenant."""
        if not self.tenants:
            return ANONYMOUS_TENANT
        for tenant in self.tenants:
            if tenant.key == key:
                return tenant
        return None


ANONYMOUS_TENANT = TenantQuota("anonymous", "", rps=10 ** 6, burst=10 ** 6)

DEFAULT_CONFIG = SolverConfig()
