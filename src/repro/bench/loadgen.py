"""Chaos load harness for the network front door.

Run with ``python -m repro.bench.loadgen --json BENCH_PR9.json`` (also
reachable as ``python -m repro loadgen``).

The harness boots a full :class:`~repro.serve.net.NetServer` in-process
on an ephemeral port, then speaks the length-prefixed-JSON wire protocol
at it like a fleet of clients would — the server code under test is
byte-for-byte what ``repro netserve`` runs.  Traffic is the PR 5
differential generator's seeded problem space (a fixed pool of distinct
problems re-asked with heavy reuse, the way a symbolic-execution service
sees the same path conditions from many clients), offered at a
controlled request rate.

Three phases, reported separately so degradation is measurable:

* **clean** — the offered rate against a healthy server; includes a
  same-instant duplicate burst so request coalescing provably engages,
  and a noisy tenant with a tiny token bucket so throttling provably
  engages.
* **chaos** — the same offered rate while the harness arms ``net.*``
  fault seams over the admin surface, kills one shard mid-run (later
  restarting it), and floods a burst of fresh problems to trip the
  intake bound.  Transport errors are retried like a real client
  retries; the invariant is that every *logical* request ends in a
  well-formed response — an answer or an attributable ``unknown(...)``.
* **drain** — SIGTERM semantics: requests sent after the drain begins
  are answered ``unknown(shutdown)`` and the server exits cleanly.

The report records p50/p95/p99 latency per phase, the verdict/reason
mix, the door and router counters scraped from ``/metrics`` exposition,
and the zero-wrong-answer / zero-internal-error invariants the CI gate
asserts.  A *wrong answer* is an ``unsat`` verdict for a problem whose
generated witness was certified by the evaluator — the one thing chaos
must never cause.
"""

import argparse
import asyncio
import json
import random
import sys
import time

from repro import faults
from repro.config import NetConfig, SolverConfig, TenantQuota
from repro.diff.generator import GenConfig, generate
from repro.obs import metrics_from_prometheus
from repro.serve.net import NetServer
from repro.smtlib import problem_to_smtlib

LOAD_KEY = "loadgen-key"
NOISY_KEY = "noisy-key"
ADMIN_KEY = "chaos-admin"

CHAOS_FAULT_SPECS = (
    "net.accept:raise:after=5,times=4",
    "net.read:raise:after=20,times=4",
    "net.write:raise:after=20,times=4",
    "net.route:raise:after=10,times=3",
)


def percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return None
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def latency_block(latencies):
    """The histogram summary one phase reports (milliseconds)."""
    if not latencies:
        return {"count": 0}
    return {
        "count": len(latencies),
        "p50_ms": round(1000.0 * percentile(latencies, 0.50), 3),
        "p95_ms": round(1000.0 * percentile(latencies, 0.95), 3),
        "p99_ms": round(1000.0 * percentile(latencies, 0.99), 3),
        "max_ms": round(1000.0 * max(latencies), 3),
        "mean_ms": round(1000.0 * sum(latencies) / len(latencies), 3),
    }


def make_corpus(distinct, seed, max_len=3):
    """The problem pool: (smt2 text, certified) pairs, reproducible."""
    rng = random.Random(seed)
    config = GenConfig(max_len=max_len)
    corpus = []
    for index in range(distinct):
        generated = generate(rng, config, seed_index=index)
        corpus.append((problem_to_smtlib(generated.problem),
                       bool(generated.certified)))
    return corpus


class LpjClient:
    """One wire connection: pipelined frames, responses demuxed by
    ``id`` (a reader task resolves per-request futures, so many
    requests share the connection concurrently).

    Chaos drops connections (``net.accept`` / ``net.read`` /
    ``net.write`` raises); like any sane client, :meth:`request`
    reconnects and resends, counting the retries.  Only after
    ``max_retries`` transport failures does a logical request go
    unanswered — which the harness reports as an invariant violation.
    """

    def __init__(self, host, port, max_retries=6):
        self.host = host
        self.port = port
        self.max_retries = max_retries
        self.retries = 0
        self._writer = None
        self._conn_lock = None
        self._read_task = None
        self._pending = {}           # frame id -> future
        self._next_id = 0

    async def _ensure_connected(self):
        if self._conn_lock is None:
            self._conn_lock = asyncio.Lock()
        async with self._conn_lock:
            if self._writer is not None:
                return
            reader, self._writer = await asyncio.open_connection(
                self.host, self.port)
            self._read_task = asyncio.ensure_future(self._read_loop(reader))

    async def _read_loop(self, reader):
        try:
            while True:
                head = await reader.readexactly(4)
                body = await reader.readexactly(int.from_bytes(head, "big"))
                payload = json.loads(body.decode("utf-8"))
                future = self._pending.pop(payload.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(payload)
        except Exception:
            # The connection died mid-read: fail every in-flight
            # request so its caller reconnects and resends.
            self._writer = None
            pending, self._pending = self._pending, {}
            for future in pending.values():
                if not future.done():
                    future.set_exception(ConnectionError("connection lost"))

    async def _roundtrip(self, obj, timeout):
        await self._ensure_connected()
        future = asyncio.get_running_loop().create_future()
        self._pending[obj["id"]] = future
        data = json.dumps(obj).encode("utf-8")
        try:
            async with self._conn_lock:
                if self._writer is None:
                    raise ConnectionError("connection lost before send")
                self._writer.write(len(data).to_bytes(4, "big") + data)
                await self._writer.drain()
            return await asyncio.wait_for(future, timeout)
        finally:
            self._pending.pop(obj["id"], None)

    async def request(self, obj, timeout=30.0):
        """The logical request: returns a payload dict or None after
        exhausting transport retries."""
        self._next_id += 1
        obj = dict(obj, id=self._next_id)
        for attempt in range(self.max_retries + 1):
            try:
                return await self._roundtrip(obj, timeout)
            except (ConnectionError, OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError):
                await self._drop()
                if attempt == self.max_retries:
                    return None
                self.retries += 1
                await asyncio.sleep(0.01 * (attempt + 1))

    async def _drop(self):
        writer, self._writer = self._writer, None
        if writer is not None:
            try:
                writer.close()
            except Exception:
                pass

    async def close(self):
        await self._drop()
        if self._read_task is not None:
            self._read_task.cancel()
            self._read_task = None


class PhaseTally:
    """Accumulates one phase's latencies, answers, and violations."""

    def __init__(self, name):
        self.name = name
        self.latencies = []
        self.answers = {}
        self.wrong = []
        self.malformed = 0
        self.unanswered = 0
        self.started = time.monotonic()
        self.finished = None

    def record(self, payload, certified, latency):
        if payload is None:
            self.unanswered += 1
            return
        answer = payload.get("answer")
        status = payload.get("status")
        if not isinstance(answer, str) or status is None:
            self.malformed += 1
            return
        self.latencies.append(latency)
        self.answers[answer] = self.answers.get(answer, 0) + 1
        if certified and status == "unsat":
            self.wrong.append(payload.get("name"))

    def close(self):
        self.finished = time.monotonic()

    def report(self, offered_rps=None):
        duration = (self.finished or time.monotonic()) - self.started
        block = {
            "requests": (len(self.latencies) + self.malformed
                         + self.unanswered),
            "latency": latency_block(self.latencies),
            "answers": dict(sorted(self.answers.items())),
            "malformed": self.malformed,
            "unanswered": self.unanswered,
            "wrong_answers": len(self.wrong),
            "duration_s": round(duration, 3),
        }
        if offered_rps is not None:
            block["offered_rps"] = offered_rps
        if duration > 0:
            block["achieved_rps"] = round(
                len(self.latencies) / duration, 1)
        return block


async def run_phase(tally, clients, schedule, timeout=None):
    """Offer *schedule* — (delay_from_phase_start, request, certified)
    tuples — across *clients*, holding the offered rate.  Each attempt
    waits the request's own deadline plus a margin (a response lost to
    ``net.write`` chaos is resent promptly, not after some huge global
    timeout — the way a real client would behave)."""
    start = time.monotonic()
    tasks = []

    async def one(delay, obj, certified, client):
        wait = delay - (time.monotonic() - start)
        if wait > 0:
            await asyncio.sleep(wait)
        sent = time.monotonic()
        per_try = timeout or float(obj.get("deadline_s", 8.0)) + 4.0
        payload = await client.request(obj, per_try)
        tally.record(payload, certified, time.monotonic() - sent)

    for index, (delay, obj, certified) in enumerate(schedule):
        tasks.append(asyncio.ensure_future(
            one(delay, obj, certified, clients[index % len(clients)])))
    if tasks:
        await asyncio.wait(tasks)
    tally.close()


def solve_request(smt2, key=LOAD_KEY, deadline_s=8.0, name=None):
    obj = {"op": "solve", "smt2": smt2, "api_key": key,
           "deadline_s": deadline_s}
    if name is not None:
        obj["name"] = name
    return obj


def build_schedule(corpus, requests, rps, rng, start_at=0.0):
    """A reuse-heavy request stream at the offered rate: ~25% of asks
    target the hottest 4 problems so the coalescer and verdict cache
    see realistic repetition."""
    schedule = []
    for index in range(requests):
        if rng.random() < 0.25:
            smt2, certified = corpus[rng.randrange(min(4, len(corpus)))]
        else:
            smt2, certified = corpus[rng.randrange(len(corpus))]
        schedule.append((start_at + index / float(rps),
                         solve_request(smt2, name="load-%d" % index),
                         certified))
    return schedule


async def drive(options):
    """The whole run: boot, clean phase, chaos phase, drain phase."""
    tenants = (TenantQuota("load", LOAD_KEY, rps=10 ** 6, burst=10 ** 6),
               TenantQuota("noisy", NOISY_KEY, rps=2.0, burst=4))
    net_config = NetConfig(
        host="127.0.0.1", port=0, shards=options.shards,
        jobs_per_shard=options.jobs, max_open_requests=options.open_bound,
        default_deadline_s=8.0, max_deadline_s=12.0,
        tenants=tenants, admin_key=ADMIN_KEY,
        breaker_cooldown_s=1.0)
    server = NetServer(solver_config=SolverConfig(),
                       net_config=net_config, grace=1.0,
                       store_path=options.store)
    host, port = await server.start()
    serve_task = asyncio.ensure_future(server.serve_forever())

    corpus = make_corpus(options.distinct, options.seed)
    rng = random.Random(options.seed + 1)
    clients = []
    for _ in range(options.connections):
        clients.append(LpjClient(host, port))
    admin = LpjClient(host, port)
    report = {"phases": {}, "config": {
        "rps": options.rps, "requests_per_phase": options.requests,
        "shards": options.shards, "jobs_per_shard": options.jobs,
        "distinct_problems": options.distinct, "seed": options.seed,
        "connections": options.connections,
        "max_open_requests": options.open_bound,
    }}

    # -- clean phase --------------------------------------------------------
    clean = PhaseTally("clean")
    schedule = build_schedule(corpus, options.requests, options.rps, rng)
    # The coalescing probe: the same *fresh* problem offered 8 times in
    # the same instant — one leader solves, seven followers share it.
    probe_smt2, probe_certified = corpus[-1]
    for _ in range(8):
        schedule.append((0.0, solve_request(probe_smt2, name="coalesce"),
                         probe_certified))
    # The throttling probe: the noisy tenant's bucket holds 4 tokens.
    for index in range(12):
        smt2, certified = corpus[index % len(corpus)]
        schedule.append((0.05 * index,
                         solve_request(smt2, key=NOISY_KEY,
                                       name="noisy-%d" % index),
                         certified))
    await run_phase(clean, clients, schedule)
    report["phases"]["clean"] = clean.report(offered_rps=options.rps)

    # -- chaos phase --------------------------------------------------------
    chaos = PhaseTally("chaos")
    for spec in CHAOS_FAULT_SPECS:
        armed = await admin.request({"op": "admin.fault", "spec": spec,
                                     "admin_key": ADMIN_KEY})
        if armed is None or "armed" not in armed:
            chaos.malformed += 1
    schedule = build_schedule(corpus, options.requests, options.rps, rng)
    # The overload probe: a same-instant flood of *distinct* fresh
    # problems, wider than the intake bound, planted mid-phase.
    flood_at = (options.requests / float(options.rps)) * 0.5
    flood = make_corpus(options.open_bound + 16, options.seed + 7)
    for index, (smt2, certified) in enumerate(flood):
        schedule.append((flood_at,
                         solve_request(smt2, name="flood-%d" % index,
                                       deadline_s=6.0),
                         certified))

    async def mid_run_chaos():
        await asyncio.sleep((options.requests / float(options.rps)) * 0.3)
        killed = await admin.request({"op": "admin.kill-shard", "shard": 0,
                                      "admin_key": ADMIN_KEY})
        chaos_events.append(("kill-shard", killed))
        await asyncio.sleep((options.requests / float(options.rps)) * 0.4)
        restarted = await admin.request(
            {"op": "admin.restart-shard", "shard": 0,
             "admin_key": ADMIN_KEY})
        chaos_events.append(("restart-shard", restarted))

    chaos_events = []
    chaos_task = asyncio.ensure_future(mid_run_chaos())
    await run_phase(chaos, clients, schedule)
    await chaos_task
    await admin.request({"op": "admin.disarm", "admin_key": ADMIN_KEY})
    block = chaos.report(offered_rps=options.rps)
    block["faults_armed"] = list(CHAOS_FAULT_SPECS)
    block["shard_killed"] = 0
    block["events"] = [name for name, _ in chaos_events]
    block["transport_retries"] = sum(c.retries for c in clients)
    report["phases"]["chaos"] = block

    # -- metrics scrape (pre-drain, while the door still answers) -----------
    metrics_payload = await admin.request({"op": "metrics"})
    counters = {}
    if metrics_payload and isinstance(metrics_payload.get("metrics"), str):
        scraped = metrics_from_prometheus(metrics_payload["metrics"])
        for key, value in sorted(scraped.flat().items()):
            if key.startswith("net.") and not key.startswith("net.tenant"):
                counters[key] = value
    state = await admin.request({"op": "admin.state",
                                 "admin_key": ADMIN_KEY})
    report["counters"] = counters
    report["router"] = (state or {}).get("counters", {})
    report["shards"] = (state or {}).get("shards", [])

    # -- drain phase --------------------------------------------------------
    drain = PhaseTally("drain")
    drain_started = time.monotonic()
    server.initiate_shutdown()
    for index in range(8):
        smt2, certified = corpus[index % len(corpus)]
        sent = time.monotonic()
        payload = await clients[index % len(clients)].request(
            solve_request(smt2, name="late-%d" % index), timeout=5.0)
        drain.record(payload, False, time.monotonic() - sent)
    await asyncio.wait_for(serve_task, timeout=30.0)
    drain.close()
    block = drain.report()
    block["drained_in_s"] = round(time.monotonic() - drain_started, 3)
    block["all_shutdown"] = (
        drain.answers.get("unknown(shutdown)", 0) == 8)
    report["phases"]["drain"] = block

    for client in clients + [admin]:
        await client.close()

    # -- invariants ---------------------------------------------------------
    wrong = sum(len(t.wrong) for t in (clean, chaos))
    report["invariants"] = {
        "wrong_answers": wrong,
        "malformed_responses": clean.malformed + chaos.malformed,
        "unanswered": clean.unanswered + chaos.unanswered,
        "internal_errors": int(counters.get("net.internal_errors", 0)),
        "pump_errors": int(counters.get("net.pump_errors", 0)),
        "coalesced_nonzero": report["router"].get("coalesced", 0) > 0,
        "shed_nonzero": int(counters.get("net.shed", 0)) > 0,
        "drain_clean": report["phases"]["drain"]["all_shutdown"],
    }
    report["ok"] = (
        wrong == 0
        and report["invariants"]["malformed_responses"] == 0
        and report["invariants"]["unanswered"] == 0
        and report["invariants"]["internal_errors"] == 0
        and report["invariants"]["coalesced_nonzero"]
        and report["invariants"]["shed_nonzero"]
        and report["invariants"]["drain_clean"])
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="chaos load harness for the network front door")
    parser.add_argument("--rps", type=float, default=200.0,
                        help="offered request rate per phase "
                             "(default 200)")
    parser.add_argument("--requests", type=int, default=400,
                        help="scheduled requests per phase (default 400)")
    parser.add_argument("--distinct", type=int, default=24,
                        help="distinct generated problems in the pool")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=2,
                        help="workers per shard")
    parser.add_argument("--connections", type=int, default=8,
                        help="client connections")
    parser.add_argument("--open-bound", type=int, default=64,
                        help="server max_open_requests (the flood probe "
                             "exceeds it)")
    parser.add_argument("--seed", type=int, default=20260809)
    parser.add_argument("--store", default=None,
                        help="persistent store directory shared by all "
                             "shards (default: none)")
    parser.add_argument("--json", default=None,
                        help="write the report to this path")
    options = parser.parse_args(argv)

    # Chaos tears connections down on purpose; asyncio's transport layer
    # logs each torn socket ("socket.send() raised exception"), which is
    # expected noise here, not signal.
    import logging
    logging.getLogger("asyncio").setLevel(logging.CRITICAL)

    faults.disarm()
    started = time.time()
    report = asyncio.run(drive(options))
    faults.disarm()
    report["wall_s"] = round(time.time() - started, 3)
    report["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                           time.gmtime(started))
    text = json.dumps(report, indent=2, sort_keys=True)
    if options.json:
        with open(options.json, "w") as handle:
            handle.write(text + "\n")
    print(text)
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
