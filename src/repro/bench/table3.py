"""Table 3: the checkLuhn ladder, 2 to 12 loop iterations.

Run with ``python -m repro.bench.table3 [--timeout S] [--max-loops K]``.
Per-instance outcomes and times for each solver, as in the paper (which
used a 120 s timeout here instead of Table 1/2's 10 s).
"""

import argparse

from repro.bench.runner import BenchmarkRunner, SOLVERS
from repro.bench.tables import format_per_instance
from repro.symbex.common import Instance
from repro.symbex.luhn import luhn_problem


def instances_for(max_loops=12):
    return [Instance("luhn-%02d" % k, luhn_problem(k), "sat")
            for k in range(2, max_loops + 1)]


def run(timeout=120.0, max_loops=12, solver_names=SOLVERS, jobs=1):
    runner = BenchmarkRunner(timeout=timeout, jobs=jobs)
    instances = instances_for(max_loops)
    outcomes = runner.run_suite(instances, list(solver_names))
    rows = []
    for i, instance in enumerate(instances):
        rows.append((instance.name,
                     {name: outcomes[name][i] for name in solver_names}))
    return rows


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--max-loops", type=int, default=12)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark grid")
    args = parser.parse_args(argv)
    rows = run(args.timeout, args.max_loops, jobs=args.jobs)
    print(format_per_instance(
        "Table 3: checkLuhn with 2..%d loops (pfa = Z3-Trau's procedure)"
        % args.max_loops, rows, list(SOLVERS)))


if __name__ == "__main__":
    main()
