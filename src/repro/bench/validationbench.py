"""Benchmark the validation-workload suite on both kernel backends.

``python -m repro.bench.validationbench [--count N] [--timeout S]
[--json PATH]`` runs the ``repro.symbex.validation`` families (currency,
ISO dates, IPv4, checksummed IDs — the NumSemantics workloads) under the
PFA solver with the pure and the packed kernels, plus the enumerative
baseline for reference, and reports per-family outcome counts and times.
"""

import argparse
import json

from repro.baselines import EnumerativeSolver
from repro.bench.runner import BenchmarkRunner
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.symbex import validation


def solvers():
    return {
        "pfa-pure": TrauSolver(config=SolverConfig(backend="pure")),
        "pfa-packed": TrauSolver(config=SolverConfig(backend="packed")),
        "enumerative": EnumerativeSolver(),
    }


def run(count=5, seed=0, timeout=20.0, jobs=1):
    instances = validation.generate(count=count, seed=seed)
    runner = BenchmarkRunner(solvers=solvers(), timeout=timeout, jobs=jobs)
    names = list(solvers())
    outcomes = runner.run_suite(instances, names)
    rows = []
    for i, instance in enumerate(instances):
        rows.append({
            "instance": instance.name,
            "expected": instance.expected,
            "results": {name: outcomes[name][i].as_dict()
                        for name in names},
        })
    summary = {}
    for name in names:
        per_solver = [outcomes[name][i] for i in range(len(instances))]
        summary[name] = {
            "solved": sum(1 for o in per_solver
                          if o.classification in ("SAT", "UNSAT")),
            "incorrect": sum(1 for o in per_solver
                             if o.classification == "INCORRECT"),
            "timeout": sum(1 for o in per_solver
                           if o.classification == "TIMEOUT"),
            "unknown": sum(1 for o in per_solver
                           if o.classification == "UNKNOWN"),
            "total_seconds": round(sum(o.seconds for o in per_solver), 2),
        }
    return {"suite": "validation", "count": len(instances),
            "timeout": timeout, "summary": summary, "rows": rows}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=20.0)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--json", default=None,
                        help="write the full report to this path")
    args = parser.parse_args(argv)
    report = run(args.count, args.seed, args.timeout, args.jobs)
    for name, stats in report["summary"].items():
        print("%-12s solved=%d incorrect=%d timeout=%d unknown=%d %.1fs"
              % (name, stats["solved"], stats["incorrect"],
                 stats["timeout"], stats["unknown"],
                 stats["total_seconds"]))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print("report written to", args.json)
    return 1 if any(s["incorrect"] for s in report["summary"].values()) \
        else 0


if __name__ == "__main__":
    raise SystemExit(main())
