"""Export the generated benchmark suites as SMT-LIB 2 files.

``python -m repro.bench.export --out DIR [--count N] [--seed S]`` writes
every suite of Tables 1 and 2 plus the Luhn ladder under DIR, one ``.smt2``
file per instance with the certified status in ``(set-info :status ...)``.
This makes the reproduction's workloads usable by any external SMT solver.
"""

import argparse
import os

from repro.smtlib import problem_to_smtlib
from repro.symbex import (
    cvc4, fuzz, javascript, leetcode, pyex, pythonlib, validation,
)
from repro.symbex.common import Instance
from repro.symbex.luhn import luhn_problem


def all_suites(count=10, seed=0, luhn_max=12):
    """Every generated suite: name -> list of instances."""
    suites = {
        "pyex": pyex.generate(count, seed),
        "leetcode_basic": leetcode.generate(count, seed, basic_only=True),
        "leetcode_conv": leetcode.generate(count, seed,
                                           conversions_only=True),
        "stringfuzz": fuzz.generate(count, seed),
        "cvc4pred": cvc4.generate(count, seed, flavor="pred"),
        "cvc4term": cvc4.generate(count, seed, flavor="term"),
        "pythonlib": pythonlib.generate(count, seed),
        "javascript": javascript.generate(count, seed),
        "luhn": [Instance("luhn-%02d" % k, luhn_problem(k), "sat")
                 for k in range(2, luhn_max + 1)],
        "validation": validation.generate(count, seed),
    }
    return suites


def export_suites(out_dir, count=10, seed=0, luhn_max=12):
    """Write every instance; returns the number of files written."""
    written = 0
    skipped = 0
    for suite, instances in all_suites(count, seed, luhn_max).items():
        directory = os.path.join(out_dir, suite)
        os.makedirs(directory, exist_ok=True)
        for instance in instances:
            try:
                text = problem_to_smtlib(instance.problem,
                                         expected=instance.expected)
            except Exception:
                skipped += 1      # e.g. unprintable derived automaton
                continue
            name = instance.name.split("/")[-1] + ".smt2"
            with open(os.path.join(directory, name), "w") as handle:
                handle.write(text)
            written += 1
    return written, skipped


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--luhn-max", type=int, default=12)
    args = parser.parse_args(argv)
    written, skipped = export_suites(args.out, args.count, args.seed,
                                     args.luhn_max)
    print("wrote %d instances to %s (%d unprintable skipped)"
          % (written, args.out, skipped))


if __name__ == "__main__":
    main()
