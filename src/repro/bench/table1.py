"""Table 1: basic string constraints across five suites.

Run with ``python -m repro.bench.table1 [--count N] [--timeout S]``.
The suites mirror the paper's PyEx / LeetCode / StringFuzz / cvc4pred /
cvc4term families (generated; see DESIGN.md Section 5 for the
substitution rationale); instance counts default to a laptop-scale sweep.
"""

import argparse

from repro.bench.runner import BenchmarkRunner, SOLVERS
from repro.bench.tables import format_table, summarize
from repro.symbex import cvc4, fuzz, leetcode, pyex


def suites_for(count, seed=0):
    """The five Table 1 suites at *count* instances each."""
    return [
        ("PyEx", pyex.generate(count, seed)),
        ("LeetCode", leetcode.generate(count, seed, basic_only=True)),
        ("StringFuzz", fuzz.generate(count, seed)),
        ("cvc4pred", cvc4.generate(count, seed, flavor="pred")),
        ("cvc4term", cvc4.generate(count, seed, flavor="term")),
    ]


def run(count=10, timeout=10.0, solver_names=SOLVERS, seed=0, jobs=1):
    runner = BenchmarkRunner(timeout=timeout, jobs=jobs)
    results = []
    for suite_name, instances in suites_for(count, seed):
        outcomes = runner.run_suite(instances, list(solver_names))
        results.append((suite_name, summarize(outcomes)))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10,
                        help="instances per suite")
    parser.add_argument("--timeout", type=float, default=10.0,
                        help="per-instance timeout (seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark grid")
    args = parser.parse_args(argv)
    results = run(args.count, args.timeout, seed=args.seed, jobs=args.jobs)
    print(format_table(
        "Table 1: basic string constraint benchmarks "
        "(pfa = Z3-Trau's procedure)", results, list(SOLVERS)))


if __name__ == "__main__":
    main()
