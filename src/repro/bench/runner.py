"""Per-instance benchmark execution with validation.

Mirrors the paper's methodology (Section 9): each instance runs under a
per-instance timeout; a SAT answer is validated by substituting the model
into the constraints (their "validator"); answers are classified as

* SAT / UNSAT        — solved, and consistent with ground truth,
* UNKNOWN            — the solver gave up within the time budget,
* TIMEOUT            — the budget expired,
* ERROR              — the solver crashed,
* INCORRECT          — the answer contradicts the certified ground truth
                       or the model fails validation.

With ``jobs > 1`` the (instance, solver) grid runs on the shared
supervised :class:`~repro.serve.pool.WorkerPool` (the same engine under
``repro.serve``): a worker that hangs past the per-instance timeout
(plus a grace period) is hard-killed and the task retried once in a
fresh worker — a second hang classifies as TIMEOUT with answer
``"hard-killed"``.  A worker that *dies* (segfault, OOM kill) is
likewise retried once; a second death classifies as ERROR carrying the
exit code, never as TIMEOUT.  One bad instance therefore costs at most
``2 * (timeout + grace)`` wall-clock and cannot wedge or skew a whole
table run.  Every outcome records how it got there: ``retries`` counts
the requeues and ``worker_exits`` the exit codes of the failed
attempts, so a retried-then-ok task is distinguishable from a clean run
in ``--results-json`` output and the ablation stats.
"""

import time
import traceback

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.core.solver import TrauSolver
from repro.obs import Metrics, Tracer, phase_seconds, scope
from repro.serve.pool import PoolEvent, WorkerPool
from repro.strings.eval import check_model

SAT, UNSAT, UNKNOWN, TIMEOUT, ERROR, INCORRECT = (
    "SAT", "UNSAT", "UNKNOWN", "TIMEOUT", "ERROR", "INCORRECT")

OUTCOME_ROWS = [SAT, UNSAT, UNKNOWN, TIMEOUT, ERROR, INCORRECT]


def default_solvers():
    """The comparison line-up of every table.

    ``pfa`` is the paper's contribution (Z3-Trau's role); ``splitting``
    plays the DPLL(T) splitting family (CVC4/Z3); ``enumerative`` plays
    the naive-search role (Z3Str3's row in our tables).
    """
    return {
        "pfa": TrauSolver(),
        "splitting": SplittingSolver(),
        "enumerative": EnumerativeSolver(),
    }


SOLVERS = ("pfa", "splitting", "enumerative")


class RunOutcome:
    """Result of one (solver, instance) execution.

    ``stats`` carries the per-query telemetry (phase-duration breakdown,
    refinement rounds, SAT/simplex counters) when the runner collects
    metrics; empty otherwise.  ``retries`` counts supervised requeues
    (hang or crash) that preceded this outcome and ``worker_exits`` the
    exit codes of those failed attempts (``"hard-killed"`` for hangs).
    """

    __slots__ = ("instance", "solver", "classification", "seconds", "answer",
                 "stats", "retries", "worker_exits")

    def __init__(self, instance, solver, classification, seconds, answer,
                 stats=None, retries=0, worker_exits=()):
        self.instance = instance
        self.solver = solver
        self.classification = classification
        self.seconds = seconds
        self.answer = answer
        self.stats = stats or {}
        self.retries = retries
        self.worker_exits = list(worker_exits)

    def as_dict(self):
        """JSON-able row: identity, timing, supervision history, and the
        telemetry stats."""
        row = {
            "instance": self.instance,
            "solver": self.solver,
            "classification": self.classification,
            "seconds": self.seconds,
            "answer": self.answer,
            "retries": self.retries,
        }
        if self.worker_exits:
            row["worker_exits"] = list(self.worker_exits)
        if self.stats:
            row["stats"] = dict(self.stats)
        return row

    def __repr__(self):
        return "%s on %s: %s (%.2fs)" % (self.solver, self.instance,
                                         self.classification, self.seconds)


class BenchmarkRunner:
    """Runs suites of instances against the solver line-up.

    With ``collect_stats=True`` every solve runs under a fresh
    ``repro.obs`` tracer/metrics context and the outcome rows carry the
    per-phase breakdown and counters — the data the ablation tables use
    to report *why* a configuration is slower.  Off by default so timing
    tables measure the un-instrumented solver.
    """

    def __init__(self, solvers=None, timeout=10.0, collect_stats=False,
                 jobs=1, grace=5.0):
        self.solvers = solvers or default_solvers()
        self.timeout = timeout
        self.collect_stats = collect_stats
        self.jobs = max(1, int(jobs))
        self.grace = float(grace)

    def run_instance(self, instance, solver_name):
        solver = self.solvers[solver_name]
        tracer = Tracer() if self.collect_stats else None
        metrics = Metrics() if self.collect_stats else None
        start = time.monotonic()
        try:
            with scope(tracer, metrics):
                result = solver.solve(instance.problem, timeout=self.timeout)
        except Exception:
            return RunOutcome(instance.name, solver_name, ERROR,
                              time.monotonic() - start,
                              traceback.format_exc(limit=3))
        elapsed = time.monotonic() - start
        classification = self._classify(instance, result, elapsed)
        stats = None
        if self.collect_stats:
            # Solver stats first (phase, rounds, counters merged by
            # TrauSolver), then the span-derived phase durations; baseline
            # solvers without obs integration still get the metrics view.
            stats = dict(metrics.flat())
            stats.update(result.stats)
            stats.update(phase_seconds(tracer))
        return RunOutcome(instance.name, solver_name, classification,
                          elapsed, result.status, stats=stats)

    def _classify(self, instance, result, elapsed):
        if result.status == "unknown":
            return TIMEOUT if elapsed >= self.timeout else UNKNOWN
        if result.status == "sat":
            # Concrete validation is the ground truth: a validated model
            # proves SAT even against a mislabeled instance.
            if result.model is None or not check_model(instance.problem,
                                                       result.model):
                return INCORRECT
            return SAT
        if result.status == "unsat":
            if instance.expected == "sat":
                return INCORRECT
            return UNSAT
        return ERROR

    def run_suite(self, instances, solver_names=None):
        """All outcomes: {solver: [RunOutcome, ...]}.

        With ``jobs > 1`` the (instance, solver) grid runs on supervised
        worker processes.  Results are collected by task index, so the
        output — including row order within each solver — is identical
        to the sequential run, whatever the workers' scheduling.
        """
        solver_names = solver_names or list(self.solvers)
        tasks = [(instance, name)
                 for instance in instances for name in solver_names]
        if self.jobs > 1 and len(tasks) > 1:
            rows = self._run_supervised(tasks)
        else:
            rows = [self.run_instance(instance, name)
                    for instance, name in tasks]
        outcomes = {name: [] for name in solver_names}
        for (_, name), row in zip(tasks, rows):
            outcomes[name].append(row)
        return outcomes

    # -- supervised parallel execution ------------------------------------

    def _annotate(self, outcome, retry, exits):
        """Stamp the supervision history on a finished row (and into its
        stats so the ablation breakdown can average it)."""
        outcome.retries = retry
        outcome.worker_exits = list(exits)
        if self.collect_stats and outcome.stats is not None:
            outcome.stats["retries"] = retry
        return outcome

    def _run_supervised(self, tasks):
        """Drive the task grid over the shared supervised worker pool:
        one retry for a hang or a crash, then classify."""
        results = [None] * len(tasks)
        pool = WorkerPool(
            _bench_worker_init,
            init_args=(self.solvers, self.timeout, self.collect_stats),
            jobs=self.jobs, grace=self.grace)
        state = {}      # ticket -> [task index, retry count, exit codes]
        try:
            for index, (instance, name) in enumerate(tasks):
                ticket = pool.submit((instance, name),
                                     timeout=self.timeout + self.grace)
                state[ticket] = [index, 0, []]
            remaining = len(tasks)
            while remaining:
                for event in pool.poll(1.0):
                    index, retry, exits = state.pop(event.ticket)
                    instance, name = tasks[index]
                    if event.kind == PoolEvent.RESULT:
                        results[index] = self._annotate(event.value,
                                                        retry, exits)
                        remaining -= 1
                        continue
                    failure = ("hard-killed"
                               if event.kind == PoolEvent.KILLED
                               else event.exitcode)
                    exits.append(failure)
                    if retry == 0:
                        # One retry in a fresh worker, at the head of the
                        # queue so a poison task cannot starve the rest.
                        ticket = pool.submit(
                            (instance, name),
                            timeout=self.timeout + self.grace, front=True)
                        state[ticket] = [index, 1, exits]
                        continue
                    if event.kind == PoolEvent.KILLED:
                        results[index] = RunOutcome(
                            instance.name, name, TIMEOUT,
                            self.timeout + self.grace, "hard-killed",
                            retries=retry, worker_exits=exits)
                    else:
                        results[index] = RunOutcome(
                            instance.name, name, ERROR, self.timeout,
                            "worker died with exit code %s" % event.exitcode,
                            retries=retry, worker_exits=exits)
                    remaining -= 1
        finally:
            pool.shutdown()
        return results


def _bench_worker_init(solvers, timeout, collect_stats):
    """Pool initializer: one sequential runner per worker process."""
    runner = BenchmarkRunner(solvers, timeout, collect_stats)

    def handler(payload):
        instance, name = payload
        return runner.run_instance(instance, name)

    return handler
