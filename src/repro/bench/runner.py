"""Per-instance benchmark execution with validation.

Mirrors the paper's methodology (Section 9): each instance runs under a
per-instance timeout; a SAT answer is validated by substituting the model
into the constraints (their "validator"); answers are classified as

* SAT / UNSAT        — solved, and consistent with ground truth,
* UNKNOWN            — the solver gave up within the time budget,
* TIMEOUT            — the budget expired,
* ERROR              — the solver crashed,
* INCORRECT          — the answer contradicts the certified ground truth
                       or the model fails validation.

With ``jobs > 1`` every (instance, solver) task gets its own worker
process, and the parent supervises: a worker that hangs past the
per-instance timeout (plus a grace period for interpreter overhead) is
hard-killed and the task retried once in a fresh worker — a second hang
classifies as TIMEOUT with answer ``"hard-killed"``.  A worker that
*dies* (segfault, OOM kill) is likewise retried once; a second death
classifies as ERROR carrying the exit code, never as TIMEOUT.  One bad
instance therefore costs at most ``2 * (timeout + grace)`` wall-clock
and cannot wedge or skew a whole table run.
"""

import multiprocessing
from multiprocessing import connection as _mpconn
import time
import traceback

from repro.baselines import EnumerativeSolver, SplittingSolver
from repro.core.solver import TrauSolver
from repro.obs import Metrics, Tracer, phase_seconds, scope
from repro.strings.eval import check_model

SAT, UNSAT, UNKNOWN, TIMEOUT, ERROR, INCORRECT = (
    "SAT", "UNSAT", "UNKNOWN", "TIMEOUT", "ERROR", "INCORRECT")

OUTCOME_ROWS = [SAT, UNSAT, UNKNOWN, TIMEOUT, ERROR, INCORRECT]


def default_solvers():
    """The comparison line-up of every table.

    ``pfa`` is the paper's contribution (Z3-Trau's role); ``splitting``
    plays the DPLL(T) splitting family (CVC4/Z3); ``enumerative`` plays
    the naive-search role (Z3Str3's row in our tables).
    """
    return {
        "pfa": TrauSolver(),
        "splitting": SplittingSolver(),
        "enumerative": EnumerativeSolver(),
    }


SOLVERS = ("pfa", "splitting", "enumerative")


class RunOutcome:
    """Result of one (solver, instance) execution.

    ``stats`` carries the per-query telemetry (phase-duration breakdown,
    refinement rounds, SAT/simplex counters) when the runner collects
    metrics; empty otherwise.
    """

    __slots__ = ("instance", "solver", "classification", "seconds", "answer",
                 "stats")

    def __init__(self, instance, solver, classification, seconds, answer,
                 stats=None):
        self.instance = instance
        self.solver = solver
        self.classification = classification
        self.seconds = seconds
        self.answer = answer
        self.stats = stats or {}

    def as_dict(self):
        """JSON-able row: identity, timing, and the telemetry stats."""
        row = {
            "instance": self.instance,
            "solver": self.solver,
            "classification": self.classification,
            "seconds": self.seconds,
            "answer": self.answer,
        }
        if self.stats:
            row["stats"] = dict(self.stats)
        return row

    def __repr__(self):
        return "%s on %s: %s (%.2fs)" % (self.solver, self.instance,
                                         self.classification, self.seconds)


class BenchmarkRunner:
    """Runs suites of instances against the solver line-up.

    With ``collect_stats=True`` every solve runs under a fresh
    ``repro.obs`` tracer/metrics context and the outcome rows carry the
    per-phase breakdown and counters — the data the ablation tables use
    to report *why* a configuration is slower.  Off by default so timing
    tables measure the un-instrumented solver.
    """

    def __init__(self, solvers=None, timeout=10.0, collect_stats=False,
                 jobs=1, grace=5.0):
        self.solvers = solvers or default_solvers()
        self.timeout = timeout
        self.collect_stats = collect_stats
        self.jobs = max(1, int(jobs))
        self.grace = float(grace)

    def run_instance(self, instance, solver_name):
        solver = self.solvers[solver_name]
        tracer = Tracer() if self.collect_stats else None
        metrics = Metrics() if self.collect_stats else None
        start = time.monotonic()
        try:
            with scope(tracer, metrics):
                result = solver.solve(instance.problem, timeout=self.timeout)
        except Exception:
            return RunOutcome(instance.name, solver_name, ERROR,
                              time.monotonic() - start,
                              traceback.format_exc(limit=3))
        elapsed = time.monotonic() - start
        classification = self._classify(instance, result, elapsed)
        stats = None
        if self.collect_stats:
            # Solver stats first (phase, rounds, counters merged by
            # TrauSolver), then the span-derived phase durations; baseline
            # solvers without obs integration still get the metrics view.
            stats = dict(metrics.flat())
            stats.update(result.stats)
            stats.update(phase_seconds(tracer))
        return RunOutcome(instance.name, solver_name, classification,
                          elapsed, result.status, stats=stats)

    def _classify(self, instance, result, elapsed):
        if result.status == "unknown":
            return TIMEOUT if elapsed >= self.timeout else UNKNOWN
        if result.status == "sat":
            # Concrete validation is the ground truth: a validated model
            # proves SAT even against a mislabeled instance.
            if result.model is None or not check_model(instance.problem,
                                                       result.model):
                return INCORRECT
            return SAT
        if result.status == "unsat":
            if instance.expected == "sat":
                return INCORRECT
            return UNSAT
        return ERROR

    def run_suite(self, instances, solver_names=None):
        """All outcomes: {solver: [RunOutcome, ...]}.

        With ``jobs > 1`` the (instance, solver) grid runs on supervised
        worker processes (one per task, ``jobs`` at a time).  Results are
        collected by task index, so the output — including row order
        within each solver — is identical to the sequential run, whatever
        the workers' scheduling.
        """
        solver_names = solver_names or list(self.solvers)
        tasks = [(instance, name)
                 for instance in instances for name in solver_names]
        if self.jobs > 1 and len(tasks) > 1:
            rows = self._run_supervised(tasks)
        else:
            rows = [self.run_instance(instance, name)
                    for instance, name in tasks]
        outcomes = {name: [] for name in solver_names}
        for (_, name), row in zip(tasks, rows):
            outcomes[name].append(row)
        return outcomes

    # -- supervised parallel execution ------------------------------------

    def _spawn(self, index, instance, name, retry):
        parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, self.solvers, self.timeout,
                  self.collect_stats, instance, name),
            daemon=True)
        process.start()
        child_conn.close()
        return _Attempt(index, instance, name, process, parent_conn,
                        time.monotonic() + self.timeout + self.grace, retry)

    def _run_supervised(self, tasks):
        results = [None] * len(tasks)
        queue = [(index, instance, name, 0)
                 for index, (instance, name) in enumerate(tasks)]
        live = {}
        while queue or live:
            while queue and len(live) < self.jobs:
                index, instance, name, retry = queue.pop(0)
                attempt = self._spawn(index, instance, name, retry)
                live[attempt.conn] = attempt
            wait_for = min(a.deadline for a in live.values()) \
                - time.monotonic()
            ready = _mpconn.wait(list(live), max(0.0, wait_for))
            for conn in ready:
                attempt = live.pop(conn)
                try:
                    outcome = conn.recv()
                except (EOFError, OSError):
                    outcome = None
                conn.close()
                attempt.process.join(self.grace)
                if outcome is not None:
                    results[attempt.index] = outcome
                elif attempt.retry == 0:
                    # Worker died before reporting (crash, OOM kill):
                    # one retry in a fresh process.
                    queue.insert(0, (attempt.index, attempt.instance,
                                     attempt.name, 1))
                else:
                    results[attempt.index] = RunOutcome(
                        attempt.instance.name, attempt.name, ERROR,
                        self.timeout,
                        "worker died with exit code %s"
                        % attempt.process.exitcode)
            now = time.monotonic()
            for conn in [c for c, a in live.items() if a.deadline <= now]:
                attempt = live.pop(conn)
                _kill(attempt.process)
                conn.close()
                if attempt.retry == 0:
                    queue.insert(0, (attempt.index, attempt.instance,
                                     attempt.name, 1))
                else:
                    results[attempt.index] = RunOutcome(
                        attempt.instance.name, attempt.name, TIMEOUT,
                        self.timeout + self.grace, "hard-killed")
        return results


class _Attempt:
    """One in-flight worker process and its supervision state."""

    __slots__ = ("index", "instance", "name", "process", "conn", "deadline",
                 "retry")

    def __init__(self, index, instance, name, process, conn, deadline,
                 retry):
        self.index = index
        self.instance = instance
        self.name = name
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.retry = retry


def _kill(process):
    """Hard-kill: terminate, then SIGKILL if it ignores that."""
    process.terminate()
    process.join(1.0)
    if process.is_alive():
        process.kill()
        process.join()


def _worker_main(conn, solvers, timeout, collect_stats, instance, name):
    """Child entry point: one task, one result on the pipe."""
    runner = BenchmarkRunner(solvers, timeout, collect_stats)
    conn.send(runner.run_instance(instance, name))
    conn.close()
