"""Assembly and text rendering of the paper's result tables."""

import json

from repro.bench.runner import OUTCOME_ROWS


def summarize(outcomes):
    """Count classifications: {solver: {classification: count}}."""
    summary = {}
    for solver, runs in outcomes.items():
        counts = {row: 0 for row in OUTCOME_ROWS}
        for run in runs:
            counts[run.classification] += 1
        summary[solver] = counts
    return summary


def format_table(title, suites, solver_names):
    """Render the paper's table layout.

    *suites* is ``[(suite_name, summary_dict), ...]`` where each summary
    maps solver name to classification counts.  A Total block is appended,
    matching Tables 1 and 2.
    """
    lines = [title, "=" * len(title), ""]
    header = "%-12s %-10s" % ("suite", "outcome")
    for name in solver_names:
        header += " %12s" % name
    lines.append(header)
    lines.append("-" * len(header))

    totals = {name: {row: 0 for row in OUTCOME_ROWS}
              for name in solver_names}
    for suite_name, summary in suites:
        for row in OUTCOME_ROWS:
            text = "%-12s %-10s" % (suite_name, row)
            for name in solver_names:
                count = summary.get(name, {}).get(row, 0)
                totals[name][row] += count
                text += " %12d" % count
            lines.append(text)
            suite_name = ""
        lines.append("-" * len(header))
    if len(suites) > 1:
        label = "Total"
        for row in OUTCOME_ROWS:
            text = "%-12s %-10s" % (label, row)
            for name in solver_names:
                text += " %12d" % totals[name][row]
            lines.append(text)
            label = ""
    return "\n".join(lines)


def aggregate_stats(runs, keys=None):
    """Mean of numeric per-run stats across a list of RunOutcomes.

    *keys* restricts the aggregation; by default every numeric stat that
    appears in any run is averaged (over the runs that report it).
    """
    sums = {}
    counts = {}
    for run in runs:
        for key, value in run.stats.items():
            if keys is not None and key not in keys:
                continue
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            sums[key] = sums.get(key, 0) + value
            counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}


def format_stats_breakdown(title, outcomes, keys):
    """Per-solver mean-stat table (phase seconds, rounds, counters)."""
    lines = [title]
    solver_width = max([len(s) for s in outcomes] + [6])
    header = "%-*s" % (solver_width, "solver")
    for key in keys:
        header += " %14s" % key
    lines.append(header)
    lines.append("-" * len(header))
    for solver, runs in outcomes.items():
        means = aggregate_stats(runs, keys=set(keys))
        text = "%-*s" % (solver_width, solver)
        for key in keys:
            value = means.get(key)
            if value is None:
                text += " %14s" % "-"
            elif key.endswith("_s") or key == "elapsed_s":
                text += " %14.3f" % value
            else:
                text += " %14.1f" % value
        lines.append(text)
    return "\n".join(lines)


def dump_outcomes_jsonl(outcomes, fh=None):
    """Write ``{solver: [RunOutcome]}`` as JSON-lines benchmark rows.

    Each line is one ``RunOutcome.as_dict()`` — timings plus, when the
    runner collected stats, the phase breakdown and solver counters.
    Returns the text when *fh* is None.
    """
    lines = []
    for solver in sorted(outcomes):
        for run in outcomes[solver]:
            lines.append(json.dumps(run.as_dict(), sort_keys=True,
                                    default=str))
    text = "\n".join(lines) + ("\n" if lines else "")
    if fh is None:
        return text
    fh.write(text)
    return None


def format_per_instance(title, rows, solver_names):
    """Render Table 3's per-instance layout.

    *rows* is ``[(label, {solver: RunOutcome})]``.
    """
    lines = [title, "=" * len(title), ""]
    header = "%-12s" % "instance"
    for name in solver_names:
        header += " %18s" % name
    lines.append(header)
    lines.append("-" * len(header))
    for label, by_solver in rows:
        text = "%-12s" % label
        for name in solver_names:
            run = by_solver.get(name)
            if run is None:
                cell = "-"
            elif run.classification in ("SAT", "UNSAT"):
                cell = "%s(%.2fs)" % (run.classification, run.seconds)
            else:
                cell = run.classification
            text += " %18s" % cell
        lines.append(text)
    return "\n".join(lines)
