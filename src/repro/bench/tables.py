"""Assembly and text rendering of the paper's result tables."""

from repro.bench.runner import OUTCOME_ROWS


def summarize(outcomes):
    """Count classifications: {solver: {classification: count}}."""
    summary = {}
    for solver, runs in outcomes.items():
        counts = {row: 0 for row in OUTCOME_ROWS}
        for run in runs:
            counts[run.classification] += 1
        summary[solver] = counts
    return summary


def format_table(title, suites, solver_names):
    """Render the paper's table layout.

    *suites* is ``[(suite_name, summary_dict), ...]`` where each summary
    maps solver name to classification counts.  A Total block is appended,
    matching Tables 1 and 2.
    """
    lines = [title, "=" * len(title), ""]
    header = "%-12s %-10s" % ("suite", "outcome")
    for name in solver_names:
        header += " %12s" % name
    lines.append(header)
    lines.append("-" * len(header))

    totals = {name: {row: 0 for row in OUTCOME_ROWS}
              for name in solver_names}
    for suite_name, summary in suites:
        for row in OUTCOME_ROWS:
            text = "%-12s %-10s" % (suite_name, row)
            for name in solver_names:
                count = summary.get(name, {}).get(row, 0)
                totals[name][row] += count
                text += " %12d" % count
            lines.append(text)
            suite_name = ""
        lines.append("-" * len(header))
    if len(suites) > 1:
        label = "Total"
        for row in OUTCOME_ROWS:
            text = "%-12s %-10s" % (label, row)
            for name in solver_names:
                text += " %12d" % totals[name][row]
            lines.append(text)
            label = ""
    return "\n".join(lines)


def format_per_instance(title, rows, solver_names):
    """Render Table 3's per-instance layout.

    *rows* is ``[(label, {solver: RunOutcome})]``.
    """
    lines = [title, "=" * len(title), ""]
    header = "%-12s" % "instance"
    for name in solver_names:
        header += " %18s" % name
    lines.append(header)
    lines.append("-" * len(header))
    for label, by_solver in rows:
        text = "%-12s" % label
        for name in solver_names:
            run = by_solver.get(name)
            if run is None:
                cell = "-"
            elif run.classification in ("SAT", "UNSAT"):
                cell = "%s(%.2fs)" % (run.classification, run.seconds)
            else:
                cell = run.classification
            text += " %18s" % cell
        lines.append(text)
    return "\n".join(lines)
