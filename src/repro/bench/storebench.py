"""Warm-start benchmark for the persistent solve store.

Run with ``python -m repro.bench.storebench --json BENCH_PR8.json``.

The load is repeated traffic from the differential generator (the same
seeded problem space the fuzzer and the serve soak draw from): N
distinct problems, solved again and again the way a symbolic-execution
service sees the same path conditions from many clients.  The benchmark
compares two worker generations sharing one store directory:

* **cold** — a fresh worker boots against an *empty* store and solves
  the whole traffic once (every lookup misses, every verdict is
  written);
* **warm** — the worker "dies" (in-process caches cleared, store
  handles closed) and the next generation solves the same traffic
  against the now-populated store, repeated ``--repeats`` times.

Reported per phase: p50/p95/p99/total wall latency, the verdict-store
hit rate, and the ``store.*`` counters; the ``deltas`` block holds the
cold/warm p50 and p99 ratios the PR gate reads.  Because warm hits are
validate-on-read (a SAT model is re-checked by the evaluator before it
is believed), the warm numbers price in the certificate check — the
speedup is what remains after paying for trust.
"""

import argparse
import json
import random
import statistics
import sys
import tempfile
import time

from repro import cache, store
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.diff.generator import GenConfig, generate
from repro.obs import Metrics


def make_traffic(distinct, seed):
    """N distinct generated problems, reproducible from *seed*."""
    rng = random.Random(seed)
    config = GenConfig()
    return [generate(rng, config, seed_index=i).problem
            for i in range(distinct)]


def reboot():
    """Simulate a worker-generation boundary: every in-process cache
    and open store handle dies; only the store directory survives."""
    store.reset()
    cache.clear_all()


def percentile(values, q):
    ordered = sorted(values)
    if not ordered:
        return None
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def run_pass(problems, store_path, timeout):
    """Solve the traffic once; returns (latencies, counters, statuses)."""
    latencies = []
    counters = {}
    statuses = {}
    for problem in problems:
        metrics = Metrics()
        solver = TrauSolver(config=SolverConfig(store_path=store_path,
                                                max_rounds=8),
                            metrics=metrics)
        start = time.monotonic()
        result = solver.solve(problem, timeout=timeout)
        latencies.append(time.monotonic() - start)
        statuses[result.status] = statuses.get(result.status, 0) + 1
        for key, value in metrics.flat().items():
            if key.startswith("store."):
                counters[key] = counters.get(key, 0) + value
    return latencies, counters, statuses


def summarize(latencies, counters, statuses):
    hits = counters.get("store.verdict.hits", 0)
    misses = counters.get("store.verdict.misses", 0)
    row = {
        "solves": len(latencies),
        "p50_s": round(percentile(latencies, 0.50), 5),
        "p95_s": round(percentile(latencies, 0.95), 5),
        "p99_s": round(percentile(latencies, 0.99), 5),
        "mean_s": round(statistics.mean(latencies), 5),
        "total_s": round(sum(latencies), 4),
        "statuses": dict(sorted(statuses.items())),
        "counters": dict(sorted(counters.items())),
    }
    if hits + misses:
        row["verdict_hit_rate"] = round(hits / (hits + misses), 4)
    return row


def run_benchmark(distinct, repeats, seed, store_path, timeout):
    problems = make_traffic(distinct, seed)

    reboot()
    cold_lat, cold_ctr, cold_sts = run_pass(problems, store_path, timeout)
    cold = summarize(cold_lat, cold_ctr, cold_sts)

    warm_lat, warm_ctr, warm_sts = [], {}, {}
    for _ in range(max(1, repeats)):
        reboot()
        lat, ctr, sts = run_pass(problems, store_path, timeout)
        warm_lat.extend(lat)
        for key, value in ctr.items():
            warm_ctr[key] = warm_ctr.get(key, 0) + value
        for key, value in sts.items():
            warm_sts[key] = warm_sts.get(key, 0) + value
    warm = summarize(warm_lat, warm_ctr, warm_sts)

    deltas = {}
    for tag in ("p50_s", "p95_s", "p99_s", "total_s"):
        if warm[tag]:
            deltas[tag.replace("_s", "_speedup")] = round(
                cold[tag] / warm[tag], 3)
    document = {
        "python": sys.version.split()[0],
        "traffic": {"distinct": distinct, "repeats": repeats, "seed": seed},
        "cold": cold,
        "warm": warm,
        "deltas": deltas,
    }
    opened = store.get_store(store_path)
    if opened is not None:
        document["store"] = opened.stats()
    return document


def render_table(document):
    """The cold-vs-warm table README quotes."""
    lines = ["%-6s %8s %9s %9s %9s %9s %10s"
             % ("phase", "solves", "p50", "p95", "p99", "total", "hit rate")]
    for tag in ("cold", "warm"):
        row = document[tag]
        rate = row.get("verdict_hit_rate")
        lines.append("%-6s %8d %8.3fs %8.3fs %8.3fs %8.2fs %10s"
                     % (tag, row["solves"], row["p50_s"], row["p95_s"],
                        row["p99_s"], row["total_s"],
                        "--" if rate is None else "%.0f%%" % (100 * rate)))
    deltas = document["deltas"]
    lines.append("speedup (cold/warm): p50 %.2fx  p99 %.2fx  total %.2fx"
                 % (deltas.get("p50_speedup", 0),
                    deltas.get("p99_speedup", 0),
                    deltas.get("total_speedup", 0)))
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="FILE",
                        help="write the result document to FILE")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="store directory (default: a fresh temp dir, "
                             "so the cold phase is genuinely cold)")
    parser.add_argument("--distinct", type=int, default=24,
                        help="distinct problems in the traffic mix")
    parser.add_argument("--repeats", type=int, default=3,
                        help="warm worker generations to run")
    parser.add_argument("--seed", type=int, default=0,
                        help="traffic generator seed")
    parser.add_argument("--timeout", type=float, default=20.0,
                        help="per-solve timeout in seconds")
    parser.add_argument("--quick", action="store_true",
                        help="reduced set for CI smoke runs")
    args = parser.parse_args(argv)

    distinct = 8 if args.quick else args.distinct
    repeats = 2 if args.quick else args.repeats
    if args.store:
        document = run_benchmark(distinct, repeats, args.seed, args.store,
                                 args.timeout)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-store-") as root:
            document = run_benchmark(distinct, repeats, args.seed, root,
                                     args.timeout)
    print(render_table(document))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json)
    return document


if __name__ == "__main__":
    main()
