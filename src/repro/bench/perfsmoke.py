"""Performance smoke benchmark: the multi-round / conversion-heavy set.

Run with ``python -m repro.bench.perfsmoke --json BENCH_PR2.json``.

The set concentrates on the workloads the incremental-solving and
memoization work targets: the Luhn ladder at k >= 6, a toNum ladder whose
instances need two to four refinement rounds, and the hinted PythonLib
conversion instances.  Per instance it reports status, wall time, rounds,
and the cache/incrementality counters (``cache.*``, ``smt.clauses_reused``,
``flatten.fragments_reused``, ``strategy.pfas_reused``).

The module deliberately imports only interfaces that predate the caching
work, and probes the new config knobs dynamically — so the *same file* can
run inside a checkout of an older commit to measure a baseline.  Feed such
a run back via ``--baseline FILE`` to emit per-instance ratios and their
geometric mean alongside the current numbers.
"""

import argparse
import json
import math
import sys
import time

from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.logic.formula import ge
from repro.logic.terms import var
from repro.obs import Metrics
from repro.symbex import pythonlib
from repro.symbex.luhn import luhn_problem
from repro.strings.ops import ProblemBuilder

COUNTER_KEYS = (
    "smt.clauses_reused", "smt.fragments_reused", "smt.fragments_encoded",
    "flatten.fragments_reused", "strategy.pfas_reused",
    "cache.nfa.determinize.hits", "cache.nfa.determinize.misses",
    "cache.nfa.minimize.hits", "cache.nfa.minimize.misses",
    "cache.nfa.intersect.hits", "cache.nfa.intersect.misses",
    "cache.nfa.trim.hits", "cache.nfa.trim.misses",
    "cache.regex.compile.hits", "cache.regex.compile.misses",
)


def make_config(no_cache=False, no_incremental=False, backend=None):
    """A solver config honouring the flags, on old codebases too.

    ``max_rounds`` is raised from the default 3 so the deep toNum rungs
    (four refinement rounds) stay solvable; the knob predates this
    module, so baselines honour it too.
    """
    kwargs = {"max_rounds": 8,
              "use_caches": not no_cache,
              "use_incremental": not no_incremental}
    if backend:
        kwargs["backend"] = backend
    try:
        return SolverConfig(**kwargs)
    except TypeError:
        # Pre-kernels checkout: no backend knob, the pure loops run.
        kwargs.pop("backend", None)
    try:
        return SolverConfig(**kwargs)
    except TypeError:
        # The knobs do not exist here (pre-caching checkout): the
        # behaviour is the uncached, non-incremental one regardless.
        return SolverConfig(max_rounds=8)


def active_backend(requested=None):
    """The kernel backend a run with *requested* actually uses."""
    try:
        from repro import kernels
    except ImportError:
        return "pure"          # pre-kernels checkout
    return kernels.resolve(requested)


def tonum_ladder(power):
    """``toNum(x) >= 10^power`` with no hints: a multi-round instance
    (the initial numeric PFA is too short, so m must double)."""
    builder = ProblemBuilder()
    x = builder.str_var("x")
    n = builder.to_num(x)
    builder.require_int(ge(var(n), 10 ** power))
    return builder.problem


def perf_instances(quick=False):
    """(suite, name, problem, timeout_s) rows of the smoke set."""
    rows = []
    luhn_ks = (6,) if quick else (6, 7, 8)
    for k in luhn_ks:
        rows.append(("luhn", "luhn-%d" % k, luhn_problem(k), 120.0))
    powers = (6, 20) if quick else (6, 12, 20, 28)
    for p in powers:
        rows.append(("tonum", "tonum-1e%d" % p, tonum_ladder(p), 60.0))
    count = 2 if quick else 6
    for instance in pythonlib.generate(count, 0):
        rows.append(("pythonlib", instance.name, instance.problem, 60.0))
    return rows


def run_set(no_cache=False, no_incremental=False, reps=1, quick=False,
            aggregator=None, profiler=None, backend=None):
    """Run the smoke set; returns the JSON-able result document.

    *aggregator* (a ``repro.obs.pipeline.TelemetryAggregator``) collects
    every instance's counters and per-phase histograms through the same
    merge path the serving layer uses; *profiler* (a
    ``repro.obs.profile.SamplingProfiler``) stays armed across the whole
    set.  Both are None on old checkouts, where the plain path runs.
    """
    results = []
    suite_seconds = {}
    for suite, name, problem, timeout in perf_instances(quick):
        best = None
        status = None
        stats = {}
        for _ in range(max(1, reps)):
            config = make_config(no_cache, no_incremental, backend)
            metrics = Metrics()
            solver = TrauSolver(config=config, metrics=metrics)
            start = time.monotonic()
            if aggregator is not None or profiler is not None:
                from repro.obs import Tracer, scope
                tracer = Tracer()
                with scope(tracer, metrics):
                    if profiler is not None:
                        with profiler:
                            result = solver.solve(problem, timeout=timeout)
                    else:
                        result = solver.solve(problem, timeout=timeout)
                if aggregator is not None:
                    aggregator.ingest_scope(tracer, metrics)
            else:
                result = solver.solve(problem, timeout=timeout)
            elapsed = time.monotonic() - start
            if best is None or elapsed < best:
                best = elapsed
                status = result.status
                stats = result.stats
        row = {"suite": suite, "name": name, "status": status,
               "seconds": round(best, 4),
               "rounds": stats.get("rounds", 0)}
        counters = {k: stats[k] for k in COUNTER_KEYS if stats.get(k)}
        if counters:
            row["counters"] = counters
        results.append(row)
        suite_seconds[suite] = suite_seconds.get(suite, 0.0) + best
        print("  %-12s %-24s %-8s %7.3fs" % (suite, name, status, best),
              flush=True)
    return {
        "python": sys.version.split()[0],
        "backend": active_backend(backend),
        "config": {"no_cache": no_cache, "no_incremental": no_incremental,
                   "reps": reps, "quick": quick},
        "results": results,
        "suite_seconds": {k: round(v, 4)
                          for k, v in sorted(suite_seconds.items())},
        "total_seconds": round(sum(suite_seconds.values()), 4),
    }


GATE_SUITES = ("luhn", "tonum")
"""The multi-round suites the speedup gate is computed over.

The pythonlib suite stays out of the gate for two reasons: its instances
are tiny (constant solver overhead dominates), and its generator draws
from hash-order-sensitive collections, so two *processes* (e.g. a
baseline checkout and the current one) may generate different instances
under the same name unless ``PYTHONHASHSEED`` is pinned.
"""


def _geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def compare(document, baseline):
    """Attach per-instance speedup ratios and their geometric means.

    Rows whose status differs from the baseline's row are skipped (the
    two runs did not solve the same problem — see :data:`GATE_SUITES`).
    ``geomean_speedup`` covers the gate suites; ``geomean_speedup_all``
    covers every comparable row.
    """
    base_by_name = {row["name"]: row for row in baseline.get("results", [])}
    ratios = []
    gate_ratios = []
    suite_ratios = {}
    for row in document["results"]:
        base = base_by_name.get(row["name"])
        if base is None or not row["seconds"]:
            continue
        if base.get("status") != row["status"]:
            row["baseline_status_differs"] = base.get("status")
            continue
        ratio = base["seconds"] / row["seconds"]
        row["baseline_seconds"] = base["seconds"]
        row["speedup"] = round(ratio, 3)
        ratios.append(ratio)
        suite_ratios.setdefault(row.get("suite"), []).append(ratio)
        if row.get("suite") in GATE_SUITES:
            gate_ratios.append(ratio)
    document["baseline"] = {
        "results": baseline.get("results", []),
        "suite_seconds": baseline.get("suite_seconds", {}),
        "total_seconds": baseline.get("total_seconds"),
    }
    if gate_ratios:
        document["geomean_speedup"] = round(_geomean(gate_ratios), 3)
    if ratios:
        document["geomean_speedup_all"] = round(_geomean(ratios), 3)
    if suite_ratios:
        # Per-suite means drive the CI backend-regression gate: a packed
        # run compared against a pure run of the same commit must not be
        # slower on any suite.
        document["suite_geomean_speedup"] = {
            suite: round(_geomean(rs), 3)
            for suite, rs in sorted(suite_ratios.items()) if suite}
    return document


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="FILE",
                        help="write the result document to FILE")
    parser.add_argument("--baseline", metavar="FILE",
                        help="previous --json output to compare against")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the memoization caches")
    parser.add_argument("--no-incremental", action="store_true",
                        help="disable cross-round incremental solving")
    parser.add_argument("--backend", choices=("auto", "pure", "packed"),
                        default=None,
                        help="kernel backend to benchmark (default: auto)")
    parser.add_argument("--reps", type=int, default=1,
                        help="repetitions per instance (best-of)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced set for CI smoke runs")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write a Prometheus snapshot of the merged "
                             "per-instance telemetry to FILE")
    parser.add_argument("--profile-hot", type=int, metavar="N",
                        help="sample the solver deterministically and report "
                             "the N hottest (phase, function) rows")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="persistent solve store to read/extend during "
                             "the run (degrades to a no-op on checkouts "
                             "without repro.store)")
    args = parser.parse_args(argv)

    if args.store:
        try:
            from repro import store as _repro_store
            _repro_store.set_default_path(args.store)
        except ImportError:
            print("perfsmoke: --store needs the persistent store; "
                  "skipping on this checkout", file=sys.stderr)

    # The telemetry pipeline postdates this module's baseline contract, so
    # both knobs degrade to no-ops on checkouts that lack repro.obs.*.
    aggregator = profiler = None
    if args.metrics_out:
        try:
            from repro.obs.pipeline import TelemetryAggregator
            aggregator = TelemetryAggregator()
        except ImportError:
            print("perfsmoke: --metrics-out needs the telemetry pipeline; "
                  "skipping on this checkout", file=sys.stderr)
    if args.profile_hot:
        try:
            from repro.obs.profile import SamplingProfiler
            profiler = SamplingProfiler()
        except ImportError:
            print("perfsmoke: --profile-hot needs the sampling profiler; "
                  "skipping on this checkout", file=sys.stderr)

    print("backend: %s" % active_backend(args.backend), flush=True)
    document = run_set(args.no_cache, args.no_incremental, args.reps,
                       args.quick, aggregator=aggregator, profiler=profiler,
                       backend=args.backend)
    if profiler is not None:
        print(profiler.report(args.profile_hot))
        document["profile"] = profiler.to_dict(args.profile_hot)
    if aggregator is not None:
        from repro.obs.prometheus import write_snapshot
        write_snapshot(args.metrics_out, aggregator)
        print("wrote %s" % args.metrics_out)
    if args.baseline:
        with open(args.baseline) as handle:
            document = compare(document, json.load(handle))
        if "geomean_speedup" in document:
            print("geometric-mean speedup vs baseline (%s): %.3fx"
                  % ("+".join(GATE_SUITES), document["geomean_speedup"]))
        if "geomean_speedup_all" in document:
            print("geometric-mean speedup vs baseline (all): %.3fx"
                  % document["geomean_speedup_all"])
        for suite, value in sorted(
                document.get("suite_geomean_speedup", {}).items()):
            print("  %-12s %.3fx" % (suite, value))
    print("total: %.2fs" % document["total_seconds"])
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote %s" % args.json)


if __name__ == "__main__":
    main()
