"""Ablation studies for the design choices DESIGN.md calls out.

* **numeric-PFA ablation** — solve conversion instances with the numeric
  PFA machinery versus forcing general loop-based PFAs for conversion
  variables (which the paper shows induces exponential value terms; our
  flattening rejects those, so the ablated configuration must fall back
  to refinement rounds and typically answers UNKNOWN).  Demonstrates why
  Section 8's shape matters.
* **over-approximation ablation** — UNSAT-heavy suites with and without
  the over-approximation phase; without it the solver can only answer
  UNKNOWN on unsatisfiable inputs.
* **static-analysis ablation** — Luhn with and without the length
  analysis that turns domains into straight lines.

Each ablation runs with ``collect_stats=True``, so alongside the outcome
counts it reports *where the time went*: mean per-phase seconds,
refinement rounds, and solver counters from ``repro.obs`` — the point is
to show **why** a configuration is slower, not just that it is.

Run with ``python -m repro.bench.ablation [--results-json FILE]``.
"""

import argparse
import time

from repro.bench.runner import BenchmarkRunner
from repro.bench.tables import (
    dump_outcomes_jsonl, format_stats_breakdown, format_table, summarize,
)
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.symbex import cvc4, pythonlib
from repro.symbex.luhn import luhn_problem

BREAKDOWN_KEYS = ("elapsed_s", "phase.overapprox_s", "phase.round_s",
                  "rounds", "smt.iterations", "sat.conflicts", "retries")


def overapprox_ablation(count=12, timeout=10.0, seed=0, jobs=1):
    """UNSAT-heavy suite, over-approximation on versus off."""
    instances = cvc4.generate(count, seed, flavor="pred")
    solvers = {
        "with-oa": TrauSolver(),
        "without-oa": TrauSolver(config=SolverConfig(
            use_overapproximation=False)),
    }
    runner = BenchmarkRunner(solvers=solvers, timeout=timeout,
                             collect_stats=True, jobs=jobs)
    outcomes = runner.run_suite(instances)
    return [("cvc4pred", summarize(outcomes))], outcomes


def static_analysis_ablation(max_loops=6, timeout=30.0):
    """Luhn ladder with and without the length-hint static analysis."""
    rows = []
    for with_hints in (True, False):
        label = "hints-on" if with_hints else "hints-off"
        solver = TrauSolver(config=SolverConfig(
            use_static_analysis=with_hints))
        for k in range(2, max_loops + 1):
            start = time.monotonic()
            result = solver.solve(luhn_problem(k), timeout=timeout)
            rows.append((label, k, result.status,
                         time.monotonic() - start))
    return rows


def numeric_pfa_ablation(count=10, timeout=10.0, seed=0, jobs=1):
    """Conversion suite with hints disabled, so conversion variables rely
    on the numeric-PFA machinery alone (versus the hinted fast path)."""
    instances = pythonlib.generate(count, seed)
    solvers = {
        "full": TrauSolver(),
        "no-hints": TrauSolver(config=SolverConfig(
            use_static_analysis=False)),
    }
    runner = BenchmarkRunner(solvers=solvers, timeout=timeout,
                             collect_stats=True, jobs=jobs)
    outcomes = runner.run_suite(instances)
    return [("pythonlib", summarize(outcomes))], outcomes


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark grid")
    parser.add_argument("--results-json", metavar="FILE",
                        help="also dump every per-query row (timings + "
                             "phase breakdown + counters) as JSON-lines")
    args = parser.parse_args(argv)

    all_outcomes = {}

    suites, outcomes = overapprox_ablation(args.count, args.timeout,
                                       jobs=args.jobs)
    print(format_table("Ablation A: over-approximation on/off",
                       suites, ["with-oa", "without-oa"]))
    print()
    print(format_stats_breakdown("Ablation A: where the time goes (means)",
                                 outcomes, BREAKDOWN_KEYS))
    for solver, runs in outcomes.items():
        all_outcomes.setdefault("A/" + solver, []).extend(runs)
    print()

    suites, outcomes = numeric_pfa_ablation(args.count, args.timeout,
                                        jobs=args.jobs)
    print(format_table("Ablation B: static length analysis on/off",
                       suites, ["full", "no-hints"]))
    print()
    print(format_stats_breakdown("Ablation B: where the time goes (means)",
                                 outcomes, BREAKDOWN_KEYS))
    for solver, runs in outcomes.items():
        all_outcomes.setdefault("B/" + solver, []).extend(runs)
    print()

    print("Ablation C: Luhn ladder, static analysis on/off")
    for label, k, status, seconds in static_analysis_ablation():
        print("  %-10s luhn-%02d  %-8s %6.2fs" % (label, k, status, seconds))

    if args.results_json:
        with open(args.results_json, "w") as handle:
            dump_outcomes_jsonl(all_outcomes, handle)
        print("\nwrote per-query rows to %s" % args.results_json)


if __name__ == "__main__":
    main()
