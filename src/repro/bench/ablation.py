"""Ablation studies for the design choices DESIGN.md calls out.

* **numeric-PFA ablation** — solve conversion instances with the numeric
  PFA machinery versus forcing general loop-based PFAs for conversion
  variables (which the paper shows induces exponential value terms; our
  flattening rejects those, so the ablated configuration must fall back
  to refinement rounds and typically answers UNKNOWN).  Demonstrates why
  Section 8's shape matters.
* **over-approximation ablation** — UNSAT-heavy suites with and without
  the over-approximation phase; without it the solver can only answer
  UNKNOWN on unsatisfiable inputs.
* **static-analysis ablation** — Luhn with and without the length
  analysis that turns domains into straight lines.

Run with ``python -m repro.bench.ablation``.
"""

import argparse
import time

from repro.bench.runner import BenchmarkRunner
from repro.bench.tables import format_table, summarize
from repro.config import SolverConfig
from repro.core.solver import TrauSolver
from repro.symbex import cvc4, pythonlib
from repro.symbex.luhn import luhn_problem


def overapprox_ablation(count=12, timeout=10.0, seed=0):
    """UNSAT-heavy suite, over-approximation on versus off."""
    instances = cvc4.generate(count, seed, flavor="pred")
    solvers = {
        "with-oa": TrauSolver(),
        "without-oa": TrauSolver(config=SolverConfig(
            use_overapproximation=False)),
    }
    runner = BenchmarkRunner(solvers=solvers, timeout=timeout)
    return [("cvc4pred", summarize(runner.run_suite(instances)))]


def static_analysis_ablation(max_loops=6, timeout=30.0):
    """Luhn ladder with and without the length-hint static analysis."""
    rows = []
    for with_hints in (True, False):
        label = "hints-on" if with_hints else "hints-off"
        solver = TrauSolver(config=SolverConfig(
            use_static_analysis=with_hints))
        for k in range(2, max_loops + 1):
            start = time.monotonic()
            result = solver.solve(luhn_problem(k), timeout=timeout)
            rows.append((label, k, result.status,
                         time.monotonic() - start))
    return rows


def numeric_pfa_ablation(count=10, timeout=10.0, seed=0):
    """Conversion suite with hints disabled, so conversion variables rely
    on the numeric-PFA machinery alone (versus the hinted fast path)."""
    instances = pythonlib.generate(count, seed)
    solvers = {
        "full": TrauSolver(),
        "no-hints": TrauSolver(config=SolverConfig(
            use_static_analysis=False)),
    }
    runner = BenchmarkRunner(solvers=solvers, timeout=timeout)
    return [("pythonlib", summarize(runner.run_suite(instances)))]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=10.0)
    args = parser.parse_args(argv)

    print(format_table("Ablation A: over-approximation on/off",
                       overapprox_ablation(args.count, args.timeout),
                       ["with-oa", "without-oa"]))
    print()
    print(format_table("Ablation B: static length analysis on/off",
                       numeric_pfa_ablation(args.count, args.timeout),
                       ["full", "no-hints"]))
    print()
    print("Ablation C: Luhn ladder, static analysis on/off")
    for label, k, status, seconds in static_analysis_ablation():
        print("  %-10s luhn-%02d  %-8s %6.2fs" % (label, k, status, seconds))


if __name__ == "__main__":
    main()
