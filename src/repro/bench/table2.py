"""Table 2: string-number conversion suites.

Run with ``python -m repro.bench.table2 [--count N] [--timeout S]``.
Three suites as in the paper: LeetCode (conversion-heavy problems),
PythonLib (int()/date/time parsing), JavaScript (array-index semantics
plus small Luhn paths).
"""

import argparse

from repro.bench.runner import BenchmarkRunner, SOLVERS
from repro.bench.tables import format_table, summarize
from repro.symbex import javascript, leetcode, pythonlib


def suites_for(count, seed=0):
    return [
        ("Leetcode", leetcode.generate(count, seed, conversions_only=True)),
        ("PythonLib", pythonlib.generate(count, seed)),
        ("JavaScript", javascript.generate(max(count - 3, 1), seed)),
    ]


def run(count=10, timeout=10.0, solver_names=SOLVERS, seed=0, jobs=1):
    runner = BenchmarkRunner(timeout=timeout, jobs=jobs)
    results = []
    for suite_name, instances in suites_for(count, seed):
        outcomes = runner.run_suite(instances, list(solver_names))
        results.append((suite_name, summarize(outcomes)))
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--timeout", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the benchmark grid")
    args = parser.parse_args(argv)
    results = run(args.count, args.timeout, seed=args.seed, jobs=args.jobs)
    print(format_table(
        "Table 2: string-number conversion benchmarks "
        "(pfa = Z3-Trau's procedure)", results, list(SOLVERS)))


if __name__ == "__main__":
    main()
