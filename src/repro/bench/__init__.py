"""Benchmark harness: regenerates the paper's Tables 1-3.

* :mod:`repro.bench.runner` — per-instance timeout runner with result
  validation (SAT models re-checked concretely; answers compared against
  generator ground truth, counting INCORRECT like the paper).
* :mod:`repro.bench.tables` — table assembly/formatting.
* ``python -m repro.bench.table1 / table2 / table3`` — CLI entry points.
"""

from repro.bench.runner import BenchmarkRunner, RunOutcome, SOLVERS
from repro.bench.tables import format_table, summarize

__all__ = ["BenchmarkRunner", "RunOutcome", "SOLVERS", "format_table",
           "summarize"]
