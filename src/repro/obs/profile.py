"""Deterministic sampling profiler attributed to the obs phase stack.

Wall-clock sampling (SIGPROF / a timer thread) is non-deterministic: two
runs of the same solve produce different sample sets, which makes the
profiler useless as a regression gate.  This profiler instead counts
**interpreter events** via ``sys.setprofile`` (every Python/C call and
return) and takes one sample every *every* events — same input, same
samples, every run.

Each sample is attributed twice:

* to the **phase stack** — the names of the spans currently open on the
  thread's tracer (``solve > round > sat.search``), so time rolls up to
  the same phases the telemetry pipeline reports; and
* to the **call site** — ``module.function`` of the frame (or C
  function) that was executing.

``report()`` renders the "aim here" table the ROADMAP's hot-loop
optimisation item consumes; ``to_dict()`` is the JSON form the benchmark
runner embeds in ``--results-json`` under ``profile``.

The cost is real (a Python callback on every call event — expect a
2-4x slowdown while armed), which is why the profiler is opt-in via
``--profile-hot N`` and never enabled in the serving workers.
"""

import sys

from repro.obs.tracer import current_tracer

DEFAULT_EVERY = 997
"""Events per sample.  Prime, so the sampling comb does not phase-lock
with loop bodies whose call counts happen to divide a round number."""


class SamplingProfiler:
    """Count-based sampler; use as a context manager around the work.

    Nesting or multi-thread use is not supported (``sys.setprofile`` is
    per-thread and the solver pipeline is single-threaded in-process);
    the previous profile function is restored on exit.
    """

    def __init__(self, every=DEFAULT_EVERY):
        self.every = max(1, int(every))
        self.events = 0
        self.samples = 0
        self.by_key = {}            # (phase tuple, site) -> samples
        self._previous = None

    # -- sampling ------------------------------------------------------------

    def _site(self, frame, event, arg):
        if event in ("c_call", "c_return", "c_exception"):
            module = getattr(arg, "__module__", None) or "builtins"
            name = getattr(arg, "__name__", None) or repr(arg)
            return "%s.%s" % (module, name)
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        return "%s.%s" % (module, code.co_name)

    def _callback(self, frame, event, arg):
        self.events += 1
        if self.events % self.every:
            return
        self.samples += 1
        key = (current_tracer().stack_names(),
               self._site(frame, event, arg))
        self.by_key[key] = self.by_key.get(key, 0) + 1

    def __enter__(self):
        self._previous = sys.getprofile()
        sys.setprofile(self._callback)
        return self

    def __exit__(self, exc_type, exc, tb):
        sys.setprofile(self._previous)
        self._previous = None
        return False

    # -- reporting -----------------------------------------------------------

    def hot(self, top=10):
        """``[(phase path, site, samples, share)]``, hottest first."""
        total = self.samples or 1
        rows = sorted(self.by_key.items(),
                      key=lambda item: (-item[1], item[0]))
        return [(" > ".join(phases) or "(no phase)", site, count,
                 count / total)
                for (phases, site), count in rows[:max(1, int(top))]]

    def phase_totals(self):
        """Samples rolled up to the innermost open phase."""
        totals = {}
        for (phases, _), count in self.by_key.items():
            phase = phases[-1] if phases else "(no phase)"
            totals[phase] = totals.get(phase, 0) + count
        return dict(sorted(totals.items(),
                           key=lambda item: (-item[1], item[0])))

    def report(self, top=10):
        """The human "aim here" table."""
        lines = ["profile: %d samples / %d events (1 per %d)"
                 % (self.samples, self.events, self.every)]
        if not self.samples:
            lines.append("  (no samples -- workload shorter than one "
                         "sampling period)")
            return "\n".join(lines)
        rows = self.hot(top)
        width = max(len(row[0]) for row in rows)
        for phase, site, count, share in rows:
            lines.append("  %5.1f%%  %-*s  %s"
                         % (100.0 * share, width, phase, site))
        return "\n".join(lines)

    def to_dict(self, top=25):
        """JSON form for ``--results-json`` (bounded to *top* rows)."""
        return {
            "every": self.every,
            "events": self.events,
            "samples": self.samples,
            "hot": [{"phase": phase, "site": site, "samples": count,
                     "share": round(share, 4)}
                    for phase, site, count, share in self.hot(top)],
            "phases": self.phase_totals(),
        }

    def __repr__(self):
        return "SamplingProfiler(every=%d, samples=%d)" % (
            self.every, self.samples)
