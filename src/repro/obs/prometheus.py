"""Prometheus text exposition: render, parse, and lint.

:func:`render_prometheus` turns a :class:`~repro.obs.metrics.Metrics`
registry (or a :class:`~repro.obs.pipeline.TelemetryAggregator`) into
the Prometheus text exposition format, the payload the ROADMAP's
``/metrics`` front door will serve and what ``--metrics-out PATH``
writes today:

* counters   -> ``repro_<name>_total`` (``counter``)
* gauges     -> ``repro_<name>`` (``gauge``)
* histograms -> ``repro_<name>`` (``histogram``) with cumulative
  ``_bucket{le="..."}`` series over the shared fixed bounds, ``_sum``,
  ``_count``, plus ``_min``/``_max`` companion gauges so a snapshot is
  lossless.

Dots and dashes in metric names become underscores; the **original**
dotted name is carried as the first token of the ``# HELP`` line, which
is how :func:`metrics_from_prometheus` (used by ``repro top`` to watch a
snapshot file) reverses the mangling without guessing.

:func:`lint_prometheus` is the small validator the CI ``obs-smoke`` job
runs: HELP/TYPE must precede samples, series must be unique, counters
non-negative, histogram buckets cumulative-monotone with ``_count``
equal to the ``+Inf`` bucket.  ``python -m repro.obs.prometheus FILE``
lints files and exits non-zero on any problem.
"""

import math
import re

from repro.obs.metrics import BUCKET_BOUNDS, Histogram, Metrics, \
    _bucket_index

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})?\s+(\S+)\s*$")
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

PREFIX = "repro_"


def mangle(name):
    """Dotted metric name -> legal Prometheus family name."""
    return PREFIX + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _fmt(value):
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(source, extra=None):
    """Exposition text for *source* (a Metrics registry or an
    aggregator, whose combined view folds in *extra*)."""
    if hasattr(source, "combined"):
        metrics = source.combined(extra)
    else:
        metrics = source
    lines = []

    def family(pname, kind, origin):
        lines.append("# HELP %s %s (%s)" % (pname, origin, kind))
        lines.append("# TYPE %s %s" % (pname, kind))

    for name in sorted(metrics.counters):
        pname = mangle(name) + "_total"
        family(pname, "counter", name)
        lines.append("%s %s" % (pname, _fmt(metrics.counters[name])))
    for name in sorted(metrics.gauges):
        pname = mangle(name)
        family(pname, "gauge", name)
        lines.append("%s %s" % (pname, _fmt(metrics.gauges[name])))
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        pname = mangle(name)
        family(pname, "histogram", name)
        for bound, cumulative in hist.cumulative_buckets():
            lines.append('%s_bucket{le="%s"} %d'
                         % (pname, _fmt(float(bound)), cumulative))
        lines.append("%s_sum %s" % (pname, _fmt(hist.total)))
        lines.append("%s_count %d" % (pname, hist.count))
        for suffix, value in (("min", hist.minimum), ("max", hist.maximum)):
            gname = "%s_%s" % (pname, suffix)
            family(gname, "gauge", "%s.%s" % (name, suffix))
            lines.append("%s %s" % (gname, _fmt(value)))
    return "\n".join(lines) + ("\n" if lines else "")


def write_snapshot(path, source, extra=None):
    """Atomically (write + rename) publish a snapshot file, so a
    concurrent ``repro top`` never reads a half-written exposition."""
    import os
    text = render_prometheus(source, extra)
    tmp = "%s.tmp.%d" % (path, os.getpid())
    with open(tmp, "w") as handle:
        handle.write(text)
    os.replace(tmp, path)
    return text


# -- parsing -------------------------------------------------------------------


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return int(text)
    except ValueError:
        return float(text)


def parse_prometheus(text):
    """Exposition text -> ordered family table.

    Returns ``{family name: {"type": ..., "help": ..., "samples":
    [(sample name, labels dict, value), ...]}}``; samples attach to the
    longest declared family name they extend (``_bucket``/``_sum``/
    ``_count`` suffixes included).  Raises ``ValueError`` on lines that
    parse as neither comment nor sample.
    """
    families = {}
    declared = []           # family names, longest-match resolution
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                entry = families.setdefault(
                    name, {"type": None, "help": None, "samples": []})
                if parts[1] == "TYPE":
                    entry["type"] = parts[3] if len(parts) > 3 else ""
                    declared.append(name)
                else:
                    entry["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("line %d: unparseable sample %r"
                             % (lineno, line))
        sample_name, label_text, value_text = match.groups()
        labels = dict((k, v) for k, v in
                      _LABEL_RE.findall(label_text or ""))
        owner = None
        for name in sorted(declared, key=len, reverse=True):
            if sample_name == name or (
                    sample_name.startswith(name)
                    and sample_name[len(name):] in ("_bucket", "_sum",
                                                    "_count")):
                owner = name
                break
        entry = families.setdefault(
            owner or sample_name,
            {"type": None, "help": None, "samples": []})
        entry["samples"].append((sample_name, labels,
                                 _parse_value(value_text)))
    return families


def _origin_name(entry, fallback):
    """The dotted pre-mangling name, recovered from the HELP line."""
    help_text = entry.get("help") or ""
    token = help_text.split(None, 1)[0] if help_text else ""
    return token or fallback


def metrics_from_prometheus(text):
    """Rebuild a :class:`Metrics` registry from a rendered snapshot.

    The inverse of :func:`render_prometheus` for snapshots this module
    produced (dotted names from HELP, histograms from bucket deltas plus
    the ``_min``/``_max`` companions).  Labelled series are summed into
    their family — good enough for the ``repro top`` view.
    """
    families = parse_prometheus(text)
    metrics = Metrics()
    minmax = {}             # dotted histogram name -> {"min": v, "max": v}
    for fname, entry in families.items():
        origin = _origin_name(entry, fname)
        kind = entry.get("type")
        if kind == "counter":
            dotted = origin[:-6] if origin.endswith(".total") else origin
            if fname.endswith("_total") and not origin.endswith("_total") \
                    and "." in origin:
                dotted = origin
            total = sum(v for _, _, v in entry["samples"])
            metrics.add(dotted, total)
        elif kind == "gauge":
            base, _, suffix = origin.rpartition(".")
            if suffix in ("min", "max") and base:
                minmax.setdefault(base, {})[suffix] = \
                    entry["samples"][-1][2] if entry["samples"] else None
            else:
                for _, _, value in entry["samples"]:
                    metrics.gauge(origin, value)
        elif kind == "histogram":
            hist = Histogram()
            buckets = sorted(
                ((float(labels["le"]), value)
                 for name, labels, value in entry["samples"]
                 if name.endswith("_bucket") and "le" in labels),
                key=lambda pair: pair[0])
            previous = 0
            for bound, cumulative in buckets:
                increment = cumulative - previous
                previous = cumulative
                if increment <= 0:
                    continue
                index = len(BUCKET_BOUNDS) if math.isinf(bound) \
                    else _bucket_index(bound)
                hist.buckets[index] = hist.buckets.get(index, 0) + increment
            for name, _, value in entry["samples"]:
                if name.endswith("_sum"):
                    hist.total = value
                elif name.endswith("_count"):
                    hist.count = value
            metrics.histograms[origin] = hist
    for dotted, pair in minmax.items():
        hist = metrics.histograms.get(dotted)
        if hist is not None:
            hist.minimum = pair.get("min")
            hist.maximum = pair.get("max")
    return metrics


# -- linting -------------------------------------------------------------------


def lint_prometheus(text):
    """Validate exposition *text*; returns a list of problem strings
    (empty means lint-clean).  Checks: parseability, legal names,
    HELP+TYPE declared before samples, unique series, non-negative
    finite counters, histogram buckets cumulative-monotone with
    ascending ``le`` and ``_count`` equal to the ``+Inf`` bucket."""
    problems = []
    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        return ["%s" % exc]
    seen_series = set()
    for fname, entry in families.items():
        if not _NAME_RE.match(fname):
            problems.append("illegal metric name %r" % fname)
        if entry["type"] is None:
            problems.append("samples for %r without a # TYPE line" % fname)
        if entry["help"] is None:
            problems.append("family %r has no # HELP line" % fname)
        for sample_name, labels, value in entry["samples"]:
            series = (sample_name, tuple(sorted(labels.items())))
            if series in seen_series:
                problems.append("duplicate series %s%r"
                                % (sample_name, labels))
            seen_series.add(series)
        if entry["type"] == "counter":
            for sample_name, _, value in entry["samples"]:
                if isinstance(value, float) and not math.isfinite(value):
                    problems.append("counter %s is not finite" % sample_name)
                elif value < 0:
                    problems.append("counter %s is negative (%s)"
                                    % (sample_name, value))
        if entry["type"] == "histogram":
            buckets = [(float(labels["le"]), value)
                       for name, labels, value in entry["samples"]
                       if name.endswith("_bucket") and "le" in labels]
            count = next((value for name, _, value in entry["samples"]
                          if name.endswith("_count")), None)
            has_sum = any(name.endswith("_sum")
                          for name, _, _ in entry["samples"])
            if not buckets:
                problems.append("histogram %s has no buckets" % fname)
                continue
            if not has_sum:
                problems.append("histogram %s has no _sum" % fname)
            bounds = [bound for bound, _ in buckets]
            if bounds != sorted(bounds):
                problems.append("histogram %s buckets out of le order"
                                % fname)
            values = [value for _, value in buckets]
            if any(b > a for a, b in zip(values[1:], values)):
                problems.append("histogram %s bucket counts are not "
                                "monotone" % fname)
            if not math.isinf(bounds[-1]):
                problems.append("histogram %s lacks the +Inf bucket"
                                % fname)
            elif count is not None and count != values[-1]:
                problems.append(
                    "histogram %s _count (%s) != +Inf bucket (%s)"
                    % (fname, count, values[-1]))
    return problems


def main(argv=None):
    """Lint exposition files; non-zero exit on any problem."""
    import argparse
    import sys
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.prometheus",
        description="lint Prometheus text exposition files")
    parser.add_argument("files", nargs="+", metavar="FILE")
    args = parser.parse_args(argv)
    failures = 0
    for path in args.files:
        with open(path) as handle:
            text = handle.read()
        problems = lint_prometheus(text)
        series = sum(1 for line in text.splitlines()
                     if line and not line.startswith("#"))
        if problems:
            failures += 1
            for problem in problems:
                print("%s: %s" % (path, problem))
        else:
            print("%s: ok (%d series)" % (path, series))
    return 1 if failures else 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
